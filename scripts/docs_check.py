#!/usr/bin/env python
"""Docs health check: docstrings everywhere, README/docs present + valid.

CI runs this so the project documentation cannot rot silently:

1. every module under ``src/repro`` (packages included) carries a module
   docstring, so ``pydoc repro.<anything>`` is usable;
2. the package docstrings of the documented subsystems mention the
   invariant their docs promise;
3. ``README.md`` and ``docs/architecture.md`` exist and are non-trivial;
4. every ``python`` code block in those documents *compiles* — examples
   may drift semantically, but they may not stop parsing.

Exits non-zero listing every problem found (not just the first).
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
DOCUMENTS = ("README.md", "docs/architecture.md")

#: Subsystem packages whose docstrings must state their invariants.
INVARIANT_PACKAGES = {
    "repro.core.complementing": "bit-for-bit",
    "repro.engine": "identical",
    "repro.knowledge": "bit-for-bit",
    "repro.live": "exact",
    "repro.distributed": "bit-for-bit",
    "repro.durability": "bit-for-bit",
    "repro.columnar": "bit-for-bit",
    "repro.telemetry": "bit-for-bit",
}

CODE_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def module_name(path: Path) -> str:
    relative = path.relative_to(SRC.parent).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def check_docstrings(problems: list[str]) -> None:
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        docstring = ast.get_docstring(tree)
        name = module_name(path)
        if not docstring or not docstring.strip():
            problems.append(f"{name}: missing module docstring ({path})")
            continue
        needle = INVARIANT_PACKAGES.get(name)
        if needle and needle not in docstring:
            problems.append(
                f"{name}: package docstring no longer states its "
                f"{needle!r} invariant"
            )


def check_documents(problems: list[str]) -> None:
    for relative in DOCUMENTS:
        path = ROOT / relative
        if not path.exists():
            problems.append(f"{relative}: missing")
            continue
        text = path.read_text(encoding="utf-8")
        if len(text.strip()) < 500:
            problems.append(f"{relative}: suspiciously empty")
        for index, block in enumerate(CODE_BLOCK.findall(text)):
            try:
                compile(block, f"{relative}[python block {index}]", "exec")
            except SyntaxError as exc:
                problems.append(
                    f"{relative}: python block {index} does not compile: "
                    f"{exc}"
                )


def main() -> int:
    problems: list[str] = []
    check_docstrings(problems)
    check_documents(problems)
    if problems:
        print("docs check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    modules = len(list(SRC.rglob("*.py")))
    print(
        f"docs check OK: {modules} modules documented, "
        f"{len(DOCUMENTS)} documents present and compiling"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
