"""Durability — WAL overhead per window, recovery time vs log length.

The durability layer's pitch: journaling each window's delta to the
write-ahead log should cost a small, flat per-window overhead, and
recovering from a crash should cost time proportional to the WAL tail
(snapshots bound that tail, so recovery is O(snapshot_interval), not
O(history)).  This bench replays the mall population through the live
service three ways — unjournaled, journaled with periodic snapshots,
journaled with the log left to grow — and then times cold recovery at
increasing log lengths, asserting each recovered run finishes to a
``finalize()`` bit-for-bit identical to the uninterrupted reference.

The run also writes a JSON summary (``TRIPS_BENCH_DURABILITY_JSON`` env
var, default ``BENCH_durability.json`` in the working directory) so CI
can archive the numbers as an artifact and trend them across commits.
"""

from __future__ import annotations

import time

import pytest

from repro.core import Translator
from repro.engine import EngineConfig
from repro.live import LiveConfig, LiveTranslationService
from repro.positioning import RecordStream, windowed_records
from repro.simulation import BROWSER, SHOPPER, MobilitySimulator
from repro.timeutil import HOUR, TimeRange

from .conftest import print_table, write_bench_json

WINDOW_SECONDS = 1800.0
SNAPSHOT_INTERVAL = 8
#: WAL lengths (windows replayed on recovery) for the recovery-time curve.
LOG_LENGTHS = (5, 10, 15)
_OVERHEAD_ROWS: list[list] = []
_RECOVERY_ROWS: list[list] = []
_SUMMARY: dict = {"wal_overhead": [], "recovery": []}


@pytest.fixture(scope="module")
def feed(mall3):
    """(translator, windowed mall records, uninterrupted reference)."""
    simulator = MobilitySimulator(mall3, seed=83)
    devices = simulator.simulate_population(
        count=16,
        profiles=[SHOPPER, BROWSER],
        window=TimeRange(9 * HOUR, 19 * HOUR),
        seed=83,
    )
    records = sorted(
        (record for device in devices for record in device.raw),
        key=lambda record: (record.timestamp, record.device_id),
    )
    windows = list(
        windowed_records(RecordStream(iter(records)), WINDOW_SECONDS)
    )
    translator = Translator(mall3)
    service = _service(translator)
    with service:
        for window in windows:
            service.process_window(window, "mall")
        reference = service.finalize()["mall"]
        stats = service.stats
    return translator, windows, reference, stats


def _service(translator, state_dir=None, snapshot_interval=None):
    config = {"window_seconds": WINDOW_SECONDS}
    if snapshot_interval is not None:
        config["snapshot_interval"] = snapshot_interval
    return LiveTranslationService(
        {"mall": translator},
        EngineConfig(chunk_size=4),
        LiveConfig(**config),
        retention="window:4",
        state_dir=state_dir,
    )


@pytest.mark.parametrize(
    "mode", ["unjournaled", "journaled", "journaled-no-snapshots"]
)
def test_wal_overhead_per_window(benchmark, feed, tmp_path_factory, mode):
    translator, windows, reference, _ = feed

    def replay():
        state_dir = None
        interval = None
        if mode != "unjournaled":
            state_dir = tmp_path_factory.mktemp(f"wal-{mode}") / "state"
            interval = (
                SNAPSHOT_INTERVAL
                if mode == "journaled"
                else len(windows) + 1
            )
        service = _service(translator, state_dir, interval)
        started = time.perf_counter()
        with service:
            for window in windows:
                service.process_window(window, "mall")
            elapsed = time.perf_counter() - started
            finalized = service.finalize()["mall"]
        return elapsed, finalized

    elapsed, finalized = benchmark.pedantic(replay, rounds=2, iterations=1)

    # Correctness first: journaling must not perturb the translation.
    assert finalized.results == reference.results
    assert finalized.knowledge == reference.knowledge

    per_window_ms = 1e3 * elapsed / len(windows)
    _OVERHEAD_ROWS.append(
        [
            mode,
            len(windows),
            f"{per_window_ms:.2f} ms/win",
            f"{len(windows) / elapsed:.1f} win/s",
        ]
    )
    _SUMMARY["wal_overhead"].append(
        {
            "mode": mode,
            "windows": len(windows),
            "elapsed_seconds": elapsed,
            "ms_per_window": per_window_ms,
            "windows_per_second": len(windows) / elapsed,
            "identical_to_unjournaled": True,
        }
    )


@pytest.mark.parametrize("log_length", LOG_LENGTHS)
def test_recovery_time_vs_log_length(feed, tmp_path_factory, log_length):
    translator, windows, reference, reference_stats = feed
    assert log_length <= len(windows)
    state_dir = tmp_path_factory.mktemp(f"recover-{log_length}") / "state"

    # Grow a WAL of exactly ``log_length`` window entries (the snapshot
    # interval is wider than the feed, so nothing truncates the log),
    # then abandon the service where it stands — a crash at a boundary.
    crashed = _service(translator, state_dir, len(windows) + 1)
    crashed.open()
    for window in windows[:log_length]:
        crashed.process_window(window, "mall")
    del crashed

    wal_bytes = (state_dir / "wal.jsonl").stat().st_size
    started = time.perf_counter()
    recovered = _service(translator, state_dir, len(windows) + 1)
    recovered.open()
    recovery_seconds = time.perf_counter() - started
    assert recovered.stats.windows == log_length

    # Correctness first: the recovered service finishes the feed to the
    # uninterrupted reference, bit for bit.
    with recovered:
        for window in windows[log_length:]:
            recovered.process_window(window, "mall")
        finalized = recovered.finalize()["mall"]
    assert recovered.stats.windows == reference_stats.windows
    assert recovered.stats.records == reference_stats.records
    assert finalized.results == reference.results
    assert finalized.knowledge == reference.knowledge

    _RECOVERY_ROWS.append(
        [
            log_length,
            f"{wal_bytes / 1024:.0f} KiB",
            f"{recovery_seconds * 1e3:.1f} ms",
            f"{recovery_seconds * 1e3 / log_length:.2f} ms/win",
        ]
    )
    _SUMMARY["recovery"].append(
        {
            "log_length_windows": log_length,
            "wal_bytes": wal_bytes,
            "recovery_seconds": recovery_seconds,
            "recovery_ms_per_window": recovery_seconds * 1e3 / log_length,
            "identical_to_uninterrupted": True,
        }
    )


def teardown_module(module) -> None:
    print_table(
        "Durability: WAL overhead per window",
        ["mode", "windows", "per window", "throughput"],
        _OVERHEAD_ROWS,
    )
    print_table(
        "Durability: recovery time vs log length",
        ["WAL windows", "WAL size", "recovery", "per window"],
        _RECOVERY_ROWS,
    )
    if _SUMMARY["wal_overhead"] or _SUMMARY["recovery"]:
        out = write_bench_json(
            "TRIPS_BENCH_DURABILITY_JSON",
            "BENCH_durability.json",
            {"bench": "durability", **_SUMMARY},
        )
        print(f"wrote durability bench summary to {out}")
