"""E-F3c — Figure 3, Complementing layer: gap inference quality.

Punches dropout windows of increasing length into raw sequences and
measures how well the complementing layer reconstructs the missing
semantics, against the distance-only (no-knowledge) baseline.  Expected
shape: knowledge-based MAP inference fills at least as precisely as the
distance-only arm, and recovered region-time grows with what was lost.
"""

from __future__ import annotations

import pytest

from repro.core import (
    DistanceOnlyGapFiller,
    Translator,
    score_gap_fill,
    score_semantics,
)
from repro.positioning import inject_dropout

from .conftest import print_table

_GAP_ROWS: list[list] = []


@pytest.mark.parametrize("gap_seconds", [120.0, 240.0, 480.0])
def test_gap_length_sweep(benchmark, mall3, population, translator, gap_seconds):
    degraded = []
    for index, device in enumerate(population):
        sequence, _ = inject_dropout(
            device.raw, gap_seconds=gap_seconds, gap_count=1,
            seed=int(gap_seconds) + index,
        )
        degraded.append(sequence)

    batch = benchmark.pedantic(
        lambda: translator.translate_batch(degraded), rounds=1, iterations=1
    )

    filler = DistanceOnlyGapFiller(mall3.topology)
    knowledge_inferred = knowledge_correct = 0
    distance_inferred = distance_correct = 0
    region_time = 0.0
    for result, device in zip(batch, population):
        k = score_gap_fill(result.semantics, device.truth_semantics)
        d = score_gap_fill(
            filler.complement(result.original_semantics),
            device.truth_semantics,
        )
        knowledge_inferred += k.inferred_count
        knowledge_correct += k.correct_region_count
        distance_inferred += d.inferred_count
        distance_correct += d.correct_region_count
        region_time += score_semantics(
            result.semantics, device.truth_semantics
        ).region_time_accuracy
    k_precision = (
        knowledge_correct / knowledge_inferred if knowledge_inferred else 0.0
    )
    d_precision = (
        distance_correct / distance_inferred if distance_inferred else 0.0
    )
    _GAP_ROWS.append(
        [
            f"{gap_seconds:.0f}s",
            knowledge_inferred,
            f"{k_precision:.2f}",
            distance_inferred,
            f"{d_precision:.2f}",
            f"{region_time / len(population):.3f}",
        ]
    )


def test_knowledge_construction_throughput(benchmark, mall3, population, translator):
    from repro.core import MobilityKnowledge

    originals = [
        translator.clean_and_annotate(d.raw)[1].sequence for d in population
    ]
    regions = [r.region_id for r in mall3.regions()]

    knowledge = benchmark(
        lambda: MobilityKnowledge.from_sequences(originals, regions)
    )
    observed = sum(
        knowledge.transition_count(a, b)
        for a in knowledge.regions
        for b in knowledge.regions
        if a != b
    )
    print(f"\nknowledge: {len(regions)} regions, {observed} observed "
          f"transitions from {len(originals)} sequences, "
          f"{benchmark.stats.stats.mean * 1e3:.2f} ms")
    assert observed > 0


def test_inference_latency(benchmark, mall3, population, translator):
    """Latency of a single MAP gap inference (the interactive unit)."""
    from repro.core import MobilityKnowledge, SemanticsInference
    from repro.timeutil import TimeRange

    originals = [
        translator.clean_and_annotate(d.raw)[1].sequence for d in population
    ]
    regions = [r.region_id for r in mall3.regions()]
    knowledge = MobilityKnowledge.from_sequences(originals, regions)
    inference = SemanticsInference(knowledge, mall3.topology)
    origin, destination = regions[0], regions[-1]

    inferred = benchmark(
        lambda: inference.infer_gap(origin, destination, TimeRange(0.0, 300.0))
    )
    print(f"\nsingle gap inference: {benchmark.stats.stats.mean * 1e3:.2f} ms "
          f"({len(inferred)} inferred triplets)")


def test_zz_report(benchmark):
    benchmark(lambda: None)  # anchor so --benchmark-only runs the report
    print_table(
        "Figure 3 / Complementing: knowledge-based MAP vs distance-only "
        "filling per dropout length",
        ["gap", "MAP inferred", "MAP precision",
         "distance inferred", "distance precision", "region-time acc"],
        _GAP_ROWS,
    )
    assert len(_GAP_ROWS) == 3
    # Expected shape: MAP filling is at least as precise as distance-only.
    for row in _GAP_ROWS:
        if int(row[1]) > 0 and int(row[3]) > 0:
            assert float(row[2]) >= float(row[4]) - 0.25
