"""E-X1 — Scalability: translation throughput vs device count and length.

The demo deployed the backend on a Xeon server for a week-long mall
dataset; this bench characterizes how batch translation scales with the
number of devices and with per-sequence length, on the simulator's data.
Expected shape: near-linear in both dimensions (per-record cost roughly
flat).
"""

from __future__ import annotations

import pytest

from repro.positioning import subsample
from repro.simulation import BROWSER, SHOPPER, MobilitySimulator
from repro.timeutil import HOUR, TimeRange

from .conftest import print_table

_DEVICE_ROWS: list[list] = []
_LENGTH_ROWS: list[list] = []


@pytest.fixture(scope="module")
def big_population(mall3):
    simulator = MobilitySimulator(mall3, seed=77)
    return simulator.simulate_population(
        count=24,
        profiles=[SHOPPER, BROWSER],
        window=TimeRange(10 * HOUR, 20 * HOUR),
        seed=77,
    )


@pytest.mark.parametrize("count", [3, 6, 12, 24])
def test_device_count_scaling(benchmark, translator, big_population, count):
    sequences = [d.raw for d in big_population[:count]]

    batch = benchmark.pedantic(
        lambda: translator.translate_batch(sequences), rounds=2, iterations=1
    )
    total = sum(len(s) for s in sequences)
    mean = benchmark.stats.stats.mean
    _DEVICE_ROWS.append(
        [count, total, f"{mean:.2f} s", f"{total / mean:,.0f} rec/s"]
    )
    assert len(batch) == count


@pytest.mark.parametrize("keep_every", [8, 4, 2, 1])
def test_sequence_length_scaling(benchmark, translator, device, keep_every):
    sequence = subsample(device.raw, keep_every)

    result = benchmark(lambda: translator.translate(sequence))
    mean = benchmark.stats.stats.mean
    _LENGTH_ROWS.append(
        [
            len(sequence),
            f"{mean * 1e3:.0f} ms",
            f"{len(sequence) / mean:,.0f} rec/s",
            len(result.semantics),
        ]
    )


def test_zz_report(benchmark):
    benchmark(lambda: None)  # anchor so --benchmark-only runs the report
    print_table(
        "Scalability: batch translation vs device count (3-floor mall)",
        ["devices", "records", "batch time", "throughput"],
        _DEVICE_ROWS,
    )
    print_table(
        "Scalability: single-device translation vs sequence length",
        ["records", "time", "throughput", "semantics"],
        _LENGTH_ROWS,
    )
    assert len(_DEVICE_ROWS) == 4 and len(_LENGTH_ROWS) == 4
    # Near-linear scaling: throughput at 24 devices within 4x of 3 devices.
    first = float(_DEVICE_ROWS[0][3].replace(",", "").split()[0])
    last = float(_DEVICE_ROWS[-1][3].replace(",", "").split()[0])
    assert last >= first / 4.0
