"""E-F5 — Figure 5: the five-step workflow in the shopping mall scenario.

Runs the complete analyst workflow of paper §4 on the 7-floor venue —
(1) select in operating hours, (2) import the DSM from its JSON file,
(3) designate event training data, (4) submit the batch translation,
(5) browse one device — and reports each step's latency plus the final
translation quality against simulator ground truth.
"""

from __future__ import annotations

import time

import pytest

from repro.core import EventIdentifier, Translator, score_semantics
from repro.dsm import dsm_from_json, dsm_to_json
from repro.events import EventEditor
from repro.positioning import (
    DailyHoursRule,
    DataSelector,
    DurationRule,
    MemorySource,
)
from repro.simulation import BROWSER, SHOPPER, MobilitySimulator
from repro.timeutil import HOUR, TimeRange
from repro.viewer import ViewerSession

from .conftest import print_table


@pytest.fixture(scope="module")
def mall_day(mall7):
    simulator = MobilitySimulator(mall7, seed=20170101)
    devices = simulator.simulate_population(
        count=15,
        profiles=[SHOPPER, BROWSER],
        window=TimeRange(10 * HOUR, 21 * HOUR),
        seed=20170101,
    )
    return devices


def test_five_step_workflow(benchmark, mall7, mall_day):
    records = sorted(r for d in mall_day for r in d.raw)
    dsm_text = dsm_to_json(mall7)
    steps: list[list] = []

    def workflow():
        timings = {}
        t0 = time.perf_counter()
        # Step (1): Data Selector, operating hours 10:00 AM - 10:00 PM.
        rule = DailyHoursRule(10 * HOUR, 22 * HOUR) & DurationRule(
            min_seconds=10 * 60
        )
        sequences = DataSelector([MemorySource(records)], rule=rule).select()
        timings["1. select"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        # Step (2): import the DSM (saved earlier by the Space Modeler).
        model = dsm_from_json(dsm_text)
        timings["2. import DSM"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        # Step (3): define patterns + designate training data.
        editor = EventEditor()
        for device in mall_day[:4]:
            editor.designate_from_annotations(
                device.raw,
                [(s.event, s.time_range) for s in device.truth_semantics],
            )
        identifier = EventIdentifier("forest", seed=0).train(
            editor.training_set()
        )
        timings["3. designate+train"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        # Step (4): submit the translation task.
        translator = Translator(model, identifier)
        batch = translator.translate_batch(sequences)
        timings["4. translate"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        # Step (5): browse the first device in the Viewer.
        target = batch.results[0]
        truth = next(
            d for d in mall_day if d.device_id == target.device_id
        )
        session = ViewerSession(
            model, target, ground_truth=truth.ground_truth
        )
        session.select_semantic(0)
        svg = session.render()
        timings["5. view"] = time.perf_counter() - t0
        return timings, batch, svg

    timings, batch, svg = benchmark.pedantic(workflow, rounds=1, iterations=1)

    for step, seconds in timings.items():
        steps.append([step, f"{seconds * 1e3:.0f} ms"])
    print_table(
        f"Figure 5: five-step workflow on the 7-floor mall "
        f"({len(records)} records, {len(batch)} devices)",
        ["workflow step", "latency"],
        steps,
    )

    truth_by_device = {d.device_id: d.truth_semantics for d in mall_day}
    scores = [
        score_semantics(result.semantics, truth_by_device[result.device_id])
        for result in batch
    ]
    mean_region = sum(s.region_time_accuracy for s in scores) / len(scores)
    mean_event = sum(s.event_accuracy for s in scores) / len(scores)
    conciseness = sum(
        r.semantics.conciseness_ratio(len(r.raw)) for r in batch
    ) / len(batch)
    print(f"\nquality: region-time={mean_region:.3f} event={mean_event:.3f} "
          f"conciseness={conciseness:.1f} records/triplet")
    assert mean_region >= 0.8
    assert mean_event >= 0.8
    assert conciseness >= 10.0
    assert svg.to_string().startswith("<?xml")
