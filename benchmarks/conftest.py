"""Shared fixtures for the experiment benchmarks.

Heavy artifacts (buildings, simulated populations, trained identifiers) are
session-scoped and deterministic, so every bench run regenerates identical
rows.  Each bench prints the rows/series it reproduces; run with

    pytest benchmarks/ --benchmark-only -s

to see both the tables and the timing columns.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.buildings import MallConfig, build_mall
from repro.core import EventIdentifier, Translator
from repro.events import EventEditor
from repro.simulation import BROWSER, SHOPPER, MobilitySimulator
from repro.timeutil import HOUR, TimeRange

#: Every simulated population used by the benches draws from one of these
#: explicit seeds — never an implicit default — and each JSON artifact
#: embeds the seeds it ran under (:func:`write_bench_json`), so any
#: archived number can be replayed exactly.
BENCH_SEEDS = {
    "population": 2017,       # shared 12-device mall3 crowd (fixtures below)
    "identifier": 0,          # forest event-identifier training seed
    "engine-mall": 31,        # bench_engine / profile_phase_one mall crowd
    "engine-airport": 32,
    "engine-office": 33,
}


#: Wall-clock origin for the ``wall_seconds`` stamp below: every artifact
#: records how long into the bench session it was written, so archived
#: numbers carry their own "how long did this take" context.
_SESSION_STARTED = time.perf_counter()


def machine_info() -> dict:
    """The hardware/runtime context an archived number ran under."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def write_bench_json(env_var: str, default: str, payload: dict) -> Path:
    """Write one bench's JSON artifact in the common schema.

    Every artifact shares three stamps (existing payload keys win, so a
    bench can narrow any of them):

    - ``"seeds"`` — the :data:`BENCH_SEEDS` registry, the replayability
      contract of every archived number;
    - ``"machine"`` — platform/python/cpu context (numbers without their
      hardware are not comparable);
    - ``"wall_seconds"`` — bench-session wall time at write.

    ``default`` names the artifact ``BENCH_<name>.json`` in the working
    directory; ``env_var`` overrides the path (CI points it at the
    upload location).
    """
    out = Path(os.environ.get(env_var, default))
    payload = {
        "seeds": dict(BENCH_SEEDS),
        "machine": machine_info(),
        "wall_seconds": time.perf_counter() - _SESSION_STARTED,
        **payload,
    }
    out.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return out


@pytest.fixture(scope="session")
def mall3():
    """The 3-floor mall used by most experiments."""
    return build_mall(MallConfig(floors=3))


@pytest.fixture(scope="session")
def mall7():
    """The full 7-floor demo venue (E-F5)."""
    return build_mall(MallConfig(floors=7))


@pytest.fixture(scope="session")
def population(mall3):
    """Twelve shoppers/browsers across a mall day."""
    seed = BENCH_SEEDS["population"]
    simulator = MobilitySimulator(mall3, seed=seed)
    return simulator.simulate_population(
        count=12,
        profiles=[SHOPPER, BROWSER],
        window=TimeRange(10 * HOUR, 20 * HOUR),
        seed=seed,
    )


@pytest.fixture(scope="session")
def device(population):
    """One representative device."""
    return population[0]


@pytest.fixture(scope="session")
def trained_identifier(population):
    """A forest identifier trained on three browsed devices' truth."""
    editor = EventEditor()
    for simulated in population[:3]:
        editor.designate_from_annotations(
            simulated.raw,
            [(s.event, s.time_range) for s in simulated.truth_semantics],
        )
    return EventIdentifier("forest", seed=BENCH_SEEDS["identifier"]).train(
        editor.training_set()
    )


@pytest.fixture(scope="session")
def translator(mall3, trained_identifier):
    """The reference Translator configuration."""
    return Translator(mall3, trained_identifier)


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Uniform fixed-width table printing for every experiment."""
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows
        else len(str(header[i]))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
