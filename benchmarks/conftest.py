"""Shared fixtures for the experiment benchmarks.

Heavy artifacts (buildings, simulated populations, trained identifiers) are
session-scoped and deterministic, so every bench run regenerates identical
rows.  Each bench prints the rows/series it reproduces; run with

    pytest benchmarks/ --benchmark-only -s

to see both the tables and the timing columns.
"""

from __future__ import annotations

import pytest

from repro.buildings import MallConfig, build_mall
from repro.core import EventIdentifier, Translator
from repro.events import EventEditor
from repro.simulation import BROWSER, SHOPPER, MobilitySimulator
from repro.timeutil import HOUR, TimeRange


@pytest.fixture(scope="session")
def mall3():
    """The 3-floor mall used by most experiments."""
    return build_mall(MallConfig(floors=3))


@pytest.fixture(scope="session")
def mall7():
    """The full 7-floor demo venue (E-F5)."""
    return build_mall(MallConfig(floors=7))


@pytest.fixture(scope="session")
def population(mall3):
    """Twelve shoppers/browsers across a mall day."""
    simulator = MobilitySimulator(mall3, seed=2017)
    return simulator.simulate_population(
        count=12,
        profiles=[SHOPPER, BROWSER],
        window=TimeRange(10 * HOUR, 20 * HOUR),
        seed=2017,
    )


@pytest.fixture(scope="session")
def device(population):
    """One representative device."""
    return population[0]


@pytest.fixture(scope="session")
def trained_identifier(population):
    """A forest identifier trained on three browsed devices' truth."""
    editor = EventEditor()
    for simulated in population[:3]:
        editor.designate_from_annotations(
            simulated.raw,
            [(s.event, s.time_range) for s in simulated.truth_semantics],
        )
    return EventIdentifier("forest", seed=0).train(editor.training_set())


@pytest.fixture(scope="session")
def translator(mall3, trained_identifier):
    """The reference Translator configuration."""
    return Translator(mall3, trained_identifier)


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Uniform fixed-width table printing for every experiment."""
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows
        else len(str(header[i]))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
