"""Profile phase one and commit the artifact the columnar work is based on.

The columnar hot path (:mod:`repro.columnar`) is profile-first: the
kernels it accelerates were chosen from this script's output, not from
intuition.  Run it to regenerate the committed artifact::

    PYTHONPATH=src python benchmarks/profile_phase_one.py

which cProfiles ``run_phase_one_chunk`` (the object layout) over the
deterministic mall population and writes
``benchmarks/profiles/phase_one_objects.txt`` — cumulative-time ranking
first, then total-time ranking.  The two dominant loops it exposes (and
the ones the columnar kernels therefore replace) are:

1. **point location** — ``DigitalSpaceModel.partition_at`` /
   ``primary_region_at`` and the ``Polygon.contains_point`` edge walks
   under them; every record is located ~3.6 times (speed validation
   locates both transition endpoints plus the straight-move midpoint,
   spatial matching locates the record again);
2. **density splitting** — ``DensitySplitter._core_flags``, quadratic in
   the dense neighborhood with per-comparison attribute chains.

A second profile of ``run_phase_one_chunk_columnar`` over the same feed
is appended for contrast, so the artifact also documents where the time
went after the optimization.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from pathlib import Path

PROFILE_DIR = Path(__file__).parent / "profiles"
ARTIFACT = PROFILE_DIR / "phase_one_objects.txt"

#: Explicit, committed population seed — rerunning reproduces the exact
#: same feed, so profile deltas are attributable to code changes only.
POPULATION_SEED = 31
POPULATION_COUNT = 16


def build_workload():
    from repro.buildings import MallConfig, build_mall
    from repro.core import Translator
    from repro.simulation import BROWSER, SHOPPER, MobilitySimulator
    from repro.timeutil import HOUR, TimeRange

    mall = build_mall(MallConfig(floors=3))
    simulator = MobilitySimulator(mall, seed=POPULATION_SEED)
    sequences = [
        device.raw
        for device in simulator.simulate_population(
            count=POPULATION_COUNT,
            profiles=[SHOPPER, BROWSER],
            window=TimeRange(9 * HOUR, 19 * HOUR),
            seed=POPULATION_SEED,
        )
    ]
    return Translator(mall), sequences


def profile_run(fn, *args, **kwargs) -> str:
    profiler = cProfile.Profile()
    profiler.enable()
    fn(*args, **kwargs)
    profiler.disable()
    out = io.StringIO()
    for sort in ("cumulative", "tottime"):
        stats = pstats.Stats(profiler, stream=out)
        stats.sort_stats(sort)
        out.write(f"--- sorted by {sort} (top 25) ---\n")
        stats.print_stats(25)
    return out.getvalue()


def main() -> None:
    from repro.core.translator import run_phase_one_chunk
    from repro.columnar import run_phase_one_chunk_columnar

    translator, sequences = build_workload()
    records = sum(len(s) for s in sequences)
    header = (
        f"phase-one cProfile | mall3 population "
        f"(count={POPULATION_COUNT}, seed={POPULATION_SEED}, "
        f"{records} records)\n"
        f"regenerate: PYTHONPATH=src python benchmarks/profile_phase_one.py\n"
    )
    objects = profile_run(
        run_phase_one_chunk, translator, sequences, emit_partial=True
    )
    columnar = profile_run(
        run_phase_one_chunk_columnar, translator, sequences, emit_partial=True
    )
    PROFILE_DIR.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(
        header
        + "\n================ objects layout (run_phase_one_chunk) "
        "================\n"
        + objects
        + "\n================ columnar layout "
        "(run_phase_one_chunk_columnar) ================\n"
        + columnar,
        encoding="utf-8",
    )
    print(f"wrote {ARTIFACT}")


if __name__ == "__main__":
    main()
