"""Profile phase two and commit the artifacts its telemetry is based on.

Phase two (complementing) is the engine's post-barrier fan-out: every
chunk of annotated sequences is re-scored against the merged batch
knowledge.  The ``trips_engine_chunk_seconds{phase="two"}`` histogram
surfaces exactly the wall time this script dissects; run it to
regenerate the committed artifacts::

    PYTHONPATH=src python benchmarks/profile_phase_two.py            # objects
    PYTHONPATH=src python benchmarks/profile_phase_two.py --compare  # both

which cProfiles ``run_phase_two_chunk`` over the deterministic mall
population with dropout windows punched into every device (a
fully-covered simulated day has no gaps, so the dropout is what gives
phase two a work list; phase one runs once, unprofiled, to produce the
annotated input and the batch knowledge).

The default run pins the *object-model* inference
(``InferenceConfig(compiled=False)``) and writes
``benchmarks/profiles/phase_two_objects.txt`` — its ranking shows the
fixed-hop Viterbi under ``SemanticsInference.best_path`` dominated by
``MobilityKnowledge.transition_probability`` / ``log_transition``
recomputation and networkx adjacency walks.  ``--compare`` additionally
profiles the compiled path (integer-indexed
``CompiledTransitionModel`` tables — the default in production) into
``benchmarks/profiles/phase_two_compiled.txt`` and prints a wall-clock
comparison of the two legs over identical inputs; the enforced version
of that comparison is ``benchmarks/bench_phase_two.py``.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import time
from pathlib import Path

PROFILE_DIR = Path(__file__).parent / "profiles"
ARTIFACT = PROFILE_DIR / "phase_two_objects.txt"
COMPILED_ARTIFACT = PROFILE_DIR / "phase_two_compiled.txt"

#: Explicit, committed population seed — rerunning reproduces the exact
#: same feed, so profile deltas are attributable to code changes only
#: (the same base workload profile_phase_one.py dissects).
POPULATION_SEED = 31
POPULATION_COUNT = 16
#: Dropout punched into every device so phase two has a real work list —
#: a fully-covered simulated day has no gaps to complement.
DROPOUT_GAP_SECONDS = 240.0
DROPOUT_GAP_COUNT = 4


def build_workload():
    from repro.buildings import MallConfig, build_mall
    from repro.core import Translator
    from repro.positioning import inject_dropout
    from repro.simulation import BROWSER, SHOPPER, MobilitySimulator
    from repro.timeutil import HOUR, TimeRange

    mall = build_mall(MallConfig(floors=3))
    simulator = MobilitySimulator(mall, seed=POPULATION_SEED)
    sequences = []
    for index, device in enumerate(
        simulator.simulate_population(
            count=POPULATION_COUNT,
            profiles=[SHOPPER, BROWSER],
            window=TimeRange(9 * HOUR, 19 * HOUR),
            seed=POPULATION_SEED,
        )
    ):
        degraded, _ = inject_dropout(
            device.raw,
            gap_seconds=DROPOUT_GAP_SECONDS,
            gap_count=DROPOUT_GAP_COUNT,
            seed=POPULATION_SEED + index,
        )
        sequences.append(degraded)
    return Translator(mall), sequences


def object_path_translator(model):
    """A translator pinned to the object-model (compiled=False) inference."""
    from repro.core import Translator
    from repro.core.complementing import ComplementorConfig, InferenceConfig
    from repro.core.translator import TranslatorConfig

    return Translator(
        model,
        config=TranslatorConfig(
            complementing=ComplementorConfig(
                inference=InferenceConfig(compiled=False)
            )
        ),
    )


def profile_run(fn, *args, **kwargs) -> str:
    profiler = cProfile.Profile()
    profiler.enable()
    fn(*args, **kwargs)
    profiler.disable()
    out = io.StringIO()
    for sort in ("cumulative", "tottime"):
        stats = pstats.Stats(profiler, stream=out)
        stats.sort_stats(sort)
        out.write(f"--- sorted by {sort} (top 25) ---\n")
        stats.print_stats(25)
    return out.getvalue()


def main(argv: list[str] | None = None) -> None:
    from repro.core.complementing import MobilityKnowledge
    from repro.core.translator import (
        build_partial_knowledge,
        run_phase_one_chunk,
        run_phase_two_chunk,
    )

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--compare",
        action="store_true",
        help="also profile the compiled inference path and print an "
        "objects-vs-compiled wall-clock comparison over identical inputs",
    )
    args = parser.parse_args(argv)

    translator, sequences = build_workload()
    records = sum(len(s) for s in sequences)

    # Phase one, unprofiled: its cost is profile_phase_one.py's subject.
    # The profiled input is exactly what the engine ships to a phase-two
    # worker — the annotated sequences plus the merged batch knowledge.
    chunk = run_phase_one_chunk(translator, sequences, emit_partial=True)
    annotated = [annotation.sequence for _, annotation in chunk.pairs]
    partial = build_partial_knowledge(translator, annotated)

    def make_knowledge():
        # Fresh knowledge per leg: the compiled leg attaches its tables
        # to the knowledge object, and sharing one would let the objects
        # leg accidentally serve queries off those tables.
        return MobilityKnowledge.from_partials(
            [partial],
            regions=list(partial.regions),
            smoothing=translator.config.knowledge_smoothing,
        )

    header = (
        f"phase-two cProfile | mall3 population "
        f"(count={POPULATION_COUNT}, seed={POPULATION_SEED}, "
        f"{records} records, {len(annotated)} annotated sequences)\n"
        f"regenerate: PYTHONPATH=src python benchmarks/profile_phase_two.py"
        " --compare\n"
    )
    objects_translator = object_path_translator(translator.model)
    PROFILE_DIR.mkdir(parents=True, exist_ok=True)

    profile = profile_run(
        run_phase_two_chunk, objects_translator, (make_knowledge(), annotated)
    )
    ARTIFACT.write_text(
        header
        + "\n================ objects inference (run_phase_two_chunk) "
        "================\n"
        + profile,
        encoding="utf-8",
    )
    print(f"wrote {ARTIFACT}")

    if not args.compare:
        return

    profile = profile_run(
        run_phase_two_chunk, translator, (make_knowledge(), annotated)
    )
    COMPILED_ARTIFACT.write_text(
        header
        + "\n================ compiled inference (run_phase_two_chunk) "
        "================\n"
        + profile,
        encoding="utf-8",
    )
    print(f"wrote {COMPILED_ARTIFACT}")

    legs = {"objects": objects_translator, "compiled": translator}
    timings = {}
    for name, leg in legs.items():
        best = min(
            _timed(run_phase_two_chunk, leg, (make_knowledge(), annotated))
            for _ in range(3)
        )
        timings[name] = best
    speedup = timings["objects"] / timings["compiled"]
    print(
        f"objects  {timings['objects']:8.3f}s\n"
        f"compiled {timings['compiled']:8.3f}s\n"
        f"speedup  {speedup:8.2f}x  (gate enforced by bench_phase_two.py)"
    )


def _timed(fn, *args) -> float:
    started = time.perf_counter()
    fn(*args)
    return time.perf_counter() - started


if __name__ == "__main__":
    main()
