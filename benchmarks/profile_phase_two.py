"""Profile phase two and commit the artifact its telemetry is based on.

Phase two (complementing) is the engine's post-barrier fan-out: every
chunk of annotated sequences is re-scored against the merged batch
knowledge.  The ``trips_engine_chunk_seconds{phase="two"}`` histogram
surfaces exactly the wall time this script dissects; run it to
regenerate the committed artifact::

    PYTHONPATH=src python benchmarks/profile_phase_two.py

which cProfiles ``run_phase_two_chunk`` over the deterministic mall
population with dropout windows punched into every device (a
fully-covered simulated day has no gaps, so the dropout is what gives
phase two a work list; phase one runs once, unprofiled, to produce the
annotated input and the batch knowledge) and writes
``benchmarks/profiles/phase_two_objects.txt`` — cumulative-time ranking
first, then total-time ranking.  The committed profile shows where a
phase-two window's time goes: the fixed-hop Viterbi search under
``SemanticsInference.best_path``, whose inner loop is dominated by
``MobilityKnowledge.transition_probability`` / ``log_transition``
lookups — the shape the ``trips_engine_chunk_seconds{phase="two"}``
histogram summarizes in production.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from pathlib import Path

PROFILE_DIR = Path(__file__).parent / "profiles"
ARTIFACT = PROFILE_DIR / "phase_two_objects.txt"

#: Explicit, committed population seed — rerunning reproduces the exact
#: same feed, so profile deltas are attributable to code changes only
#: (the same base workload profile_phase_one.py dissects).
POPULATION_SEED = 31
POPULATION_COUNT = 16
#: Dropout punched into every device so phase two has a real work list —
#: a fully-covered simulated day has no gaps to complement.
DROPOUT_GAP_SECONDS = 240.0
DROPOUT_GAP_COUNT = 4


def build_workload():
    from repro.buildings import MallConfig, build_mall
    from repro.core import Translator
    from repro.positioning import inject_dropout
    from repro.simulation import BROWSER, SHOPPER, MobilitySimulator
    from repro.timeutil import HOUR, TimeRange

    mall = build_mall(MallConfig(floors=3))
    simulator = MobilitySimulator(mall, seed=POPULATION_SEED)
    sequences = []
    for index, device in enumerate(
        simulator.simulate_population(
            count=POPULATION_COUNT,
            profiles=[SHOPPER, BROWSER],
            window=TimeRange(9 * HOUR, 19 * HOUR),
            seed=POPULATION_SEED,
        )
    ):
        degraded, _ = inject_dropout(
            device.raw,
            gap_seconds=DROPOUT_GAP_SECONDS,
            gap_count=DROPOUT_GAP_COUNT,
            seed=POPULATION_SEED + index,
        )
        sequences.append(degraded)
    return Translator(mall), sequences


def profile_run(fn, *args, **kwargs) -> str:
    profiler = cProfile.Profile()
    profiler.enable()
    fn(*args, **kwargs)
    profiler.disable()
    out = io.StringIO()
    for sort in ("cumulative", "tottime"):
        stats = pstats.Stats(profiler, stream=out)
        stats.sort_stats(sort)
        out.write(f"--- sorted by {sort} (top 25) ---\n")
        stats.print_stats(25)
    return out.getvalue()


def main() -> None:
    from repro.core.complementing import MobilityKnowledge
    from repro.core.translator import (
        build_partial_knowledge,
        run_phase_one_chunk,
        run_phase_two_chunk,
    )

    translator, sequences = build_workload()
    records = sum(len(s) for s in sequences)

    # Phase one, unprofiled: its cost is profile_phase_one.py's subject.
    # The profiled input is exactly what the engine ships to a phase-two
    # worker — the annotated sequences plus the merged batch knowledge.
    chunk = run_phase_one_chunk(translator, sequences, emit_partial=True)
    annotated = [annotation.sequence for _, annotation in chunk.pairs]
    partial = build_partial_knowledge(translator, annotated)
    knowledge = MobilityKnowledge.from_partials(
        [partial],
        regions=list(partial.regions),
        smoothing=translator.config.knowledge_smoothing,
    )

    header = (
        f"phase-two cProfile | mall3 population "
        f"(count={POPULATION_COUNT}, seed={POPULATION_SEED}, "
        f"{records} records, {len(annotated)} annotated sequences)\n"
        f"regenerate: PYTHONPATH=src python benchmarks/profile_phase_two.py\n"
    )
    profile = profile_run(
        run_phase_two_chunk, translator, (knowledge, annotated)
    )
    PROFILE_DIR.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(
        header
        + "\n================ objects layout (run_phase_two_chunk) "
        "================\n"
        + profile,
        encoding="utf-8",
    )
    print(f"wrote {ARTIFACT}")


if __name__ == "__main__":
    main()
