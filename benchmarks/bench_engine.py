"""Engine — serial-vs-parallel batch translation throughput.

The ROADMAP north star is a backend that serves millions of users as fast
as the hardware allows; the engine's claim is that two of the three batch
phases are embarrassingly parallel.  This bench translates the mall,
airport and office populations through every execution backend and
reports per-backend throughput plus speedup over the serial reference
(read from each run's own ``BatchTranslationResult``, so the numbers work
with or without ``--benchmark-only``).

Expected shape on an N-core machine: ``threads`` roughly flat (the phases
are pure-Python CPU work holding the GIL), ``processes`` approaching N×
on large batches once the pool fork + translator pickling is amortized.

A second table compares the phase-one **record layouts** (objects vs
columnar, see :mod:`repro.columnar`) per population: same serial engine,
same sequences, bit-for-bit asserted identical output, phase-one seconds
side by side.  The mall population must clear a >=1.5x columnar speedup —
asserted, so the CI smoke run fails if the fast path regresses — and the
whole comparison lands in a JSON artifact (``TRIPS_BENCH_ENGINE_JSON``,
default ``BENCH_engine.json``) stamped with the population seeds
for exact replay.
"""

from __future__ import annotations

import pytest

from repro.buildings import build_airport, build_office
from repro.columnar import pipeline as columnar_pipeline
from repro.core import Translator
from repro.engine import BACKENDS, Engine, EngineConfig
from repro.simulation import (
    BROWSER,
    SHOPPER,
    TRAVELER,
    WORKER,
    MobilitySimulator,
)
from repro.timeutil import HOUR, TimeRange

from .conftest import BENCH_SEEDS, print_table, write_bench_json

ALL_BACKENDS = sorted(BACKENDS)
_ROWS: list[list] = []
_SERIAL_SECONDS: dict[str, float] = {}
_LAYOUT_ROWS: list[list] = []
_LAYOUT_SUMMARY: dict[str, dict] = {}

#: The acceptance floor for the columnar fast path on the mall population.
MALL_MIN_SPEEDUP = 1.5


def _population(model, profiles, count, seed):
    simulator = MobilitySimulator(model, seed=seed)
    return [
        device.raw
        for device in simulator.simulate_population(
            count=count,
            profiles=profiles,
            window=TimeRange(9 * HOUR, 19 * HOUR),
            seed=seed,
        )
    ]


@pytest.fixture(scope="module")
def venues(mall3):
    """(translator, sequences, serial reference) for the three demo venues.

    The serial reference batch is computed once per venue here, not once
    per backend test, so the smoke run does no redundant baseline work.
    """
    return {
        "mall": _venue(
            Translator(mall3),
            _population(
                mall3, [SHOPPER, BROWSER], 16, BENCH_SEEDS["engine-mall"]
            ),
        ),
        "airport": _venue(
            *_translator_and_population(
                build_airport(gate_count=6), [TRAVELER], 12,
                BENCH_SEEDS["engine-airport"],
            )
        ),
        "office": _venue(
            *_translator_and_population(
                build_office(floors=2), [WORKER], 12,
                BENCH_SEEDS["engine-office"],
            )
        ),
    }


def _translator_and_population(model, profiles, count, seed):
    return Translator(model), _population(model, profiles, count, seed)


def _venue(translator, sequences):
    return translator, sequences, translator.translate_batch(sequences)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("venue", ["mall", "airport", "office"])
def test_engine_throughput(benchmark, venues, venue, backend):
    translator, sequences, serial = venues[venue]
    engine = Engine(
        translator, EngineConfig(backend=backend, workers=None, chunk_size=2)
    )

    batch = benchmark.pedantic(
        lambda: engine.translate_batch(sequences), rounds=2, iterations=1
    )

    # Correctness first: parallel output must be identical to serial.
    assert batch.results == serial.results
    assert batch.knowledge == serial.knowledge

    key = venue
    if backend == "serial":
        _SERIAL_SECONDS[key] = batch.elapsed_seconds
    baseline = _SERIAL_SECONDS.get(key, serial.elapsed_seconds)
    speedup = baseline / batch.elapsed_seconds if batch.elapsed_seconds else 0.0
    _ROWS.append(
        [
            venue,
            backend,
            batch.stats.workers,
            len(batch),
            batch.total_records,
            f"{batch.elapsed_seconds:.2f} s",
            f"{batch.records_per_second:,.0f} rec/s",
            f"{speedup:.2f}x",
        ]
    )


@pytest.mark.parametrize("venue", ["mall", "airport", "office"])
def test_record_layout_speedup(benchmark, venues, venue):
    """Objects vs columnar phase one, per population.

    Both layouts run through the same serial engine over the same
    sequences; output must be bit-for-bit identical, and phase-one wall
    time (``clean+annotate``, the only phase the layout touches) is
    compared directly.  The mall population — the paper's primary venue —
    must clear :data:`MALL_MIN_SPEEDUP`.
    """
    translator, sequences, serial = venues[venue]

    def phase_one_seconds(layout):
        engine = Engine(
            translator, EngineConfig(chunk_size=4, record_layout=layout)
        )
        best = None
        for _ in range(2):  # best-of-2 damps scheduler noise
            batch = engine.translate_batch(sequences)
            assert batch.results == serial.results
            assert batch.knowledge == serial.knowledge
            seconds = batch.stats.phase("clean+annotate").seconds
            best = seconds if best is None else min(best, seconds)
        return best

    chunks_before = columnar_pipeline.CHUNKS_RUN
    objects_seconds = phase_one_seconds("objects")
    columnar_seconds = benchmark.pedantic(
        lambda: phase_one_seconds("columnar"), rounds=1, iterations=1
    )
    # The columnar leg must actually have run its pipeline — a silent
    # fallback to the object path would "win" every comparison.
    assert columnar_pipeline.CHUNKS_RUN > chunks_before
    speedup = (
        objects_seconds / columnar_seconds if columnar_seconds else float("inf")
    )
    records = sum(len(s) for s in sequences)
    _LAYOUT_ROWS.append(
        [
            venue,
            records,
            f"{objects_seconds:.3f} s",
            f"{columnar_seconds:.3f} s",
            f"{speedup:.2f}x",
        ]
    )
    _LAYOUT_SUMMARY[venue] = {
        "records": records,
        "objects_phase_one_seconds": objects_seconds,
        "columnar_phase_one_seconds": columnar_seconds,
        "speedup": speedup,
    }
    if venue == "mall":
        assert speedup >= MALL_MIN_SPEEDUP, (
            f"columnar phase one only {speedup:.2f}x faster on the mall "
            f"population (floor: {MALL_MIN_SPEEDUP}x)"
        )


def teardown_module(module) -> None:
    print_table(
        "Engine: serial vs parallel batch translation",
        ["venue", "backend", "workers", "devices", "records", "time",
         "throughput", "vs serial"],
        _ROWS,
    )
    if _LAYOUT_ROWS:
        print_table(
            "Engine: phase-one record layouts (objects vs columnar)",
            ["venue", "records", "objects", "columnar", "speedup"],
            _LAYOUT_ROWS,
        )
        out = write_bench_json(
            "TRIPS_BENCH_ENGINE_JSON",
            "BENCH_engine.json",
            {
                "bench": "engine-record-layouts",
                "mall_min_speedup": MALL_MIN_SPEEDUP,
                "venues": _LAYOUT_SUMMARY,
            },
        )
        print(f"layout comparison JSON -> {out}")
