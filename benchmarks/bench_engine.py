"""Engine — serial-vs-parallel batch translation throughput.

The ROADMAP north star is a backend that serves millions of users as fast
as the hardware allows; the engine's claim is that two of the three batch
phases are embarrassingly parallel.  This bench translates the mall,
airport and office populations through every execution backend and
reports per-backend throughput plus speedup over the serial reference
(read from each run's own ``BatchTranslationResult``, so the numbers work
with or without ``--benchmark-only``).

Expected shape on an N-core machine: ``threads`` roughly flat (the phases
are pure-Python CPU work holding the GIL), ``processes`` approaching N×
on large batches once the pool fork + translator pickling is amortized.
"""

from __future__ import annotations

import pytest

from repro.buildings import build_airport, build_office
from repro.core import Translator
from repro.engine import BACKENDS, Engine, EngineConfig
from repro.simulation import (
    BROWSER,
    SHOPPER,
    TRAVELER,
    WORKER,
    MobilitySimulator,
)
from repro.timeutil import HOUR, TimeRange

from .conftest import print_table

ALL_BACKENDS = sorted(BACKENDS)
_ROWS: list[list] = []
_SERIAL_SECONDS: dict[str, float] = {}


def _population(model, profiles, count, seed):
    simulator = MobilitySimulator(model, seed=seed)
    return [
        device.raw
        for device in simulator.simulate_population(
            count=count,
            profiles=profiles,
            window=TimeRange(9 * HOUR, 19 * HOUR),
            seed=seed,
        )
    ]


@pytest.fixture(scope="module")
def venues(mall3):
    """(translator, sequences, serial reference) for the three demo venues.

    The serial reference batch is computed once per venue here, not once
    per backend test, so the smoke run does no redundant baseline work.
    """
    return {
        "mall": _venue(Translator(mall3), _population(mall3, [SHOPPER, BROWSER], 16, 31)),
        "airport": _venue(
            *_translator_and_population(
                build_airport(gate_count=6), [TRAVELER], 12, 32
            )
        ),
        "office": _venue(
            *_translator_and_population(
                build_office(floors=2), [WORKER], 12, 33
            )
        ),
    }


def _translator_and_population(model, profiles, count, seed):
    return Translator(model), _population(model, profiles, count, seed)


def _venue(translator, sequences):
    return translator, sequences, translator.translate_batch(sequences)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("venue", ["mall", "airport", "office"])
def test_engine_throughput(benchmark, venues, venue, backend):
    translator, sequences, serial = venues[venue]
    engine = Engine(
        translator, EngineConfig(backend=backend, workers=None, chunk_size=2)
    )

    batch = benchmark.pedantic(
        lambda: engine.translate_batch(sequences), rounds=2, iterations=1
    )

    # Correctness first: parallel output must be identical to serial.
    assert batch.results == serial.results
    assert batch.knowledge == serial.knowledge

    key = venue
    if backend == "serial":
        _SERIAL_SECONDS[key] = batch.elapsed_seconds
    baseline = _SERIAL_SECONDS.get(key, serial.elapsed_seconds)
    speedup = baseline / batch.elapsed_seconds if batch.elapsed_seconds else 0.0
    _ROWS.append(
        [
            venue,
            backend,
            batch.stats.workers,
            len(batch),
            batch.total_records,
            f"{batch.elapsed_seconds:.2f} s",
            f"{batch.records_per_second:,.0f} rec/s",
            f"{speedup:.2f}x",
        ]
    )


def teardown_module(module) -> None:
    print_table(
        "Engine: serial vs parallel batch translation",
        ["venue", "backend", "workers", "devices", "records", "time",
         "throughput", "vs serial"],
        _ROWS,
    )
