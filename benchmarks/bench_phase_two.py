"""Phase two — object-model vs compiled MAP inference.

Phase two re-scores every annotated sequence against the merged batch
knowledge; its inner loop is the hop-bounded Viterbi of
``SemanticsInference.best_path``.  The compiled path replaces the object
model's per-step networkx adjacency walks and smoothed-probability
recomputation with integer-indexed table lookups from a
:class:`CompiledTransitionModel` compiled once per knowledge generation
(see ``benchmarks/profiles/phase_two_objects.txt`` vs
``phase_two_compiled.txt`` for the before/after rankings).

This bench runs both paths over the identical dropout-injected mall
workload the committed profiles dissect.  Correctness first: the two
paths' complements must be *equal* — the compiled inference is bit-for-bit
the object inference (``tests/test_compiled_inference.py`` is the proof;
this bench re-asserts it on the benchmark workload).  Then the compiled
path must clear :data:`MIN_SPEEDUP` over the object path — asserted, so
the CI smoke run fails if the fast path regresses — and the comparison
lands in a JSON artifact (``TRIPS_BENCH_PHASE_TWO_JSON``, default
``BENCH_phase_two.json``) stamped with the population seeds for exact
replay.
"""

from __future__ import annotations

import time

import pytest

from repro.core.complementing import MobilityKnowledge
from repro.core.translator import (
    build_partial_knowledge,
    run_phase_one_chunk,
    run_phase_two_chunk,
)

from .conftest import print_table, write_bench_json
from .profile_phase_two import (
    DROPOUT_GAP_COUNT,
    DROPOUT_GAP_SECONDS,
    POPULATION_COUNT,
    POPULATION_SEED,
    build_workload,
    object_path_translator,
)

#: The acceptance floor for the compiled inference on the mall workload.
MIN_SPEEDUP = 2.0

#: Chunk repetitions per timed sample — the workload is tens of
#: milliseconds per leg, so a single pass is scheduler noise.
ITERATIONS = 3

_SUMMARY: dict = {}


@pytest.fixture(scope="module")
def workload():
    """The committed profile workload: annotated input + knowledge shard."""
    translator, sequences = build_workload()
    chunk = run_phase_one_chunk(translator, sequences, emit_partial=True)
    annotated = [annotation.sequence for _, annotation in chunk.pairs]
    partial = build_partial_knowledge(translator, annotated)

    def make_knowledge():
        # Fresh knowledge per leg: the compiled leg attaches its tables
        # to the knowledge object, and sharing one would let the objects
        # leg accidentally serve queries off those tables.
        return MobilityKnowledge.from_partials(
            [partial],
            regions=list(partial.regions),
            smoothing=translator.config.knowledge_smoothing,
        )

    return translator, annotated, make_knowledge


def _best_seconds(leg_translator, annotated, make_knowledge) -> float:
    best = None
    for _ in range(3):
        # One knowledge per sample, shared across the iterations — the
        # engine's shape (one barrier knowledge serves every chunk), so
        # the compiled leg pays its compile once inside the timed region
        # and the later chunks measure the warm path.
        knowledge = make_knowledge()
        started = time.perf_counter()
        for _ in range(ITERATIONS):
            run_phase_two_chunk(leg_translator, (knowledge, annotated))
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_compiled_phase_two_speedup(benchmark, workload):
    """Compiled inference: equal output, >= MIN_SPEEDUP x faster."""
    translator, annotated, make_knowledge = workload
    objects_translator = object_path_translator(translator.model)

    # Correctness first: identical complements on the bench workload.
    reference = run_phase_two_chunk(
        objects_translator, (make_knowledge(), annotated)
    )
    compiled = run_phase_two_chunk(translator, (make_knowledge(), annotated))
    assert compiled == reference
    gaps_found = sum(result.gaps_found for result in reference)
    assert gaps_found > 0, "bench workload produced no gaps to infer"

    objects_seconds = _best_seconds(
        objects_translator, annotated, make_knowledge
    )
    compiled_seconds = benchmark.pedantic(
        lambda: _best_seconds(translator, annotated, make_knowledge),
        rounds=1,
        iterations=1,
    )
    speedup = (
        objects_seconds / compiled_seconds if compiled_seconds else float("inf")
    )
    _SUMMARY.update(
        {
            "bench": "phase-two-compiled-inference",
            "min_speedup": MIN_SPEEDUP,
            "population": {
                "seed": POPULATION_SEED,
                "count": POPULATION_COUNT,
                "dropout_gap_seconds": DROPOUT_GAP_SECONDS,
                "dropout_gap_count": DROPOUT_GAP_COUNT,
            },
            "sequences": len(annotated),
            "gaps_found": gaps_found,
            "iterations_per_sample": ITERATIONS,
            "objects_seconds": objects_seconds,
            "compiled_seconds": compiled_seconds,
            "speedup": speedup,
            "outputs_equal": True,
        }
    )
    assert speedup >= MIN_SPEEDUP, (
        f"compiled phase two only {speedup:.2f}x faster on the mall "
        f"dropout workload (floor: {MIN_SPEEDUP}x)"
    )


def teardown_module(module) -> None:
    if not _SUMMARY:
        return
    print_table(
        "Phase two: object-model vs compiled inference",
        ["sequences", "gaps", "objects", "compiled", "speedup"],
        [
            [
                _SUMMARY["sequences"],
                _SUMMARY["gaps_found"],
                f"{_SUMMARY['objects_seconds']:.3f} s",
                f"{_SUMMARY['compiled_seconds']:.3f} s",
                f"{_SUMMARY['speedup']:.2f}x",
            ]
        ],
    )
    out = write_bench_json(
        "TRIPS_BENCH_PHASE_TWO_JSON",
        "BENCH_phase_two.json",
        _SUMMARY,
    )
    print(f"phase-two comparison JSON -> {out}")
