"""Knowledge aging — fold+retire vs rebuild-from-retained-epochs.

A sliding-window prior can be maintained two ways: the
:class:`~repro.knowledge.KnowledgeStore` way (fold the new epoch's shard,
*subtract* the expired epoch's shard — O(#regions + #edges) per roll), or
the naive way (keep the ring of shards and rebuild the knowledge with
``MobilityKnowledge.from_partials`` every roll — O(window × edges)).
Both are exact, so this bench first asserts they produce bit-for-bit
identical knowledge at every single epoch roll — the "retiring an epoch
== never having folded it" guarantee — then reports sustained epoch-roll
throughput for each strategy and the fold+retire speedup.

Epochs here are the mall population's ingestion windows, translated once
up front and cycled to a few hundred rolls, so the bench measures the
lifecycle algebra itself rather than translation.

The run also writes a JSON summary (``TRIPS_BENCH_AGING_JSON`` env var,
default ``BENCH_knowledge_aging.json`` in the working directory) so CI
can archive the numbers as an artifact and trend them across commits.
"""

from __future__ import annotations

import time
from collections import deque

import pytest

from repro.core import Translator
from repro.core.complementing import MobilityKnowledge
from repro.engine import Engine, EngineConfig
from repro.knowledge import KnowledgeStore
from repro.positioning import RecordStream, sequence_stream
from repro.simulation import BROWSER, SHOPPER, MobilitySimulator
from repro.timeutil import HOUR, TimeRange

from .conftest import print_table, write_bench_json

WINDOW_SECONDS = 1800.0
EPOCH_ROLLS = 240
WINDOW_EPOCHS = (4, 16)
_ROWS: list[list] = []
_SUMMARY: list[dict] = []


@pytest.fixture(scope="module")
def epoch_shards(mall3):
    """Per-ingestion-window PartialKnowledge shards of a mall day."""
    translator = Translator(mall3)
    simulator = MobilitySimulator(mall3, seed=71)
    devices = simulator.simulate_population(
        count=12,
        profiles=[SHOPPER, BROWSER],
        window=TimeRange(9 * HOUR, 19 * HOUR),
        seed=71,
    )
    records = sorted(
        (record for device in devices for record in device.raw),
        key=lambda record: (record.timestamp, record.device_id),
    )
    engine = Engine(translator, EngineConfig(chunk_size=4))
    shards = []
    for window in sequence_stream(
        RecordStream(iter(records)), WINDOW_SECONDS
    ):
        store = engine.make_store()
        engine.translate_increment([window], store=store)
        shards.append(store.to_partial())
    assert len(shards) > 3
    return translator, shards


@pytest.mark.parametrize("max_epochs", WINDOW_EPOCHS)
def test_fold_retire_vs_rebuild(benchmark, epoch_shards, max_epochs):
    translator, shards = epoch_shards
    regions = translator.knowledge_regions()
    smoothing = translator.config.knowledge_smoothing
    rolls = [shards[i % len(shards)] for i in range(EPOCH_ROLLS)]

    # Correctness first: fold+retire equals rebuild-from-retained-epochs
    # at *every* roll, bit for bit.
    store = KnowledgeStore(
        regions, smoothing=smoothing, retention=f"window:{max_epochs}"
    )
    ring: deque = deque(maxlen=max_epochs)
    for shard in rolls:
        store.fold(shard)
        store.roll()
        ring.append(shard)
        rebuilt = MobilityKnowledge.from_partials(
            list(ring), regions=regions, smoothing=smoothing
        )
        assert store.knowledge == rebuilt

    def fold_and_retire() -> float:
        store = KnowledgeStore(
            regions, smoothing=smoothing, retention=f"window:{max_epochs}"
        )
        started = time.perf_counter()
        for shard in rolls:
            store.fold(shard)
            store.roll()
        return time.perf_counter() - started

    def rebuild_per_roll() -> float:
        ring: deque = deque(maxlen=max_epochs)
        started = time.perf_counter()
        for shard in rolls:
            ring.append(shard)
            MobilityKnowledge.from_partials(
                list(ring), regions=regions, smoothing=smoothing
            )
        return time.perf_counter() - started

    retire_seconds = benchmark.pedantic(
        fold_and_retire, rounds=3, iterations=1
    )
    rebuild_seconds = rebuild_per_roll()
    speedup = (
        rebuild_seconds / retire_seconds if retire_seconds > 0 else 0.0
    )
    _ROWS.append(
        [
            f"window:{max_epochs}",
            EPOCH_ROLLS,
            f"{EPOCH_ROLLS / retire_seconds:,.0f} rolls/s",
            f"{EPOCH_ROLLS / rebuild_seconds:,.0f} rolls/s",
            f"{speedup:.1f}x",
        ]
    )
    _SUMMARY.append(
        {
            "retention": f"window:{max_epochs}",
            "epoch_rolls": EPOCH_ROLLS,
            "epoch_shards": len(shards),
            "fold_retire_seconds": retire_seconds,
            "rebuild_seconds": rebuild_seconds,
            "fold_retire_rolls_per_second": EPOCH_ROLLS / retire_seconds,
            "rebuild_rolls_per_second": EPOCH_ROLLS / rebuild_seconds,
            "speedup": speedup,
            "identical_to_rebuild": True,
        }
    )


def teardown_module(module) -> None:
    print_table(
        "Knowledge aging: fold+retire vs rebuild-from-retained-epochs",
        ["retention", "rolls", "fold+retire", "rebuild", "speedup"],
        _ROWS,
    )
    if _SUMMARY:
        out = write_bench_json(
            "TRIPS_BENCH_AGING_JSON",
            "BENCH_knowledge_aging.json",
            {"bench": "knowledge-aging", "policies": _SUMMARY},
        )
        print(f"wrote knowledge-aging bench summary to {out}")
