"""Live streaming service — sustained window throughput vs one-shot batch.

The live service's pitch: the same records, translated window by window
with incremental knowledge folds, should cost little over a one-shot
batch — the price of being *online* is the per-window dispatch plus the
end-of-stream re-complement, not a knowledge rebuild per window.  This
bench replays the mall, airport and office populations as timestamp-
ordered feeds through the live service, reports sustained windows/sec and
records/sec, and compares wall time against ``Engine.translate_batch``
over the identical windowed sequences — asserting, as always, that the
finalized live output is *identical* to the batch reference.

The run also writes a JSON summary (``TRIPS_BENCH_JSON`` env var, default
``BENCH_live_stream.json`` in the working directory) so CI can archive
the numbers as an artifact and trend them across commits.
"""

from __future__ import annotations

import time

import pytest

from repro.buildings import build_airport, build_office
from repro.core import Translator
from repro.engine import Engine, EngineConfig
from repro.live import LiveConfig, LiveTranslationService
from repro.positioning import RecordStream, sequence_stream
from repro.simulation import (
    BROWSER,
    SHOPPER,
    TRAVELER,
    WORKER,
    MobilitySimulator,
)
from repro.timeutil import HOUR, TimeRange

from .conftest import print_table, write_bench_json

WINDOW_SECONDS = 1800.0
_ROWS: list[list] = []
_SUMMARY: list[dict] = []


def _records(model, profiles, count, seed):
    simulator = MobilitySimulator(model, seed=seed)
    devices = simulator.simulate_population(
        count=count,
        profiles=profiles,
        window=TimeRange(9 * HOUR, 19 * HOUR),
        seed=seed,
    )
    return sorted(
        (record for device in devices for record in device.raw),
        key=lambda record: (record.timestamp, record.device_id),
    )


@pytest.fixture(scope="module")
def feeds(mall3):
    """(translator, time-sorted records, batch reference) per demo venue.

    The reference is ``Engine.translate_batch`` over the same windowed
    sequence split the live service will see.
    """
    venues = {
        "mall": (Translator(mall3), _records(mall3, [SHOPPER, BROWSER], 16, 51)),
        "airport": (
            Translator(airport := build_airport(gate_count=6)),
            _records(airport, [TRAVELER], 12, 52),
        ),
        "office": (
            Translator(office := build_office(floors=2)),
            _records(office, [WORKER], 12, 53),
        ),
    }
    prepared = {}
    for name, (translator, records) in venues.items():
        sequences = list(
            sequence_stream(RecordStream(iter(records)), WINDOW_SECONDS)
        )
        started = time.perf_counter()
        reference = Engine(
            translator, EngineConfig(chunk_size=4)
        ).translate_batch(sequences)
        batch_seconds = time.perf_counter() - started
        prepared[name] = (translator, records, reference, batch_seconds)
    return prepared


@pytest.mark.parametrize("venue", ["mall", "airport", "office"])
def test_live_stream_throughput(benchmark, feeds, venue):
    translator, records, reference, batch_seconds = feeds[venue]

    def replay():
        service = LiveTranslationService(
            {venue: translator},
            EngineConfig(chunk_size=4),
            LiveConfig(window_seconds=WINDOW_SECONDS),
        )
        with service:
            service.run_stream(RecordStream(iter(records)), venue_id=venue)
            finalized = service.finalize()
        return service.stats, finalized[venue]

    stats, finalized = benchmark.pedantic(replay, rounds=2, iterations=1)

    # Correctness first: the finalized live output must be identical to
    # the one-shot batch over the same windowed sequences.
    assert finalized.results == reference.results
    assert finalized.knowledge == reference.knowledge

    overhead = (
        stats.elapsed_seconds / batch_seconds if batch_seconds > 0 else 0.0
    )
    _ROWS.append(
        [
            venue,
            stats.windows,
            stats.records,
            stats.sequences,
            f"{stats.windows_per_second:.1f} win/s",
            f"{stats.records_per_second:,.0f} rec/s",
            f"{stats.elapsed_seconds:.2f} s",
            f"{batch_seconds:.2f} s",
            f"{overhead:.2f}x",
        ]
    )
    _SUMMARY.append(
        {
            "venue": venue,
            "window_seconds": WINDOW_SECONDS,
            "windows": stats.windows,
            "records": stats.records,
            "sequences": stats.sequences,
            "semantics": stats.semantics,
            "windows_per_second": stats.windows_per_second,
            "records_per_second": stats.records_per_second,
            "live_seconds": stats.elapsed_seconds,
            "batch_seconds": batch_seconds,
            "live_vs_batch": overhead,
            "identical_to_batch": True,
        }
    )


def teardown_module(module) -> None:
    print_table(
        "Live streaming: sustained windows vs one-shot batch",
        ["venue", "windows", "records", "sequences", "window rate",
         "record rate", "live", "batch", "live/batch"],
        _ROWS,
    )
    if _SUMMARY:
        out = write_bench_json(
            "TRIPS_BENCH_JSON",
            "BENCH_live_stream.json",
            {"bench": "live-stream", "venues": _SUMMARY},
        )
        print(f"wrote live-stream bench summary to {out}")
