"""E-F6 — Figure 6: interactive latency budget of the main UI loop.

Every interaction in the paper's main interface maps to one API call
here; for a web UI to feel responsive each must be comfortably sub-second
on the single-device hot path.
"""

from __future__ import annotations

import pytest

from repro.dsm import load_dsm, save_dsm
from repro.viewer import ViewerSession

from .conftest import print_table

_ROWS: list[list] = []


def _row(name, benchmark, budget_ms=1000.0):
    mean_ms = benchmark.stats.stats.mean * 1e3
    _ROWS.append([name, f"{mean_ms:.1f} ms", f"{budget_ms:.0f} ms"])
    assert mean_ms < budget_ms


def test_load_dsm_from_disk(benchmark, mall7, tmp_path_factory):
    path = tmp_path_factory.mktemp("ui") / "mall.json"
    save_dsm(mall7, path)

    model = benchmark(lambda: load_dsm(path))
    assert model.entity_count == mall7.entity_count
    _row("open DSM file (7 floors)", benchmark)


def test_translate_one_device(benchmark, translator, device):
    result = benchmark(lambda: translator.translate(device.raw))
    assert len(result.semantics) > 0
    _row("translate one device", benchmark)


def test_open_viewer_session(benchmark, mall3, translator, device):
    result = translator.translate(device.raw)

    session = benchmark(
        lambda: ViewerSession(mall3, result, ground_truth=device.ground_truth)
    )
    assert session.semantics_timeline
    _row("open viewer session", benchmark)


def test_click_timeline_entry(benchmark, mall3, translator, device):
    result = translator.translate(device.raw)
    session = ViewerSession(mall3, result)

    covered = benchmark(lambda: session.select_semantic(0))
    assert covered
    _row("click a semantics entry", benchmark, budget_ms=100.0)


def test_switch_floor_and_render(benchmark, mall3, translator, device):
    result = translator.translate(device.raw)
    session = ViewerSession(mall3, result, ground_truth=device.ground_truth)
    floors = mall3.floor_numbers

    def switch_render():
        for floor in floors:
            session.switch_floor(floor)
            session.render(show_labels=False)

    benchmark(switch_render)
    per_floor = benchmark.stats.stats.mean / len(floors) * 1e3
    _ROWS.append(["switch floor + render", f"{per_floor:.1f} ms", "1000 ms"])
    assert per_floor < 1000.0


def test_zz_report(benchmark):
    benchmark(lambda: None)  # anchor so --benchmark-only runs the report
    print_table(
        "Figure 6: interactive step latencies (single-device hot path)",
        ["interaction", "mean latency", "budget"],
        _ROWS,
    )
    assert len(_ROWS) == 5
