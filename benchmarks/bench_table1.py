"""E-T1 — Table 1: raw indoor positioning data vs mobility semantics.

Regenerates the paper's Table 1 for a scripted shopper who stays in Adidas,
passes Nike, and stays at the Cashier: the raw record column, the semantics
column, and the condensation factor between them.  The benchmark measures
the translation that produces the right-hand column.
"""

from __future__ import annotations

import pytest

from repro.core import EVENT_PASS_BY, EVENT_STAY, Translator
from repro.geometry import Point
from repro.positioning import PositioningSequence, RawPositioningRecord
from repro.simulation import WifiErrorModel
from repro.timeutil import parse_clock

from .conftest import print_table
from tests.conftest import make_two_shop_dsm


def scripted_shopper() -> PositioningSequence:
    """oi's afternoon: Adidas 1:02-1:18pm, Nike pass, Cashier 1:20-1:24pm."""
    import numpy as np

    rng = np.random.default_rng(42)
    records: list[RawPositioningRecord] = []

    def dwell(x, y, start, end, step=7.0):
        t = parse_clock(start)
        stop = parse_clock(end)
        while t <= stop:
            dx, dy = rng.normal(0, 0.6, 2)
            records.append(
                RawPositioningRecord(t, "oi", Point(x + dx, y + dy, 1))
            )
            t += step

    def walk(x0, y0, x1, y1, start, end, step=4.0):
        t0, t1 = parse_clock(start), parse_clock(end)
        t = t0
        while t <= t1:
            f = (t - t0) / (t1 - t0)
            records.append(
                RawPositioningRecord(
                    t, "oi", Point(x0 + (x1 - x0) * f, y0 + (y1 - y0) * f, 1)
                )
            )
            t += step

    dwell(5, 15, "1:02:05pm", "1:18:10pm")           # stay Adidas
    walk(5, 15, 5, 7, "1:18:14pm", "1:18:21pm")      # out through the door
    walk(5, 7, 14, 7, "1:18:24pm", "1:18:32pm")      # along the hall
    walk(14, 7, 12, 12, "1:18:34pm", "1:18:40pm")    # into Nike
    walk(12, 12, 19, 17, "1:18:44pm", "1:18:56pm", step=2.0)  # across Nike
    walk(19, 17, 19, 11, "1:18:58pm", "1:19:04pm", step=2.0)  # back out
    walk(19, 11, 25, 7, "1:19:08pm", "1:19:16pm", step=2.0)   # along the hall
    walk(25, 7, 25, 14, "1:20:08pm", "1:20:15pm", step=2.0)   # into Cashier
    dwell(25, 15, "1:20:40pm", "1:24:05pm")          # stay Cashier
    return PositioningSequence("oi", records)


@pytest.fixture(scope="module")
def two_shop():
    return make_two_shop_dsm()


def test_table1_translation(benchmark, two_shop):
    sequence = scripted_shopper()
    translator = Translator(two_shop)

    result = benchmark(lambda: translator.translate(sequence))

    semantics = result.semantics
    print_table(
        "Table 1 (left): raw positioning records (first/last 2 of "
        f"{len(sequence)})",
        ["record"],
        [[str(r)] for r in list(sequence)[:2] + list(sequence)[-2:]],
    )
    print_table(
        "Table 1 (right): mobility semantics",
        ["triplet"],
        [[s.format()] for s in semantics],
    )
    ratio = semantics.conciseness_ratio(len(sequence))
    print(f"condensation: {len(sequence)} records -> {len(semantics)} "
          f"triplets ({ratio:.1f}x)")

    # The paper's example shape: stay@Adidas, pass-by@Nike, stay@Cashier.
    by_region = {s.region_name: s.event for s in semantics}
    assert by_region.get("Adidas") == EVENT_STAY
    assert by_region.get("Cashier") == EVENT_STAY
    if "Nike" in by_region:
        assert by_region["Nike"] == EVENT_PASS_BY
    assert ratio >= 10.0


def test_table1_with_noise_channel(benchmark, two_shop):
    """The same trip observed through the Wi-Fi error model still
    translates to the Table 1 shape."""
    clean = scripted_shopper()
    channel = WifiErrorModel(sigma=1.0, dropout_rate=0.05,
                             outlier_rate=0.01, floor_error_rate=0.0)
    noisy = channel.observe(clean, [1], seed=7)
    translator = Translator(two_shop)

    result = benchmark(lambda: translator.translate(noisy))

    events = {s.region_name: s.event for s in result.semantics}
    print_table(
        "Table 1 under the Wi-Fi error model",
        ["triplet"],
        [[s.format()] for s in result.semantics],
    )
    assert events.get("Adidas") == EVENT_STAY
    assert events.get("Cashier") == EVENT_STAY
