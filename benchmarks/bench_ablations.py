"""E-X2 — Ablations of the three-layer framework's design choices.

Disables each layer (and sweeps the splitter's spatial radius) on the same
degraded workload and scores against ground truth.  Expected shapes:
disabling cleaning hurts region accuracy on noisy data; disabling
complementing leaves dropout gaps unfilled; the splitter has a broad sweet
spot around the default eps.
"""

from __future__ import annotations

import pytest

from repro.core import Translator, TranslatorConfig, score_semantics
from repro.core.annotation import AnnotatorConfig, SplitterConfig
from repro.positioning import inject_dropout, inject_floor_errors, inject_outliers

from .conftest import print_table

_LAYER_ROWS: list[list] = []
_EPS_ROWS: list[list] = []


@pytest.fixture(scope="module")
def degraded(mall3, population):
    """Population data with floor errors, outliers and dropout injected."""
    sequences = []
    for index, device in enumerate(population):
        sequence, _ = inject_floor_errors(
            device.raw, 0.06, mall3.floor_numbers, seed=100 + index
        )
        sequence, _ = inject_outliers(sequence, 0.03, seed=200 + index)
        sequence, _ = inject_dropout(
            sequence, gap_seconds=200.0, seed=300 + index
        )
        sequences.append(sequence)
    return sequences


def _score_batch(mall3, population, batch):
    truth = {d.device_id: d.truth_semantics for d in population}
    scores = [
        score_semantics(r.semantics, truth[r.device_id]) for r in batch
    ]
    count = len(scores)
    return (
        sum(s.region_time_accuracy for s in scores) / count,
        sum(s.event_accuracy for s in scores) / count,
        sum(s.triplet_f1 for s in scores) / count,
    )


@pytest.mark.parametrize(
    "arm,config",
    [
        ("full pipeline", TranslatorConfig()),
        ("no cleaning", TranslatorConfig(enable_cleaning=False)),
        ("no complementing", TranslatorConfig(enable_complementing=False)),
        (
            "no cleaning + no complementing",
            TranslatorConfig(
                enable_cleaning=False, enable_complementing=False
            ),
        ),
    ],
)
def test_layer_ablation(
    benchmark, mall3, population, trained_identifier, degraded, arm, config
):
    translator = Translator(mall3, trained_identifier, config)

    batch = benchmark.pedantic(
        lambda: translator.translate_batch(degraded), rounds=1, iterations=1
    )
    region, event, f1 = _score_batch(mall3, population, batch)
    inferred = sum(r.semantics.inferred_count for r in batch)
    _LAYER_ROWS.append(
        [arm, f"{region:.3f}", f"{event:.3f}", f"{f1:.3f}", inferred]
    )


@pytest.mark.parametrize("eps_space", [2.0, 4.5, 8.0, 12.0])
def test_splitter_eps_sensitivity(
    benchmark, mall3, population, trained_identifier, eps_space
):
    config = TranslatorConfig(
        annotation=AnnotatorConfig(
            splitter=SplitterConfig(eps_space=eps_space)
        )
    )
    translator = Translator(mall3, trained_identifier, config)
    sequences = [d.raw for d in population]

    batch = benchmark.pedantic(
        lambda: translator.translate_batch(sequences), rounds=1, iterations=1
    )
    region, event, f1 = _score_batch(mall3, population, batch)
    _EPS_ROWS.append(
        [f"{eps_space:.1f} m", f"{region:.3f}", f"{event:.3f}", f"{f1:.3f}"]
    )


def test_zz_report(benchmark):
    benchmark(lambda: None)  # anchor so --benchmark-only runs the report
    print_table(
        "Ablation: layer contributions on degraded data "
        "(6% floor errors, 3% outliers, 200 s dropout)",
        ["arm", "region-time", "event", "triplet-F1", "inferred"],
        _LAYER_ROWS,
    )
    print_table(
        "Ablation: splitter eps_space sensitivity (clean channel)",
        ["eps_space", "region-time", "event", "triplet-F1"],
        _EPS_ROWS,
    )
    assert len(_LAYER_ROWS) == 4 and len(_EPS_ROWS) == 4
    full = next(r for r in _LAYER_ROWS if r[0] == "full pipeline")
    stripped = next(
        r for r in _LAYER_ROWS if r[0] == "no cleaning + no complementing"
    )
    # Expected shape: the full pipeline beats the stripped one.
    assert float(full[1]) >= float(stripped[1]) - 0.01
