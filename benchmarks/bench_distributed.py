"""Distributed ingestion — shard-count scaling with exact merged knowledge.

The horizontal-scaling pitch: hold the per-shard resources fixed (each
shard is one :class:`~repro.live.LiveTranslationService` on a
one-worker process pool) and add shards.  Records partition by stable
device hash, shards translate their slices concurrently, and the
knowledge exchange reconciles per-venue knowledge every few cluster
windows.  This bench replays a mall day through shards=1, 2 and 4,
reports sustained record throughput per configuration and the speedup
over the single shard — and, correctness first, asserts that the merged
cluster knowledge (and every shard's own post-exchange knowledge) is
**bit-for-bit identical** to the one-shot ``Engine.translate_batch``
knowledge over the same windowed sequences.

The run also writes a JSON summary (``TRIPS_BENCH_DISTRIBUTED_JSON`` env
var, default ``BENCH_distributed.json`` in the working directory) so CI
can archive the numbers as an artifact and trend the shard-scaling
curve across commits.
"""

from __future__ import annotations

import os

import pytest

from repro.core import Translator
from repro.distributed import ShardedIngestService
from repro.engine import Engine, EngineConfig
from repro.live import LiveConfig
from repro.positioning import RecordStream, sequence_stream
from repro.simulation import BROWSER, SHOPPER, MobilitySimulator
from repro.timeutil import HOUR, TimeRange

from .conftest import print_table, write_bench_json

WINDOW_SECONDS = 1800.0
SHARD_COUNTS = (1, 2, 4)
EXCHANGE_INTERVAL = 4
_ROWS: list[list] = []
_SUMMARY: list[dict] = []


@pytest.fixture(scope="module")
def feed(mall7):
    """A mall day's feed plus the one-shot batch reference knowledge.

    The full 7-floor venue: per-record cleaning cost grows with the
    entity count (indoor-distance partitioning), while per-record IPC
    cost does not, so worker compute dominates shipping and the shard
    scaling curve measures the architecture, not the pickler.
    """
    translator = Translator(mall7)
    simulator = MobilitySimulator(mall7, seed=83)
    devices = simulator.simulate_population(
        count=16,
        profiles=[SHOPPER, BROWSER],
        window=TimeRange(9 * HOUR, 19 * HOUR),
        seed=83,
    )
    records = sorted(
        (record for device in devices for record in device.raw),
        key=lambda record: (record.timestamp, record.device_id),
    )
    sequences = list(
        sequence_stream(RecordStream(iter(records)), WINDOW_SECONDS)
    )
    reference = Engine(
        translator, EngineConfig(chunk_size=4)
    ).translate_batch(sequences)
    return translator, records, reference


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_ingest_scaling(benchmark, feed, shards):
    translator, records, reference = feed
    rounds: list = []

    def replay():
        cluster = ShardedIngestService(
            {"mall": translator},
            shards=shards,
            # Fixed per-shard resources: one worker process each, so the
            # scaling axis under test is the shard count alone.
            engine_config=EngineConfig(
                backend="processes", workers=1, chunk_size=4
            ),
            live_config=LiveConfig(window_seconds=WINDOW_SECONDS),
            exchange_interval=EXCHANGE_INTERVAL,
        )
        with cluster:
            stats = cluster.run_stream(
                RecordStream(iter(records)), venue_id="mall"
            )
            merged = cluster.merged_knowledge("mall")
            per_shard = [
                shard.knowledge("mall") for shard in cluster.shards
            ]
        rounds.append(stats)
        return stats, merged, per_shard

    _, merged, per_shard = benchmark.pedantic(
        replay, rounds=2, iterations=1
    )
    # Best of the rounds: one noisy-neighbor round must not invert the
    # shard-scaling comparison on a shared CI runner.
    stats = max(rounds, key=lambda s: s.records_per_second)

    # Correctness first: the merged cluster knowledge — and every
    # shard's own knowledge after the final exchange round — must be
    # bit-for-bit the one-shot batch fold.
    assert merged == reference.knowledge
    for knowledge in per_shard:
        if knowledge is not None:
            assert knowledge == merged

    _ROWS.append(
        [
            shards,
            stats.windows,
            stats.records,
            stats.exchange.rounds,
            f"{stats.records_per_second:,.0f} rec/s",
            f"{stats.elapsed_seconds:.2f} s",
        ]
    )
    _SUMMARY.append(
        {
            "shards": shards,
            "windows": stats.windows,
            "records": stats.records,
            "sequences": stats.sequences,
            "exchange_rounds": stats.exchange.rounds,
            "exchange_seconds": stats.exchange.exchange_seconds,
            "records_per_second": stats.records_per_second,
            "elapsed_seconds": stats.elapsed_seconds,
            "merged_identical_to_batch": True,
        }
    )


def teardown_module(module) -> None:
    by_shards = {entry["shards"]: entry for entry in _SUMMARY}
    base = by_shards.get(1)
    for entry in _SUMMARY:
        entry["speedup_vs_one_shard"] = (
            entry["records_per_second"] / base["records_per_second"]
            if base and base["records_per_second"] > 0
            else None
        )
    for row, entry in zip(_ROWS, _SUMMARY):
        speedup = entry["speedup_vs_one_shard"]
        row.append(f"{speedup:.2f}x" if speedup is not None else "-")
    print_table(
        "Distributed ingestion: shard-count scaling (1 worker per shard)",
        ["shards", "windows", "records", "exchanges", "throughput",
         "elapsed", "speedup"],
        _ROWS,
    )
    if _SUMMARY:
        out = write_bench_json(
            "TRIPS_BENCH_DISTRIBUTED_JSON",
            "BENCH_distributed.json",
            {"bench": "distributed", "scaling": _SUMMARY},
        )
        print(f"wrote distributed bench summary to {out}")
    # With at least 4 cores, four one-worker shards must outrun one —
    # that is the whole point of the horizontal axis.
    four = by_shards.get(4)
    if base and four and (os.cpu_count() or 1) >= 4:
        assert (
            four["records_per_second"] > base["records_per_second"]
        ), "shards=4 did not beat shards=1 on a >=4-core machine"
