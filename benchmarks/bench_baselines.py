"""E-X3 — TRIPS versus the GPS-era related work ([10], [12]-style).

The paper's introduction argues the existing stop/move systems "are unable
to capture complex indoor topology ... which is the key to cleaning the raw
indoor positioning data".  This bench measures that claim: the same
workload through TRIPS, the [10]-style stop/move reconstructor, and the
[12]-style nearest-region annotator.  Expected shape: TRIPS wins on
region-time accuracy and event accuracy, with comparable conciseness.
"""

from __future__ import annotations

import pytest

from repro.core import (
    NearestRegionAnnotator,
    StopMoveReconstructor,
    score_semantics,
)

from .conftest import print_table

_ROWS: list[list] = []


def _summarize(name, outputs, population):
    truth = {d.device_id: d.truth_semantics for d in population}
    scores = [
        score_semantics(semantics, truth[device_id])
        for device_id, semantics in outputs
    ]
    count = len(scores)
    records = {d.device_id: len(d.raw) for d in population}
    conciseness = sum(
        semantics.conciseness_ratio(records[device_id])
        for device_id, semantics in outputs
        if len(semantics) > 0
    ) / count
    _ROWS.append(
        [
            name,
            f"{sum(s.region_time_accuracy for s in scores) / count:.3f}",
            f"{sum(s.event_accuracy for s in scores) / count:.3f}",
            f"{sum(s.triplet_f1 for s in scores) / count:.3f}",
            f"{conciseness:.0f}x",
        ]
    )


def test_trips_full(benchmark, population, translator):
    sequences = [d.raw for d in population]

    batch = benchmark.pedantic(
        lambda: translator.translate_batch(sequences), rounds=1, iterations=1
    )
    _summarize(
        "TRIPS (learned, 3-layer)",
        [(r.device_id, r.semantics) for r in batch],
        population,
    )


def test_stop_move_baseline(benchmark, mall3, population):
    reconstructor = StopMoveReconstructor(mall3)
    sequences = [d.raw for d in population]

    def run():
        return [(s.device_id, reconstructor.translate(s)) for s in sequences]

    outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    _summarize("stop/move reconstruction [10]", outputs, population)


def test_nearest_region_baseline(benchmark, mall3, population):
    annotator = NearestRegionAnnotator(mall3)
    sequences = [d.raw for d in population]

    def run():
        return [(s.device_id, annotator.translate(s)) for s in sequences]

    outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    _summarize("nearest-region annotation [12]", outputs, population)


def test_zz_report(benchmark):
    benchmark(lambda: None)  # anchor so --benchmark-only runs the report
    print_table(
        "TRIPS vs GPS-era baselines (12 devices, Wi-Fi error channel)",
        ["system", "region-time", "event", "triplet-F1", "conciseness"],
        _ROWS,
    )
    assert len(_ROWS) == 3
    trips = next(r for r in _ROWS if r[0].startswith("TRIPS"))
    for row in _ROWS:
        if row is trips:
            continue
        # Expected shape: TRIPS at least matches every baseline on
        # region-time accuracy and beats them on event accuracy.
        assert float(trips[1]) >= float(row[1]) - 0.02
        assert float(trips[2]) >= float(row[2]) - 0.02
