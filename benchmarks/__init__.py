"""Benchmark suite package marker.

Required so pytest imports bench modules as ``benchmarks.<name>`` and the
``from .conftest import ...`` helper imports resolve.
"""
