"""E-F3a — Figure 3, Cleaning layer: repair quality vs injected error rate.

Sweeps floor-error and outlier rates over ground-truth trajectories and
reports what the cleaning layer recovers: floor accuracy before/after,
RMSE before/after, and cleaning throughput.  Expected shape: floor
accuracy after cleaning stays near 1.0 across the sweep and RMSE drops
whenever outliers are present.
"""

from __future__ import annotations

import pytest

from repro.core import RawDataCleaner, score_positions
from repro.positioning import (
    inject_floor_errors,
    inject_gaussian_noise,
    inject_outliers,
)

from .conftest import print_table

_FLOOR_ROWS: list[list] = []
_OUTLIER_ROWS: list[list] = []


@pytest.mark.parametrize("rate", [0.0, 0.05, 0.10, 0.20, 0.40])
def test_floor_error_sweep(benchmark, mall3, device, rate):
    truth = device.ground_truth
    corrupted, _ = inject_floor_errors(
        truth, rate, mall3.floor_numbers, seed=int(rate * 100)
    )
    cleaner = RawDataCleaner(mall3.topology)

    result = benchmark(lambda: cleaner.clean(corrupted))

    before = score_positions(corrupted, truth)
    after = score_positions(result.cleaned, truth)
    _FLOOR_ROWS.append(
        [
            f"{rate:.0%}",
            f"{before.floor_accuracy:.3f}",
            f"{after.floor_accuracy:.3f}",
            result.report.invalid_count,
            len(result.report.floor_corrected),
        ]
    )
    # Cleaning must never make floors worse, and must recover most errors
    # up to its design point (~20% corruption); beyond that, consecutive
    # corrupted records anchor on each other and recovery saturates.
    assert after.floor_accuracy >= before.floor_accuracy - 0.01
    if 0 < rate <= 0.20:
        assert after.floor_accuracy >= 0.95


@pytest.mark.parametrize("rate", [0.0, 0.02, 0.05, 0.10, 0.20])
def test_outlier_sweep(benchmark, mall3, device, rate):
    truth = device.ground_truth
    noisy = inject_gaussian_noise(truth, 1.0, seed=3)
    corrupted, _ = inject_outliers(
        noisy, rate, magnitude=30.0, seed=int(rate * 1000)
    )
    cleaner = RawDataCleaner(mall3.topology)

    result = benchmark(lambda: cleaner.clean(corrupted))

    before = score_positions(corrupted, truth)
    after = score_positions(result.cleaned, truth)
    _OUTLIER_ROWS.append(
        [
            f"{rate:.0%}",
            f"{before.rmse:.2f}",
            f"{after.rmse:.2f}",
            f"{before.max_error:.1f}",
            f"{after.max_error:.1f}",
        ]
    )
    if rate > 0:
        assert after.rmse < before.rmse


def test_cleaning_throughput(benchmark, mall3, population):
    sequences = [d.raw for d in population]
    cleaner = RawDataCleaner(mall3.topology)

    def clean_all():
        return [cleaner.clean(s) for s in sequences]

    benchmark(clean_all)
    total = sum(len(s) for s in sequences)
    rate = total / benchmark.stats.stats.mean
    print(f"\ncleaning throughput: {total} records at {rate:,.0f} records/s")
    assert rate > 1000


def test_zz_report(benchmark):
    benchmark(lambda: None)  # anchor so --benchmark-only runs the report
    print_table(
        "Figure 3 / Cleaning: floor value correction vs injected rate",
        ["error rate", "floor-acc before", "floor-acc after",
         "detected invalid", "floor-corrected"],
        _FLOOR_ROWS,
    )
    print_table(
        "Figure 3 / Cleaning: location interpolation vs outlier rate "
        "(sigma = 1 m)",
        ["outlier rate", "rmse before", "rmse after",
         "max err before", "max err after"],
        _OUTLIER_ROWS,
    )
    assert len(_FLOOR_ROWS) == 5 and len(_OUTLIER_ROWS) == 5
