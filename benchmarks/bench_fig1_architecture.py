"""E-F1 — Figure 1: architecture data-flow throughput per component.

Figure 1 shows the Configurator -> Translator -> Viewer chain.  This bench
measures each component on the same workload, reproducing the data flow as
a throughput table: selection (Data Selector), cleaning, annotation,
complementing, and viewer timeline construction.
"""

from __future__ import annotations

import pytest

from repro.core import MobilityKnowledge, RawDataCleaner, Translator
from repro.core.annotation import MobilitySemanticsAnnotator
from repro.core.complementing import MobilitySemanticsComplementor
from repro.positioning import DataSelector, DurationRule, MemorySource
from repro.viewer import build_timelines

from .conftest import print_table

_ROWS: list[list] = []


@pytest.fixture(scope="module")
def records(population):
    return sorted(r for d in population for r in d.raw)


@pytest.fixture(scope="module")
def sequences(population):
    return [d.raw for d in population]


def _record_row(component, count, seconds):
    _ROWS.append(
        [component, count, f"{seconds * 1e3:.1f} ms",
         f"{count / seconds:,.0f} rec/s" if seconds > 0 else "-"]
    )


def test_configurator_data_selector(benchmark, records):
    selector = DataSelector(
        [MemorySource(records)], rule=DurationRule(min_seconds=300)
    )
    result = benchmark(selector.select)
    assert result
    stats = benchmark.stats.stats
    _record_row("Configurator: Data Selector", len(records), stats.mean)


def test_translator_cleaning(benchmark, mall3, sequences):
    cleaner = RawDataCleaner(mall3.topology)

    def clean_all():
        return [cleaner.clean(s) for s in sequences]

    results = benchmark(clean_all)
    total = sum(len(s) for s in sequences)
    assert len(results) == len(sequences)
    _record_row("Translator: Raw Data Cleaner", total, benchmark.stats.stats.mean)


def test_translator_annotation(benchmark, mall3, sequences, trained_identifier):
    cleaner = RawDataCleaner(mall3.topology)
    cleaned = [cleaner.clean(s).cleaned for s in sequences]
    annotator = MobilitySemanticsAnnotator(mall3, trained_identifier)

    def annotate_all():
        return [annotator.annotate(c) for c in cleaned]

    results = benchmark(annotate_all)
    total = sum(len(s) for s in sequences)
    assert all(len(r.sequence) > 0 for r in results)
    _record_row("Translator: Annotator", total, benchmark.stats.stats.mean)


def test_translator_complementing(benchmark, mall3, sequences, trained_identifier):
    cleaner = RawDataCleaner(mall3.topology)
    annotator = MobilitySemanticsAnnotator(mall3, trained_identifier)
    originals = [
        annotator.annotate(cleaner.clean(s).cleaned).sequence
        for s in sequences
    ]
    knowledge = MobilityKnowledge.from_sequences(
        originals, [r.region_id for r in mall3.regions()]
    )
    complementor = MobilitySemanticsComplementor(knowledge, mall3.topology)

    def complement_all():
        return [complementor.complement(o) for o in originals]

    results = benchmark(complement_all)
    assert len(results) == len(originals)
    total = sum(len(o) for o in originals)
    _ROWS.append(
        ["Translator: Complementor", f"{total} triplets",
         f"{benchmark.stats.stats.mean * 1e3:.1f} ms", "-"]
    )


def test_viewer_timeline_build(benchmark, mall3, population, translator):
    device = population[0]
    result = translator.translate(device.raw)

    def build():
        return build_timelines(
            raw=device.raw,
            cleaned=result.cleaned,
            semantics=result.semantics,
            ground_truth=device.ground_truth,
            model=mall3,
        )

    timelines = benchmark(build)
    total = sum(len(t) for t in timelines.values())
    _record_row("Viewer: timeline build", total, benchmark.stats.stats.mean)


def test_zz_report(benchmark, population):
    benchmark(lambda: None)  # anchor so --benchmark-only runs the report
    total_records = sum(len(d.raw) for d in population)
    print_table(
        f"Figure 1: component throughput ({len(population)} devices, "
        f"{total_records} raw records)",
        ["component", "items", "mean time", "throughput"],
        _ROWS,
    )
    assert len(_ROWS) >= 5
