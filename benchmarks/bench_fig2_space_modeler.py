"""E-F2 — Figure 2: DSM creation in the Space Modeler.

Figure 2 shows the drawing tool.  This bench reproduces the three-step
creation pipeline headlessly: (1) import + trace (drawing-op latency and
undo/redo), (2) topology computation versus entity count, (3) DSM JSON
round-trip for the three shipped buildings plus synthetic grids.
"""

from __future__ import annotations

import pytest

from repro.buildings import MallConfig, build_airport, build_mall, build_office
from repro.dsm import EntityKind, Topology, dsm_from_json, dsm_to_json
from repro.spacemodel import DrawingCanvas, build_dsm

from .conftest import print_table


def synthetic_grid(rooms_per_side: int) -> list[DrawingCanvas]:
    """A square grid of rooms around a cross of corridors."""
    canvas = DrawingCanvas(1)
    size = 10.0
    for row in range(rooms_per_side):
        for col in range(rooms_per_side):
            x, y = col * size, row * size + size  # corridor strip at y<10
            drawn = canvas.draw_rectangle(
                x, y, x + size, y + size, kind=EntityKind.ROOM,
                name=f"unit-{row}-{col}",
            )
            canvas.assign_tag(drawn.shape_id, "shop", name=f"Unit {row}.{col}")
    corridor = canvas.draw_rectangle(
        0, 0, rooms_per_side * size, size, kind=EntityKind.HALLWAY,
        name="corridor",
    )
    canvas.assign_tag(corridor.shape_id, "hall")
    for col in range(rooms_per_side):
        canvas.draw_door((col * size + size / 2, size - 0.35), snap=False)
    canvas.draw_door((0, size / 2), entrance=True, snap=False)
    return [canvas]


def test_drawing_operations(benchmark):
    """Latency of the core draw-edit-undo loop (1000 operations)."""

    def draw_edit_undo():
        canvas = DrawingCanvas(1)
        canvas.import_floorplan("plan.png", 500, 500)
        shapes = []
        for i in range(200):
            shape = canvas.draw_rectangle(
                (i % 20) * 10, (i // 20) * 10,
                (i % 20) * 10 + 8, (i // 20) * 10 + 8,
                kind=EntityKind.ROOM,
            )
            shapes.append(shape.shape_id)
        for shape_id in shapes[:200]:
            canvas.assign_tag(shape_id, "shop")
        for shape_id in shapes[:100]:
            canvas.move_shape(shape_id, 0.5, 0.5)
        for _ in range(100):
            canvas.undo()
        for _ in range(100):
            canvas.redo()
        return canvas

    canvas = benchmark(draw_edit_undo)
    ops = 200 + 200 + 100 + 200
    mean = benchmark.stats.stats.mean
    print(f"\nFigure 2 drawing loop: {ops} ops in {mean * 1e3:.1f} ms "
          f"({ops / mean:,.0f} ops/s)")
    assert len(canvas) == 200


@pytest.mark.parametrize("rooms_per_side", [2, 5, 10, 15])
def test_topology_computation_scaling(benchmark, rooms_per_side):
    """Topology build time versus entity count."""
    model = build_dsm(synthetic_grid(rooms_per_side), validate=False)

    def compute():
        return Topology.build(model)

    topology = benchmark(compute)
    n_partitions = topology.partition_graph.number_of_nodes()
    print(f"\n{rooms_per_side}x{rooms_per_side} grid: "
          f"{model.entity_count} entities, {n_partitions} partitions, "
          f"{topology.region_graph.number_of_edges()} region edges, "
          f"{benchmark.stats.stats.mean * 1e3:.1f} ms")
    assert n_partitions == rooms_per_side**2 + 1


@pytest.mark.parametrize(
    "name,builder",
    [
        ("mall-7F", lambda: build_mall(MallConfig(floors=7))),
        ("office-3F", build_office),
        ("airport-2F", build_airport),
    ],
)
def test_building_construction(benchmark, name, builder):
    """Full build (draw + tag + validate) of each shipped building."""
    model = benchmark(builder)
    print(f"\n{name}: {model.entity_count} entities, "
          f"{model.region_count} regions, "
          f"{benchmark.stats.stats.mean * 1e3:.1f} ms")
    assert model.region_count > 0


def test_dsm_json_roundtrip(benchmark, mall7):
    """Serialize + parse the 7-floor mall DSM."""

    def roundtrip():
        return dsm_from_json(dsm_to_json(mall7))

    clone = benchmark(roundtrip)
    text = dsm_to_json(mall7)
    print(f"\nDSM JSON: {len(text) / 1024:.0f} KiB, round-trip "
          f"{benchmark.stats.stats.mean * 1e3:.1f} ms")
    assert clone.entity_count == mall7.entity_count


def test_zz_report(benchmark, mall7):
    benchmark(lambda: None)  # anchor so --benchmark-only runs the report
    rows = []
    for floor in mall7.floor_numbers:
        entities = [e for e in mall7.entities() if e.floor == floor]
        regions = mall7.regions(floor=floor)
        rows.append([f"{floor}F", len(entities), len(regions)])
    print_table(
        "Figure 2: the 7-floor demo venue produced by the Space Modeler",
        ["floor", "entities", "regions"],
        rows,
    )
    assert len(rows) == 7
