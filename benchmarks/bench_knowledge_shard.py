"""Knowledge barrier — sharded merge vs serial rebuild.

After PR 1 the knowledge build was the only serial phase left: every
population funnelled through one core at the barrier while the worker
pool idled.  The sharded strategy moves the aggregation onto the
phase-one workers (each chunk emits a ``PartialKnowledge``) and leaves
the caller an O(#regions + #edges) merge per chunk.  This bench
translates the mall, airport and office populations under both
strategies and reports the barrier-phase time, asserting byte-identical
knowledge and results either way.

Expected shape: the ``rebuild`` barrier grows with the number of
annotated triplets in the batch; the ``sharded`` barrier grows only with
#chunks × (#regions + #edges), so its share of the run collapses as
populations grow.
"""

from __future__ import annotations

import pytest

from repro.buildings import build_airport, build_office
from repro.core import Translator
from repro.engine import Engine, EngineConfig
from repro.simulation import (
    BROWSER,
    SHOPPER,
    TRAVELER,
    WORKER,
    MobilitySimulator,
)
from repro.timeutil import HOUR, TimeRange

from .conftest import print_table

STRATEGIES = ("rebuild", "sharded")
_ROWS: list[list] = []
_REBUILD_BARRIER: dict[str, float] = {}


def _population(model, profiles, count, seed):
    simulator = MobilitySimulator(model, seed=seed)
    return [
        device.raw
        for device in simulator.simulate_population(
            count=count,
            profiles=profiles,
            window=TimeRange(9 * HOUR, 19 * HOUR),
            seed=seed,
        )
    ]


@pytest.fixture(scope="module")
def venues(mall3):
    """(translator, sequences, serial reference batch) per demo venue."""
    airport = build_airport(gate_count=6)
    office = build_office(floors=2)
    venues = {
        "mall": (Translator(mall3), _population(mall3, [SHOPPER, BROWSER], 16, 41)),
        "airport": (Translator(airport), _population(airport, [TRAVELER], 12, 42)),
        "office": (Translator(office), _population(office, [WORKER], 12, 43)),
    }
    return {
        name: (translator, sequences, translator.translate_batch(sequences))
        for name, (translator, sequences) in venues.items()
    }


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("venue", ["mall", "airport", "office"])
def test_knowledge_barrier(benchmark, venues, venue, strategy):
    translator, sequences, serial = venues[venue]
    engine = Engine(
        translator,
        EngineConfig(
            backend="serial", chunk_size=2, knowledge_build=strategy
        ),
    )

    batch = benchmark.pedantic(
        lambda: engine.translate_batch(sequences), rounds=3, iterations=1
    )

    # Correctness first: both strategies must reproduce the serial
    # translator exactly — knowledge included, bit for bit.
    assert batch.results == serial.results
    assert batch.knowledge == serial.knowledge

    barrier = batch.stats.phase("knowledge").seconds
    if strategy == "rebuild":
        _REBUILD_BARRIER[venue] = barrier
    baseline = _REBUILD_BARRIER.get(venue, barrier)
    speedup = baseline / barrier if barrier > 0 else float("inf")
    _ROWS.append(
        [
            venue,
            strategy,
            len(batch),
            batch.total_semantics,
            batch.stats.chunk_count,
            f"{barrier * 1e3:.3f} ms",
            f"{batch.elapsed_seconds:.2f} s",
            f"{speedup:.2f}x",
        ]
    )


def teardown_module(module) -> None:
    print_table(
        "Knowledge barrier: sharded merge vs serial rebuild",
        ["venue", "strategy", "devices", "semantics", "chunks",
         "barrier", "total", "barrier speedup"],
        _ROWS,
    )
