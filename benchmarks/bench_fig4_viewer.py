"""E-F4 — Figure 4: visualization of mobility data sequences.

Reproduces the Viewer's mechanics as measurable operations: building the
four-source timeline abstraction, the display-point policy switch
(footnote 1), synchronized selection by time range, SVG map rendering
with all overlays, visibility toggling, and animation playback.
"""

from __future__ import annotations

import pytest

from repro.viewer import (
    DataSourceKind,
    DisplayPointPolicy,
    ViewerSession,
    build_timelines,
)

from .conftest import print_table


@pytest.fixture(scope="module")
def translated(translator, device):
    return translator.translate(device.raw)


@pytest.fixture(scope="module")
def session(mall3, translated, device):
    return ViewerSession(mall3, translated, ground_truth=device.ground_truth)


def test_timeline_build(benchmark, mall3, translated, device):
    def build():
        return build_timelines(
            raw=device.raw,
            cleaned=translated.cleaned,
            semantics=translated.semantics,
            ground_truth=device.ground_truth,
            model=mall3,
        )

    timelines = benchmark(build)
    total = sum(len(t) for t in timelines.values())
    rate = total / benchmark.stats.stats.mean
    print(f"\ntimeline build: {total} entries at {rate:,.0f} entries/s")
    assert set(timelines) == set(DataSourceKind)


@pytest.mark.parametrize("policy", list(DisplayPointPolicy))
def test_display_point_policies(benchmark, mall3, translated, device, policy):
    from repro.viewer import timeline_from_semantics

    timeline = benchmark(
        lambda: timeline_from_semantics(
            translated.semantics, translated.cleaned, policy, mall3
        )
    )
    print(f"\n{policy.value}: {len(timeline)} semantics entries")
    assert len(timeline) == len(translated.semantics)


def test_synchronized_selection(benchmark, session):
    indexes = list(range(len(session.semantics_timeline)))

    def select_all():
        total = 0
        for index in indexes:
            covered = session.select_semantic(index)
            total += sum(len(v) for v in covered.values())
        return total

    covered_total = benchmark(select_all)
    per_click = benchmark.stats.stats.mean / len(indexes) * 1e3
    print(f"\nsynchronized selection: {len(indexes)} clicks, "
          f"{covered_total} covered entries, {per_click:.2f} ms/click")
    assert per_click < 50.0  # interactive budget


def test_svg_render(benchmark, session):
    document = benchmark(lambda: session.render())
    text = document.to_string()
    mean = benchmark.stats.stats.mean
    print(f"\nSVG render: {len(text) / 1024:.0f} KiB in {mean * 1e3:.1f} ms")
    assert "<svg" in text


def test_visibility_toggle_render(benchmark, session):
    def toggle_and_render():
        session.toggle_source(DataSourceKind.RAW)
        document = session.render()
        session.toggle_source(DataSourceKind.RAW)
        return document

    document = benchmark(toggle_and_render)
    assert document is not None


def test_animation_playback(benchmark, session):
    frames = benchmark(lambda: session.animate(step_seconds=15.0))
    rate = len(frames) / benchmark.stats.stats.mean
    print(f"\nanimation: {len(frames)} frames at {rate:,.0f} frames/s")
    assert any(f.current_semantic_label for f in frames)


def test_zz_report(benchmark, session, translated, device):
    benchmark(lambda: None)  # anchor so --benchmark-only runs the report
    rows = []
    for source, timeline in session.timelines.items():
        rows.append([source.value, len(timeline),
                     "instant" if timeline.entries and timeline[0].is_instant
                     else "ranged"])
    print_table(
        f"Figure 4: one device's data sources as timelines "
        f"(device {device.device_id})",
        ["source", "entries", "entry type"],
        rows,
    )
    assert len(rows) == 4
