"""E-F3b — Figure 3, Annotation layer: event identification quality.

Reproduces the annotation layer's two learnable claims: identification
accuracy improves with the number of Event Editor designations before
plateauing, and the model family is a free choice (classifier ablation).
Expected shape: every learned model beats the zero-training heuristic on
designated segments once training data is plentiful; accuracy rises with
training size.
"""

from __future__ import annotations

import pytest

from repro.core import EventIdentifier, HeuristicEventIdentifier
from repro.core.annotation import DensitySplitter
from repro.events import EventEditor
from repro.learning import accuracy, macro_f1

from .conftest import print_table

_SIZE_ROWS: list[list] = []
_MODEL_ROWS: list[list] = []


@pytest.fixture(scope="module")
def designations(population):
    """Training designations from 8 devices; test segments from 4 others."""
    train_editor = EventEditor()
    for device in population[:8]:
        train_editor.designate_from_annotations(
            device.raw,
            [(s.event, s.time_range) for s in device.truth_semantics],
        )
    test_editor = EventEditor()
    for device in population[8:]:
        test_editor.designate_from_annotations(
            device.raw,
            [(s.event, s.time_range) for s in device.truth_semantics],
        )
    return train_editor.training_set(), test_editor.training_set()


def _evaluate(identifier, test_set) -> tuple[float, float]:
    predicted = [
        identifier.identify(list(segment.records)).event
        for segment in test_set.segments
    ]
    return accuracy(test_set.labels, predicted), macro_f1(
        test_set.labels, predicted
    )


@pytest.mark.parametrize("size", [6, 12, 25, 50, 100])
def test_training_size_sweep(benchmark, designations, size):
    training, test = designations
    subset = training.subset(size, seed=1)

    def train():
        return EventIdentifier("forest", seed=0).train(subset)

    identifier = benchmark(train)
    acc, f1 = _evaluate(identifier, test)
    _SIZE_ROWS.append([len(subset), f"{acc:.3f}", f"{f1:.3f}"])
    assert acc >= 0.6


@pytest.mark.parametrize(
    "model", ["heuristic", "logistic", "tree", "forest", "knn", "naive-bayes"]
)
def test_model_family_ablation(benchmark, designations, model):
    training, test = designations

    if model == "heuristic":
        identifier = HeuristicEventIdentifier()
        benchmark(lambda: _evaluate(identifier, test))
    else:
        identifier = EventIdentifier(model, seed=0).train(training)
        benchmark(lambda: _evaluate(identifier, test))
    acc, f1 = _evaluate(identifier, test)
    _MODEL_ROWS.append([model, f"{acc:.3f}", f"{f1:.3f}"])
    assert acc >= 0.55


def test_splitting_throughput(benchmark, population):
    splitter = DensitySplitter()
    sequences = [d.raw for d in population]

    def split_all():
        return [splitter.split(s) for s in sequences]

    results = benchmark(split_all)
    total = sum(len(s) for s in sequences)
    rate = total / benchmark.stats.stats.mean
    snippet_count = sum(len(r) for r in results)
    print(f"\nsplitting: {total} records -> {snippet_count} snippets "
          f"at {rate:,.0f} records/s")
    assert rate > 5000


def test_zz_report(benchmark, designations):
    benchmark(lambda: None)  # anchor so --benchmark-only runs the report
    training, test = designations
    print_table(
        f"Figure 3 / Annotation: forest accuracy vs designated training "
        f"segments (test = {len(test)} segments)",
        ["training segments", "accuracy", "macro-F1"],
        _SIZE_ROWS,
    )
    print_table(
        f"Figure 3 / Annotation: classifier family ablation "
        f"(train = {len(training)} segments)",
        ["model", "accuracy", "macro-F1"],
        _MODEL_ROWS,
    )
    # Expected shapes: accuracy grows with training size...
    if len(_SIZE_ROWS) >= 2:
        assert float(_SIZE_ROWS[-1][1]) >= float(_SIZE_ROWS[0][1]) - 0.05
    # ...and the best learned model beats the fixed-threshold heuristic.
    learned = [float(r[1]) for r in _MODEL_ROWS if r[0] != "heuristic"]
    heuristic = [float(r[1]) for r in _MODEL_ROWS if r[0] == "heuristic"]
    if learned and heuristic:
        assert max(learned) >= heuristic[0] - 0.02
