"""Telemetry — enabled overhead per window, and the near-free null path.

Telemetry must be cheap enough to leave on: the instruments on the live
window path are a handful of dict lookups and lock-guarded integer adds
per window, against milliseconds of translation.  This bench replays the
mall population through the live service with telemetry disabled and
enabled, takes the **minimum over alternating rounds** (min-of-repeats
discards scheduler noise; alternating keeps cache warmth fair), and
gates the enabled overhead at **3% per window**.  Each enabled round
also re-checks exactness neutrality: the finalized output must equal the
disabled round's bit for bit.

The disabled path is gated separately: a guarded instrumentation site
(`if registry.enabled:` on a :class:`~repro.telemetry.NullRegistry`)
and an unguarded null-instrument update must both cost well under a
microsecond per operation.

The run also writes a JSON summary (``TRIPS_BENCH_TELEMETRY_JSON`` env
var, default ``BENCH_telemetry.json`` in the working directory) so CI
can archive the numbers and trend the overhead across commits.
"""

from __future__ import annotations

import time

import pytest

from repro.core import Translator
from repro.engine import EngineConfig
from repro.live import LiveConfig, LiveTranslationService
from repro.positioning import RecordStream, windowed_records
from repro.simulation import BROWSER, SHOPPER, MobilitySimulator
from repro.telemetry import MetricsRegistry, NullRegistry, use_registry
from repro.timeutil import HOUR, TimeRange

from .conftest import print_table, write_bench_json

WINDOW_SECONDS = 1800.0
#: Alternating disabled/enabled measurement rounds; min-of-rounds gates.
ROUNDS = 5
#: The acceptance ceiling: enabled telemetry may cost at most 3% per
#: window over the disabled path.
MAX_ENABLED_OVERHEAD = 0.03
#: Ceiling for one guarded (or null-instrument) operation on the
#: disabled path — generous for slow CI runners; typical cost is tens
#: of nanoseconds.
MAX_NULL_OP_SECONDS = 2e-6

_ROWS: list[list] = []
_SUMMARY: dict = {}


@pytest.fixture(scope="module")
def feed(mall3):
    """(translator, windowed mall records) — the live window workload."""
    simulator = MobilitySimulator(mall3, seed=83)
    devices = simulator.simulate_population(
        count=12,
        profiles=[SHOPPER, BROWSER],
        window=TimeRange(9 * HOUR, 19 * HOUR),
        seed=83,
    )
    records = sorted(
        (record for device in devices for record in device.raw),
        key=lambda record: (record.timestamp, record.device_id),
    )
    windows = list(
        windowed_records(RecordStream(iter(records)), WINDOW_SECONDS)
    )
    assert len(windows) > 3
    return Translator(mall3), windows


def _replay(translator, windows):
    """One full live replay; returns (seconds, finalized batch)."""
    service = LiveTranslationService(
        {"mall": translator},
        EngineConfig(chunk_size=4),
        LiveConfig(window_seconds=WINDOW_SECONDS),
    )
    with service:
        started = time.perf_counter()
        for window in windows:
            service.process_window(window, "mall")
        elapsed = time.perf_counter() - started
        finalized = service.finalize()["mall"]
    return elapsed, finalized


def test_enabled_overhead_per_window(feed):
    translator, windows = feed
    _replay(translator, windows)  # warm caches before measuring anything

    disabled_times: list[float] = []
    enabled_times: list[float] = []
    for _ in range(ROUNDS):
        disabled_seconds, reference = _replay(translator, windows)
        with use_registry(MetricsRegistry()) as registry:
            enabled_seconds, instrumented = _replay(translator, windows)
            windows_seen = registry.counter("trips_live_windows_total").value
        # The registry really was live, and it really was neutral.
        assert windows_seen == len(windows)
        assert instrumented.results == reference.results
        assert instrumented.knowledge == reference.knowledge
        disabled_times.append(disabled_seconds)
        enabled_times.append(enabled_seconds)

    disabled = min(disabled_times)
    enabled = min(enabled_times)
    overhead = enabled / disabled - 1.0
    per_window_us = 1e6 * (enabled - disabled) / len(windows)

    _ROWS.append(
        [
            len(windows),
            f"{1e3 * disabled / len(windows):.2f} ms/win",
            f"{1e3 * enabled / len(windows):.2f} ms/win",
            f"{overhead * 100:+.2f}%",
            f"{per_window_us:+.0f} us/win",
        ]
    )
    _SUMMARY["enabled_overhead"] = {
        "windows": len(windows),
        "rounds": ROUNDS,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_fraction": overhead,
        "overhead_us_per_window": per_window_us,
        "max_overhead_fraction": MAX_ENABLED_OVERHEAD,
        "identical_output": True,
    }

    assert overhead <= MAX_ENABLED_OVERHEAD, (
        f"enabled telemetry costs {overhead * 100:.2f}% per window "
        f"(ceiling {MAX_ENABLED_OVERHEAD * 100:.0f}%)"
    )


def test_disabled_path_is_near_free():
    """The null path: one attribute check (guarded site) or one no-op
    method call (unguarded site) per would-be observation."""
    registry = NullRegistry()
    iterations = 200_000

    started = time.perf_counter()
    for _ in range(iterations):
        if registry.enabled:  # the hot-path guard pattern
            registry.counter("c", venue="mall").inc()
    guarded = (time.perf_counter() - started) / iterations

    counter = registry.counter("trips_live_windows_total")
    histogram = registry.histogram("trips_live_window_seconds")
    started = time.perf_counter()
    for _ in range(iterations):
        counter.inc()
        histogram.observe(0.5)
    unguarded = (time.perf_counter() - started) / (2 * iterations)

    started = time.perf_counter()
    for _ in range(iterations // 10):
        with registry.trace("live_window", venue="mall"):
            pass
    traced = (time.perf_counter() - started) / (iterations // 10)

    _SUMMARY["null_path"] = {
        "guarded_op_seconds": guarded,
        "null_instrument_op_seconds": unguarded,
        "null_trace_seconds": traced,
        "max_op_seconds": MAX_NULL_OP_SECONDS,
    }
    assert guarded < MAX_NULL_OP_SECONDS
    assert unguarded < MAX_NULL_OP_SECONDS
    assert traced < MAX_NULL_OP_SECONDS


def teardown_module(module) -> None:
    print_table(
        "Telemetry: enabled overhead per live window (min of "
        f"{ROUNDS} alternating rounds)",
        ["windows", "disabled", "enabled", "overhead", "delta"],
        _ROWS,
    )
    null = _SUMMARY.get("null_path")
    if null:
        print(
            f"null path: guarded {null['guarded_op_seconds'] * 1e9:.0f} ns"
            f", instrument {null['null_instrument_op_seconds'] * 1e9:.0f} ns"
            f", trace {null['null_trace_seconds'] * 1e9:.0f} ns per op"
        )
    if _SUMMARY:
        out = write_bench_json(
            "TRIPS_BENCH_TELEMETRY_JSON",
            "BENCH_telemetry.json",
            {"bench": "telemetry", **_SUMMARY},
        )
        print(f"wrote telemetry bench summary to {out}")
