#!/usr/bin/env python
"""The paper's Section 4 walkthrough: all five workflow steps in the mall.

(1) Data Selector: select sequences inside the mall's operating hours.
(2) Space Modeler: the 7-floor mall DSM, saved and reloaded as JSON.
(3) Event Editor: define patterns and designate training segments.
(4) Translator: submit the batch translation task.
(5) Viewer: trace a device (the paper uses 3a.*.14) on the map/timeline.

Run:  python examples/shopping_mall.py
"""

import tempfile
from pathlib import Path

from repro import EventEditor, MobilitySimulator, Translator, build_mall
from repro.buildings import MallConfig
from repro.core import EventIdentifier, score_semantics
from repro.dsm import load_dsm, save_dsm
from repro.positioning import (
    DailyHoursRule,
    DataSelector,
    DurationRule,
    MemorySource,
)
from repro.simulation import BROWSER, SHOPPER
from repro.timeutil import HOUR, TimeRange
from repro.viewer import DataSourceKind, ViewerSession


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="trips-mall-"))

    # ------------------------------------------------------------------
    # Step (2) first, as the simulator needs the space: Space Modeler.
    # ------------------------------------------------------------------
    mall = build_mall(MallConfig(floors=7))
    dsm_path = workdir / "mall-dsm.json"
    save_dsm(mall, dsm_path)
    mall = load_dsm(dsm_path)  # prove the JSON round-trip
    print(f"Step (2) Space Modeler: saved + reloaded {mall}")

    # Synthetic stand-in for the mall's Wi-Fi feed (2017-01-01 style day).
    simulator = MobilitySimulator(mall, seed=2017)
    devices = simulator.simulate_population(
        count=12,
        profiles=[SHOPPER, BROWSER],
        window=TimeRange(10 * HOUR, 20 * HOUR),
    )
    all_records = sorted(r for d in devices for r in d.raw)

    # ------------------------------------------------------------------
    # Step (1): Data Selector — operating hours 10:00 AM - 10:00 PM.
    # ------------------------------------------------------------------
    rule = DailyHoursRule(10 * HOUR, 22 * HOUR) & DurationRule(
        min_seconds=15 * 60
    )
    selector = DataSelector([MemorySource(all_records)], rule=rule)
    sequences = selector.select()
    print(
        f"Step (1) Data Selector: {len(all_records)} records -> "
        f"{len(sequences)} sequences in operating hours lasting >= 15 min"
    )

    # ------------------------------------------------------------------
    # Step (3): Event Editor — designate training data from browsing.
    # ------------------------------------------------------------------
    editor = EventEditor()
    browsed = editor.browse_sample(sequences, count=6, seed=1)
    for sequence in browsed:
        device = next(d for d in devices if d.device_id == sequence.device_id)
        annotations = [
            (s.event, s.time_range) for s in device.truth_semantics
        ]
        editor.designate_from_annotations(sequence, annotations)
    training = editor.training_set()
    print(
        f"Step (3) Event Editor: {len(training)} designated segments "
        f"({training.label_counts()})"
    )

    # ------------------------------------------------------------------
    # Step (4): Translator — batch translation with the learned model.
    # ------------------------------------------------------------------
    identifier = EventIdentifier("forest", seed=0).train(training)
    translator = Translator(mall, identifier)
    batch = translator.translate_batch(sequences)
    print(
        f"Step (4) Translator: {batch.total_records} records -> "
        f"{batch.total_semantics} semantics in {batch.elapsed_seconds:.2f}s "
        f"({batch.records_per_second:.0f} records/s)"
    )
    target = batch.results[0]
    export_path = workdir / f"{target.device_id}.json"
    target.export(export_path)
    print(f"  exported translation result file: {export_path.name}")
    print(target.semantics.format_table())

    # ------------------------------------------------------------------
    # Step (5): Viewer — trace the translated device.
    # ------------------------------------------------------------------
    truth = next(d for d in devices if d.device_id == target.device_id)
    session = ViewerSession(mall, target, ground_truth=truth.ground_truth)
    covered = session.select_semantic(0)
    print(
        f"Step (5) Viewer: clicking semantics entry 0 covers "
        + ", ".join(f"{k.value}:{len(v)}" for k, v in covered.items())
    )
    session.toggle_source(DataSourceKind.RAW)  # hide raw via the legend
    svg_path = workdir / "mall-floor.svg"
    session.render().save(svg_path)
    print(f"  map view rendered to {svg_path}")

    score = score_semantics(target.semantics, truth.truth_semantics)
    print(f"\nAssessment for {target.device_id}: {score}")


if __name__ == "__main__":
    main()
