#!/usr/bin/env python
"""Airport scenario: gap complementing under heavy signal dropout.

Airside Wi-Fi coverage is patchy; this example drops a multi-minute window
from every traveler's data and shows the complementing layer inferring the
missing visits from mobility knowledge — versus the distance-only baseline.

Run:  python examples/airport_transfer.py
"""

from repro import MobilitySimulator, Translator, build_airport
from repro.core import (
    DistanceOnlyGapFiller,
    score_gap_fill,
    score_semantics,
)
from repro.positioning import inject_dropout
from repro.simulation import TRAVELER
from repro.timeutil import HOUR, TimeRange


def main() -> None:
    airport = build_airport(gate_count=8)
    print(f"Indoor space: {airport}")

    simulator = MobilitySimulator(airport, seed=23)
    travelers = simulator.simulate_population(
        count=10, profiles=[TRAVELER], window=TimeRange(6 * HOUR, 8 * HOUR)
    )

    # Punch a 4-minute dropout window into every sequence.
    degraded = []
    for traveler in travelers:
        sequence, report = inject_dropout(
            traveler.raw, gap_seconds=240.0, gap_count=1, seed=17
        )
        degraded.append(sequence)
        if traveler is travelers[0]:
            print(
                f"\n{traveler.device_id}: dropped {report.count} records "
                f"({report.description})"
            )

    translator = Translator(airport)
    batch = translator.translate_batch(degraded)

    print("\nKnowledge-based complementing vs distance-only baseline:")
    filler = DistanceOnlyGapFiller(airport.topology)
    total_inferred = {"knowledge": 0, "distance": 0}
    total_correct = {"knowledge": 0, "distance": 0}
    for result, traveler in zip(batch.results, travelers):
        knowledge_fill = score_gap_fill(
            result.semantics, traveler.truth_semantics
        )
        baseline = filler.complement(result.original_semantics)
        distance_fill = score_gap_fill(baseline, traveler.truth_semantics)
        total_inferred["knowledge"] += knowledge_fill.inferred_count
        total_correct["knowledge"] += knowledge_fill.correct_region_count
        total_inferred["distance"] += distance_fill.inferred_count
        total_correct["distance"] += distance_fill.correct_region_count
    for arm in ("knowledge", "distance"):
        inferred = total_inferred[arm]
        correct = total_correct[arm]
        precision = correct / inferred if inferred else 0.0
        print(
            f"  {arm:>9}: {inferred} inferred triplets, "
            f"{correct} correct regions (precision {precision:.2f})"
        )

    result = batch.results[0]
    print(f"\n{result.device_id} complemented semantics "
          f"({result.semantics.inferred_count} inferred marked *):")
    for semantic in result.semantics:
        marker = "*" if semantic.inferred else " "
        print(f" {marker} {semantic.format()}")
    score = score_semantics(result.semantics, travelers[0].truth_semantics)
    print(f"\nAssessment: {score}")


if __name__ == "__main__":
    main()
