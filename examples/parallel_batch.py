#!/usr/bin/env python
"""Parallel batch translation with the engine.

Simulates a mall crowd, then translates it three ways — the serial
Translator, the engine's thread pool, and the engine's process pool —
verifying that every path produces identical mobility semantics and
printing each run's per-phase profile.  Then compares the two knowledge
build strategies (sharded shard-merge vs serial rebuild at the barrier),
runs the streaming path — the same records replayed through a
RecordStream and translated without ever materializing the full batch —
and finishes by folding a late window's PartialKnowledge into the
existing knowledge incrementally.

Run:  python examples/parallel_batch.py
"""

from repro import (
    Engine,
    EngineConfig,
    MobilitySimulator,
    PartialKnowledge,
    Translator,
    build_mall,
)
from repro.buildings import MallConfig
from repro.positioning import RecordStream, sequence_stream
from repro.simulation import BROWSER, SHOPPER
from repro.timeutil import HOUR, TimeRange


def main() -> None:
    mall = build_mall(MallConfig(floors=3))
    simulator = MobilitySimulator(mall, seed=11)
    devices = simulator.simulate_population(
        count=16,
        profiles=[SHOPPER, BROWSER],
        window=TimeRange(10 * HOUR, 20 * HOUR),
        seed=11,
    )
    sequences = [device.raw for device in devices]
    total = sum(len(s) for s in sequences)
    print(f"{mall}: {len(sequences)} devices, {total} raw records")

    translator = Translator(mall)

    # Reference: the serial two-phase batch translation.
    serial = translator.translate_batch(sequences)
    print("\n[serial translator]")
    print(serial.stats.format_table())

    # The engine fans phase one/two out across a worker pool and merges
    # results in input order — identical output, bounded by the hardware.
    for backend in ("threads", "processes"):
        engine = Engine(
            translator, EngineConfig(backend=backend, chunk_size=4)
        )
        batch = engine.translate_batch(sequences)
        identical = batch.results == serial.results
        print(f"\n[engine backend={backend}] identical to serial: {identical}")
        print(batch.stats.format_table())
        print(f"  throughput: {batch.records_per_second:,.0f} records/s")

    # Knowledge build strategies (CLI: trips translate --backend ...
    # --knowledge-build sharded): "sharded" (the default) has each
    # phase-one worker emit its chunk's PartialKnowledge, so the barrier
    # only merges shard counts; "rebuild" re-observes every annotated
    # sequence on the caller.  Both produce byte-identical knowledge.
    print("\n[knowledge build strategies]")
    for strategy in ("rebuild", "sharded"):
        engine = Engine(
            translator,
            EngineConfig(
                backend="processes", chunk_size=4, knowledge_build=strategy
            ),
        )
        batch = engine.translate_batch(sequences)
        barrier = batch.stats.phase("knowledge").seconds
        print(
            f"  {strategy:<8} barrier {barrier * 1e3:7.2f} ms  "
            f"identical to serial: {batch.knowledge == serial.knowledge}"
        )

    # Streaming ingestion: replay the records as a live feed and translate
    # it chunk by chunk, without materializing the batch up front.
    records = sorted(
        (record for sequence in sequences for record in sequence.records),
        key=lambda record: record.timestamp,
    )
    stream = RecordStream(iter(records))
    engine = Engine(translator, EngineConfig(backend="threads", chunk_size=4))
    streamed = engine.translate_stream(
        sequence_stream(stream, window_seconds=2 * HOUR)
    )
    print(
        f"\n[streaming] {stream.consumed} records consumed -> "
        f"{len(streamed)} windowed sequences, "
        f"{streamed.total_semantics} semantics triplets"
    )

    # Incremental updates: a long-running engine can fold a new window's
    # PartialKnowledge into existing knowledge instead of rebuilding.
    knowledge = streamed.knowledge
    late = simulator.simulate_population(count=4, seed=99)
    late_annotated = [
        translator.clean_and_annotate(device.raw)[1].sequence
        for device in late
    ]
    window_shard = PartialKnowledge.from_sequences(
        late_annotated, [r.region_id for r in mall.regions()]
    )
    before = knowledge.sequences_seen
    knowledge.fold(window_shard)
    print(
        f"[incremental] folded a {window_shard.sequences_seen}-sequence "
        f"window into existing knowledge "
        f"({before} -> {knowledge.sequences_seen} sequences seen)"
    )


if __name__ == "__main__":
    main()
