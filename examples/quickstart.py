#!/usr/bin/env python
"""Quickstart: raw indoor positioning data -> mobility semantics.

The minimal TRIPS loop: build an indoor space, simulate one device's noisy
Wi-Fi positioning data, translate it through the three-layer framework, and
print the Table 1-style result side by side with the raw records.

Run:  python examples/quickstart.py
"""

from repro import MobilitySimulator, Translator, build_mall
from repro.buildings import MallConfig
from repro.core import score_semantics
from repro.simulation import SHOPPER


def main() -> None:
    # A 3-floor slice of the 7-floor demo mall keeps this example quick.
    mall = build_mall(MallConfig(floors=3))
    print(f"Indoor space: {mall}")

    # Simulate one shopper (ground truth + raw Wi-Fi records).
    simulator = MobilitySimulator(mall, seed=7)
    device = simulator.simulate_device("3a.0001.14", SHOPPER, seed=42)
    print(
        f"\nDevice {device.device_id}: {len(device.raw)} raw records over "
        f"{device.raw.duration / 60:.0f} minutes, "
        f"floors {device.raw.floors_visited}"
    )

    # The paper's Table 1, left column: a few raw positioning records.
    print("\nRaw positioning records (first 3):")
    for record in device.raw.records[:3]:
        print(f"  {record}")

    # Translate: cleaning -> annotation -> complementing.
    translator = Translator(mall)
    result = translator.translate(device.raw)
    print(f"\nCleaning: {result.cleaning.report}")

    # The paper's Table 1, right column: mobility semantics.
    print("\nMobility semantics:")
    print(result.semantics.format_table())

    ratio = result.semantics.conciseness_ratio(len(device.raw))
    print(f"\nConciseness: {ratio:.1f} raw records per semantics triplet")

    # The simulator knows the truth, so we can assess the translation.
    score = score_semantics(result.semantics, device.truth_semantics)
    print(f"Assessment vs ground truth: {score}")


if __name__ == "__main__":
    main()
