#!/usr/bin/env python
"""Office scenario: ASCII floorplan import + user-defined event patterns.

Demonstrates the Space Modeler's semi-automatic import path (the office is
parsed from character-grid floorplans), an analyst-defined event pattern
beyond stay/pass-by, and the mobility-knowledge the complementing layer
builds from a population of workers.

Run:  python examples/office_building.py
"""

from repro import EventEditor, MobilitySimulator, Translator, build_office
from repro.core import EventIdentifier, score_semantics
from repro.simulation import WORKER, WifiErrorModel
from repro.timeutil import HOUR, TimeRange
from repro.viewer import render_ascii


def main() -> None:
    office = build_office()
    print(f"Imported from ASCII floorplans: {office}")
    print("\nGround floor as the Viewer's ASCII map:")
    print(render_ascii(office, 1, cell_size=2.0))

    # Office Wi-Fi is usually denser than mall Wi-Fi: lower noise.
    channel = WifiErrorModel(sigma=0.9, floor_error_rate=0.02,
                             dropout_rate=0.04, interval_mean=4.0)
    simulator = MobilitySimulator(office, error_model=channel, seed=11)
    workers = simulator.simulate_population(
        count=8, profiles=[WORKER], window=TimeRange(8 * HOUR, 10 * HOUR)
    )
    print(f"\nSimulated {len(workers)} workers")

    # The analyst defines a custom pattern on top of the built-ins and
    # designates meeting-room dwells as 'meeting'.
    editor = EventEditor()
    editor.define_pattern("meeting", "attends a scheduled meeting")
    meeting_regions = {
        r.region_id for r in office.regions(category="office")
        if "Meeting" in r.name or "Board" in r.name
    }
    for worker in workers[:5]:
        annotations = []
        for semantic in worker.truth_semantics:
            label = semantic.event
            if label == "stay" and semantic.region_id in meeting_regions:
                label = "meeting"
            annotations.append((label, semantic.time_range))
        editor.designate_from_annotations(worker.raw, annotations)
    training = editor.training_set()
    print(f"Event Editor: {len(training)} segments, labels {training.label_counts()}")

    identifier = EventIdentifier("forest", seed=3).train(training)
    translator = Translator(office, identifier)
    batch = translator.translate_batch([w.raw for w in workers])

    print(
        f"\nBatch: {batch.total_records} records -> {batch.total_semantics} "
        f"semantics; knowledge = {batch.knowledge}"
    )
    # What the mobility knowledge learned about the space.
    kitchen = next(r for r in office.regions() if r.name == "Cafeteria")
    likely = batch.knowledge.most_likely_next(kitchen.region_id, top_k=3)
    print(f"Most likely after {kitchen.name}:")
    for region_id, probability in likely:
        print(f"  {office.region(region_id).name}: {probability:.3f}")

    result = batch.results[0]
    truth = workers[0]
    print(f"\n{result.device_id} translated semantics:")
    print(result.semantics.format_table())

    # 'meeting' is movement-identical to 'stay'; the fair truth applies the
    # same region-based relabeling the designations used.
    from dataclasses import replace

    from repro import MobilitySemanticsSequence

    relabeled_truth = MobilitySemanticsSequence(
        truth.device_id,
        [
            replace(s, event="meeting")
            if s.event == "stay" and s.region_id in meeting_regions
            else s
            for s in truth.truth_semantics
        ],
    )
    print(f"\nAssessment: {score_semantics(result.semantics, relabeled_truth)}")
    print(
        "note: 'meeting' and 'stay' are movement-identical patterns, so the\n"
        "feature-based identifier cannot fully separate them — event accuracy\n"
        "reflects that; region and triplet scores are unaffected."
    )


if __name__ == "__main__":
    main()
