#!/usr/bin/env python
"""Live streaming translation: windowed ingestion + multi-building dispatch.

Simulates a day of traffic at two buildings — a mall crowd and an office
workforce — replays both as timestamp-ordered positioning feeds, and
serves them through one LiveTranslationService instance: the asyncio
front-end cuts each feed into 30-minute windows (bounded queue, so a slow
translator backpressures the feeds), a shared worker pool translates each
window, and every window's PartialKnowledge shard folds into that venue's
long-running knowledge — no rebuilds.

After the feeds drain, finalize() re-complements every retained window
against the final knowledge and the script verifies the headline
invariant: the finalized live output is *identical* — result for result,
knowledge bit for bit — to a one-shot Engine.translate_batch over the
same windowed sequences.  Finally a ViewerSession is built straight from
the accumulated live results of one device.

The last section demonstrates the knowledge lifecycle (repro.knowledge):
the same mall feed replayed under each retention spec named on the
command line — every ingestion window is one epoch; sliding-window specs
*subtract* expired epochs out of the prior by the shard algebra's exact
inverse, decay specs fade old evidence instead.  Each spec is parsed and
echoed back as its policy object, so the run doubles as documentation of
the spec grammar; any count-bounded window prior is verified bit-for-bit
equal to a fresh fold over only the retained windows: retiring an epoch
is exactly never having folded it.

Run:  python examples/live_stream.py [RETENTION ...]

where each RETENTION is a spec from the grammar understood by
repro.knowledge.parse_retention:

    unbounded          fold forever (default)
    window:N           keep the newest N epochs
    window:Ns          keep epochs newer than N seconds of data time
    decay:H            halve old evidence every H epoch rolls

Defaults to "unbounded window:4 decay:4" when none are given.

With --state-dir PATH the service journals durable state (snapshot +
write-ahead log) under PATH, and a rerun over the same directory
*resumes*: it replays the journal, skips the records already absorbed,
and finishes the feeds — the finalized output still matches the
one-shot batch bit for bit.  --crash-after-windows N SIGKILLs the
process after N windows (no cleanup, no atexit) to demonstrate exactly
that: crash mid-feed, rerun, same answer.
"""

import argparse
import os
import signal
import sys

from repro import (
    Engine,
    EngineConfig,
    LiveConfig,
    LiveTranslationService,
    MobilitySimulator,
    Translator,
    build_mall,
    build_office,
)
from repro.buildings import MallConfig
from repro.positioning import RecordStream, sequence_stream
from repro.simulation import BROWSER, SHOPPER, WORKER
from repro.timeutil import HOUR, TimeRange

WINDOW_SECONDS = 30 * 60.0


def simulate_feed(model, profiles, count, seed):
    """A day of one building's traffic as a time-sorted record feed."""
    simulator = MobilitySimulator(model, seed=seed)
    devices = simulator.simulate_population(
        count=count,
        profiles=profiles,
        window=TimeRange(9 * HOUR, 19 * HOUR),
        seed=seed,
    )
    records = sorted(
        (record for device in devices for record in device.raw),
        key=lambda record: (record.timestamp, record.device_id),
    )
    return records


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="live streaming translation demo",
    )
    parser.add_argument(
        "retention",
        nargs="*",
        default=["unbounded", "window:4", "decay:4"],
        help="retention specs for the lifecycle comparison "
        "(default: unbounded window:4 decay:4)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        help="journal durable state under this directory; a rerun over "
        "the same directory resumes where the last run stopped",
    )
    parser.add_argument(
        "--crash-after-windows",
        type=int,
        default=None,
        metavar="N",
        help="SIGKILL this process after N windows (requires "
        "--state-dir; rerun to resume from the journal)",
    )
    parser.add_argument(
        "--snapshot-interval",
        type=int,
        default=4,
        metavar="WINDOWS",
        help="checkpoint cadence when journaling (default: 4)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="N",
        help="enable telemetry and serve Prometheus text at /metrics "
        "(JSON at /metrics.json) on this port while the feeds run "
        "(0 picks a free port)",
    )
    parser.add_argument(
        "--telemetry-dump",
        default=None,
        metavar="PATH",
        help="enable telemetry and write the end-of-run metrics "
        "snapshot to this JSON file",
    )
    args = parser.parse_args(argv)
    if args.crash_after_windows is not None and args.state_dir is None:
        parser.error("--crash-after-windows requires --state-dir")
    return args


def main() -> None:
    args = parse_args()

    # Telemetry is opt-in: without either flag the process keeps the
    # near-free NullRegistry.  The SIGKILL crash path never reaches the
    # dump below — by design; the metrics endpoint is how a monitored
    # run is observed up to the instant it dies.
    metrics_server = None
    if args.metrics_port is not None or args.telemetry_dump is not None:
        from repro.telemetry import MetricsRegistry, MetricsServer, set_registry

        registry = MetricsRegistry()
        set_registry(registry)
        if args.metrics_port is not None:
            metrics_server = MetricsServer(
                registry, port=args.metrics_port
            ).start()
            print(
                f"[metrics] http://127.0.0.1:{metrics_server.port}/metrics"
            )
            sys.stdout.flush()

    mall = build_mall(MallConfig(floors=3))
    office = build_office(floors=2)
    feeds = {
        "mall": simulate_feed(mall, [SHOPPER, BROWSER], 10, 21),
        "office": simulate_feed(office, [WORKER], 8, 22),
    }
    translators = {"mall": Translator(mall), "office": Translator(office)}
    for venue, records in feeds.items():
        print(f"{venue}: {len(records)} records")

    # One service, one warm worker pool, two buildings.  Tagged feeds
    # skip per-record routing; a mixed feed would route by the
    # "<venue>:<device>" id prefix (see repro.live.dispatch).
    service = LiveTranslationService(
        translators,
        EngineConfig(backend="threads", chunk_size=4),
        LiveConfig(
            window_seconds=WINDOW_SECONDS,
            max_pending_windows=4,
            snapshot_interval=args.snapshot_interval,
        ),
        state_dir=args.state_dir,
    )

    def narrate(window) -> None:
        venues = ", ".join(
            f"{vid}: {len(batch)} seq" for vid, batch in sorted(window.venues.items())
        )
        print(
            f"  window {window.index:3d}  {window.records:5d} records  "
            f"[{venues}]"
        )
        # The journal entry for this window is already flushed when the
        # callback fires, so a SIGKILL here models the harshest crash a
        # resume must survive: no close(), no atexit, mid-feed.
        if (
            args.crash_after_windows is not None
            and window.index + 1 >= args.crash_after_windows
        ):
            print(f"  [crashing after window {window.index} via SIGKILL]")
            sys.stdout.flush()
            os.kill(os.getpid(), signal.SIGKILL)

    with service:
        # A recovered service already absorbed a prefix of each feed;
        # the feeds are deterministic, so skipping exactly the journaled
        # record counts resumes at the crashed run's window boundary.
        recovered = service.stats
        if recovered.windows:
            print(
                f"\n[resumed from {args.state_dir}: "
                f"{recovered.windows} windows, "
                f"{recovered.records} records already journaled]"
            )
        skip = {
            vid: state.records
            for vid, state in recovered.venues.items()
        }
        print("\n[serving both feeds through the asyncio front-end]")
        stats = service.serve(
            {
                vid: RecordStream(iter(records[skip.get(vid, 0):]))
                for vid, records in feeds.items()
            },
            on_window=narrate,
        )
        print("\n[cumulative live stats]")
        print(stats.format_table())

        # Per-window emissions complemented against knowledge-as-of-window
        # are the live view; finalize() consolidates against the *final*
        # folded knowledge.
        finalized = service.finalize()

        # The headline invariant: replaying the finite stream reproduced
        # the one-shot batch exactly.
        print("\n[live vs one-shot batch]")
        for venue, batch in sorted(finalized.items()):
            sequences = list(
                sequence_stream(
                    RecordStream(iter(feeds[venue])), WINDOW_SECONDS
                )
            )
            reference = Engine(
                translators[venue], EngineConfig(chunk_size=4)
            ).translate_batch(sequences)
            identical = (
                batch.results == reference.results
                and batch.knowledge == reference.knowledge
            )
            print(
                f"  {venue:<8} {len(batch)} sequences, "
                f"{batch.total_semantics} semantics, knowledge over "
                f"{batch.knowledge.sequences_seen} sequences — "
                f"identical to batch: {identical}"
            )

        # The Viewer browses a device's full history straight from the
        # accumulating live results (windows stitched back together).
        device_id = finalized["mall"].results[0].device_id
        session = service.viewer_session("mall", device_id)
        frames = session.animate(step_seconds=15 * 60.0)
        print(
            f"\n[viewer] {device_id}: merged "
            f"{sum(1 for r in service.results('mall') if r.device_id == device_id)}"
            f" windows -> {len(session.result.semantics)} semantics, "
            f"{len(frames)} animation frames"
        )

    # ------------------------------------------------------------------
    # Knowledge retention: the prior tracks *recent* mobility
    # ------------------------------------------------------------------
    # An unbounded prior folds forever — fine for a finite replay, but a
    # venue that runs for months drifts away from current behaviour.
    # Retention policies bound what the prior remembers; each ingestion
    # window is one epoch.  The specs come from the command line (see
    # the module docstring for the grammar) and are echoed back parsed,
    # so the output documents what each spec means.
    from repro.knowledge import SlidingWindow, parse_retention

    specs = args.retention
    policies = {spec: parse_retention(spec) for spec in specs}
    print(f"\n[knowledge retention: {' vs '.join(specs)}]")
    for spec, policy in policies.items():
        print(f"  spec {spec!r} parses to {policy!r}")
    runs = {}
    for retention in specs:
        aged = LiveTranslationService(
            {"mall": Translator(mall)},
            EngineConfig(backend="threads", chunk_size=4),
            LiveConfig(window_seconds=WINDOW_SECONDS),
            retention=retention,
        )
        with aged:
            aged.run_stream(
                RecordStream(iter(feeds["mall"])), venue_id="mall"
            )
            store = aged.store("mall")
            runs[retention] = store
            print(
                f"  {retention:<10} knowledge over "
                f"{store.knowledge.sequences_seen:g} sequences, "
                f"{store.retained_epochs} retained epochs "
                f"({store.epochs_retired} retired)"
            )

    # Retiring an epoch is *exact*: a count-bounded window:N prior
    # equals a fresh unbounded fold over only the last N windows'
    # sequences.  Verified for the first such spec given.
    bounded = next(
        (
            (spec, policy.max_epochs)
            for spec, policy in policies.items()
            if isinstance(policy, SlidingWindow)
            and policy.max_epochs is not None
        ),
        None,
    )
    if bounded is not None:
        spec, max_epochs = bounded
        from repro.positioning import PositioningSequence, windowed_records

        windows = [
            PositioningSequence.group_records(window)
            for window in windowed_records(
                RecordStream(iter(feeds["mall"])), WINDOW_SECONDS
            )
        ]
        engine = Engine(Translator(mall), EngineConfig(chunk_size=4))
        recent = None
        for window in windows[-max_epochs:]:
            _, recent = engine.translate_increment(window, recent)
        identical = runs[spec].knowledge == recent
        print(
            f"  {spec} prior == fold of last {max_epochs} windows only: "
            f"{identical}"
        )

    if args.telemetry_dump is not None:
        from pathlib import Path

        from repro.telemetry import get_registry, render_json

        dump = Path(args.telemetry_dump)
        dump.parent.mkdir(parents=True, exist_ok=True)
        dump.write_text(
            render_json(get_registry().snapshot()), encoding="utf-8"
        )
        print(f"\n[telemetry] wrote snapshot to {dump}")
    if metrics_server is not None:
        metrics_server.stop()


if __name__ == "__main__":
    main()
