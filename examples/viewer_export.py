#!/usr/bin/env python
"""Viewer export: regenerate the Figure 4 visualization as SVG files.

Renders one translated device with all four data sources overlaid (raw,
cleaned, ground truth, semantics), demonstrates the legend's visibility
toggles and both display-point policies, and exports an animation as a
frame-per-file sequence.

Run:  python examples/viewer_export.py [output-dir]
"""

import sys
from pathlib import Path

from repro import MobilitySimulator, Translator, build_mall
from repro.buildings import MallConfig
from repro.simulation import SHOPPER
from repro.viewer import (
    DataSourceKind,
    DisplayPointPolicy,
    ViewerSession,
)


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("viewer-out")
    out_dir.mkdir(parents=True, exist_ok=True)

    mall = build_mall(MallConfig(floors=3))
    simulator = MobilitySimulator(mall, seed=4)
    device = simulator.simulate_device("3a.0042.14", SHOPPER, seed=99)
    result = Translator(mall).translate(device.raw)

    for policy in DisplayPointPolicy:
        session = ViewerSession(
            mall, result, ground_truth=device.ground_truth, policy=policy
        )
        path = out_dir / f"figure4-{policy.value}.svg"
        session.render().save(path)
        print(f"wrote {path}")

    # Visibility control: semantics + cleaned only (assessment view).
    session = ViewerSession(mall, result, ground_truth=device.ground_truth)
    session.toggle_source(DataSourceKind.RAW)
    session.toggle_source(DataSourceKind.GROUND_TRUTH)
    session.select_semantic(0)
    path = out_dir / "figure4-assessment-view.svg"
    session.render().save(path)
    print(f"wrote {path} (raw + truth hidden, entry 0 selected)")

    # Floor switching: one file per floor the device visited.
    for floor in device.raw.floors_visited:
        session.switch_floor(floor)
        path = out_dir / f"figure4-floor{floor}.svg"
        session.render(show_labels=False).save(path)
        print(f"wrote {path}")

    # Animated, semantics-enriched movement: a frame every 30 seconds.
    frames = session.animate(step_seconds=30.0)
    labelled = sum(1 for f in frames if f.current_semantic_label)
    print(
        f"animation: {len(frames)} frames, {labelled} with an active "
        f"semantics label"
    )
    for index, frame in enumerate(frames[:5]):
        print(f"  frame {index}: t={frame.moment:.0f}s "
              f"{frame.current_semantic_label or '(in transit)'}")


if __name__ == "__main__":
    main()
