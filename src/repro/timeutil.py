"""Time handling shared across the library.

Internally every timestamp is a ``float`` of seconds since the Unix epoch
(UTC) and every time span is a closed interval ``[start, end]``.  This module
provides parsing/formatting helpers for the human-facing notations used in
the TRIPS paper (``1:02:05pm``-style clock strings and ISO-8601), plus a
small :class:`TimeRange` value type used by the viewer's timeline and by the
temporal annotations of mobility semantics.
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass

from .errors import TripsError

#: Seconds in common units, for readable parameter defaults.
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0

_CLOCK_RE = re.compile(
    r"^\s*(\d{1,2}):(\d{2})(?::(\d{2}))?\s*(am|pm|AM|PM)?\s*$"
)


def parse_clock(text: str, base_day: float = 0.0) -> float:
    """Parse a clock string like ``"1:02:05pm"`` or ``"13:02:05"``.

    ``base_day`` is the epoch timestamp of the midnight the clock time is
    relative to; the default of ``0.0`` yields seconds-into-day values,
    which is what the examples and benchmarks use.
    """
    match = _CLOCK_RE.match(text)
    if match is None:
        raise TripsError(f"unparseable clock string: {text!r}")
    hour = int(match.group(1))
    minute = int(match.group(2))
    second = int(match.group(3) or 0)
    meridiem = match.group(4)
    if meridiem is not None:
        meridiem = meridiem.lower()
        if not 1 <= hour <= 12:
            raise TripsError(f"hour out of range for 12h clock: {text!r}")
        if meridiem == "pm" and hour != 12:
            hour += 12
        elif meridiem == "am" and hour == 12:
            hour = 0
    if not (0 <= hour <= 23 and 0 <= minute <= 59 and 0 <= second <= 59):
        raise TripsError(f"clock fields out of range: {text!r}")
    return base_day + hour * HOUR + minute * MINUTE + second


def format_clock(timestamp: float, twelve_hour: bool = True) -> str:
    """Format seconds-into-day as a paper-style clock string.

    >>> format_clock(parse_clock("1:02:05pm"))
    '1:02:05pm'
    """
    day_seconds = timestamp % DAY
    hour = int(day_seconds // HOUR)
    minute = int(day_seconds % HOUR // MINUTE)
    second = int(day_seconds % MINUTE)
    if not twelve_hour:
        return f"{hour:02d}:{minute:02d}:{second:02d}"
    meridiem = "am" if hour < 12 else "pm"
    display_hour = hour % 12
    if display_hour == 0:
        display_hour = 12
    return f"{display_hour}:{minute:02d}:{second:02d}{meridiem}"


def parse_iso(text: str) -> float:
    """Parse an ISO-8601 datetime (naive values are taken as UTC)."""
    try:
        parsed = _dt.datetime.fromisoformat(text)
    except ValueError as exc:
        raise TripsError(f"unparseable ISO datetime: {text!r}") from exc
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=_dt.timezone.utc)
    return parsed.timestamp()


def format_iso(timestamp: float) -> str:
    """Format an epoch timestamp as an ISO-8601 UTC string."""
    moment = _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc)
    return moment.isoformat().replace("+00:00", "Z")


@dataclass(frozen=True, order=True)
class TimeRange:
    """A closed time interval ``[start, end]`` in epoch seconds.

    Ordered by ``(start, end)`` so sorting a list of ranges yields timeline
    order.  Used both for temporal annotations of mobility semantics and for
    viewer timeline entries.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise TripsError(
                f"TimeRange end ({self.end}) precedes start ({self.start})"
            )

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start

    @property
    def middle(self) -> float:
        """Temporal midpoint, used by the temporally-middle display policy."""
        return (self.start + self.end) / 2.0

    def contains(self, timestamp: float) -> bool:
        """True if ``timestamp`` falls inside the closed interval."""
        return self.start <= timestamp <= self.end

    def overlaps(self, other: "TimeRange") -> bool:
        """True if the two closed intervals share at least one instant."""
        return self.start <= other.end and other.start <= self.end

    def intersection(self, other: "TimeRange") -> "TimeRange | None":
        """The overlapping sub-interval, or None when disjoint."""
        if not self.overlaps(other):
            return None
        return TimeRange(max(self.start, other.start), min(self.end, other.end))

    def union_span(self, other: "TimeRange") -> "TimeRange":
        """The smallest interval covering both (ignores any gap between)."""
        return TimeRange(min(self.start, other.start), max(self.end, other.end))

    def iou(self, other: "TimeRange") -> float:
        """Interval intersection-over-union, used by assessment metrics."""
        inter = self.intersection(other)
        if inter is None:
            return 0.0
        union = self.union_span(other).duration
        if union == 0.0:
            # Two identical zero-length instants overlap perfectly.
            return 1.0
        return inter.duration / union

    def shift(self, offset: float) -> "TimeRange":
        """A copy translated by ``offset`` seconds."""
        return TimeRange(self.start + offset, self.end + offset)

    def clip(self, bounds: "TimeRange") -> "TimeRange | None":
        """This range clipped to ``bounds``, or None if fully outside."""
        return self.intersection(bounds)

    def format(self, twelve_hour: bool = True) -> str:
        """Paper-style rendering, e.g. ``1:02:05-1:18:15pm``."""
        start_text = format_clock(self.start, twelve_hour)
        end_text = format_clock(self.end, twelve_hour)
        if twelve_hour and start_text[-2:] == end_text[-2:]:
            return f"{start_text[:-2]}-{end_text}"
        return f"{start_text}-{end_text}"


def ranges_cover(ranges: list[TimeRange]) -> float:
    """Total covered duration of possibly-overlapping ranges (merged)."""
    if not ranges:
        return 0.0
    ordered = sorted(ranges)
    total = 0.0
    current_start, current_end = ordered[0].start, ordered[0].end
    for rng in ordered[1:]:
        if rng.start <= current_end:
            current_end = max(current_end, rng.end)
        else:
            total += current_end - current_start
            current_start, current_end = rng.start, rng.end
    total += current_end - current_start
    return total
