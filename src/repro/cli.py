"""Command-line interface: ``trips <command>``.

Covers the headless slice of the demo workflow: generate a synthetic
dataset, validate a DSM file, run a translation task from a config, and
render a floor to SVG.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .errors import TripsError


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "handler"):
        parser.print_help()
        return 2
    try:
        args.handler(args)
    except TripsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="trips",
        description="TRIPS reproduction: indoor positioning -> mobility semantics",
    )
    commands = parser.add_subparsers(title="commands")

    simulate = commands.add_parser(
        "simulate", help="generate a synthetic mall dataset (CSV + DSM)"
    )
    simulate.add_argument("--devices", type=int, default=20)
    simulate.add_argument("--floors", type=int, default=7)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--out", type=Path, default=Path("trips-data"))
    simulate.set_defaults(handler=_cmd_simulate)

    validate = commands.add_parser("validate-dsm", help="validate a DSM JSON file")
    validate.add_argument("dsm", type=Path)
    validate.set_defaults(handler=_cmd_validate)

    translate = commands.add_parser(
        "translate", help="run a translation task from a config JSON"
    )
    translate.add_argument("config", type=Path)
    translate.add_argument("--out", type=Path, default=Path("trips-results"))
    translate.add_argument(
        "--backend",
        choices=("serial", "threads", "processes"),
        default=None,
        help="run the batch through the parallel engine with this "
        "execution backend (default: serial translator)",
    )
    translate.add_argument(
        "--workers",
        type=int,
        default=None,
        help="engine worker pool size; requires --backend "
        "(default: one per CPU)",
    )
    translate.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="sequences per engine work chunk; requires --backend",
    )
    translate.add_argument(
        "--knowledge-build",
        choices=("rebuild", "sharded"),
        default=None,
        help="engine barrier strategy: 'sharded' (default) merges per-chunk "
        "knowledge shards built on the workers, 'rebuild' re-observes every "
        "annotated sequence on the caller; requires --backend",
    )
    translate.add_argument(
        "--record-layout",
        choices=("objects", "columnar"),
        default=None,
        help="phase-one record layout: 'objects' walks per-record objects "
        "(default), 'columnar' runs the bit-for-bit-equivalent flat-array "
        "fast path; requires --backend",
    )
    translate.add_argument(
        "--telemetry-dump",
        type=Path,
        default=None,
        metavar="PATH",
        help="enable telemetry for the run and write the end-of-run "
        "metrics snapshot (counters, gauges, histograms, recent spans) "
        "to this JSON file",
    )
    translate.set_defaults(handler=_cmd_translate)

    serve = commands.add_parser(
        "serve",
        help="replay task configs as live feeds through the streaming "
        "translation service (one venue per config)",
    )
    serve.add_argument(
        "venues",
        nargs="+",
        metavar="[VENUE=]CONFIG",
        help="translation-task config JSON per venue; the venue id "
        "defaults to the config file's stem",
    )
    serve.add_argument(
        "--window-seconds",
        type=float,
        default=300.0,
        help="time span of one ingestion window (default: 300)",
    )
    serve.add_argument(
        "--max-window-records",
        type=int,
        default=None,
        help="optional record-count bound per window",
    )
    serve.add_argument(
        "--backend",
        choices=("serial", "threads", "processes"),
        default="threads",
        help="shared worker pool backend (default: threads)",
    )
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument("--chunk-size", type=int, default=None)
    serve.add_argument(
        "--record-layout",
        choices=("objects", "columnar"),
        default=None,
        help="phase-one record layout for every venue's windows (default: "
        "objects; 'columnar' is bit-for-bit equivalent and faster)",
    )
    serve.add_argument(
        "--retention",
        default=None,
        metavar="{unbounded,window:N,window:Ns,decay:H}",
        help="knowledge-lifecycle retention for every venue: 'unbounded' "
        "folds forever (default), 'window:N' keeps the newest N epochs "
        "(one epoch per ingestion window; expired epochs are subtracted "
        "exactly), 'window:Ns' keeps epochs newer than N seconds of data "
        "time, 'decay:H' halves old evidence every H epochs; overrides "
        "each task config's knowledge_retention",
    )
    serve.add_argument(
        "--adaptive-windowing",
        action="store_true",
        help="derive a per-venue max-window-records target from an EWMA "
        "of each venue's observed feed rate (records/sec)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard ingestion across this many service instances (each "
        "with its own worker pool); per-venue knowledge is merged "
        "exactly through the knowledge exchange (default: 1, the "
        "single-instance live service)",
    )
    serve.add_argument(
        "--exchange-interval",
        type=int,
        default=1,
        metavar="WINDOWS",
        help="run a knowledge exchange round every this many cluster "
        "windows; after each round every shard's knowledge equals the "
        "merged cluster knowledge bit for bit (default: 1; requires "
        "--shards > 1)",
    )
    serve.add_argument(
        "--shard-router",
        choices=("device", "venue"),
        default="device",
        help="how records partition across shards: 'device' (stable "
        "device-id hash, the default) or 'venue' (a venue's devices all "
        "pin to one shard); requires --shards > 1",
    )
    serve.add_argument(
        "--state-dir",
        type=Path,
        default=None,
        metavar="PATH",
        help="journal durable state (snapshot + write-ahead log) under "
        "this directory; a restarted serve over the same directory "
        "replays it and resumes exactly where the previous run stopped "
        "(with --shards > 1 each shard journals into its own "
        "subdirectory)",
    )
    serve.add_argument(
        "--snapshot-interval",
        type=int,
        default=None,
        metavar="WINDOWS",
        help="checkpoint the full state and truncate the write-ahead "
        "log every this many windows (default: 16; requires "
        "--state-dir)",
    )
    serve.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for finalized per-device result JSONs "
        "(one subdirectory per venue)",
    )
    serve.add_argument(
        "--no-finalize",
        action="store_true",
        help="skip the end-of-stream re-complement against the final "
        "knowledge (per-window live output only)",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="N",
        help="enable telemetry and serve it over HTTP on this port while "
        "the feeds run: Prometheus text exposition at /metrics, the full "
        "JSON snapshot at /metrics.json (0 picks a free port)",
    )
    serve.add_argument(
        "--telemetry-dump",
        type=Path,
        default=None,
        metavar="PATH",
        help="enable telemetry for the run and write the end-of-run "
        "metrics snapshot to this JSON file",
    )
    serve.set_defaults(handler=_cmd_serve)

    render = commands.add_parser("render", help="render a DSM floor to SVG")
    render.add_argument("dsm", type=Path)
    render.add_argument("--floor", type=int, default=1)
    render.add_argument("--out", type=Path, default=Path("floor.svg"))
    render.set_defaults(handler=_cmd_render)
    return parser


import contextlib


@contextlib.contextmanager
def _telemetry_session(metrics_port=None, dump_path=None):
    """Install a live registry for one CLI run, if telemetry was asked for.

    With neither flag the process-wide registry stays the no-op default.
    Otherwise a fresh :class:`~repro.telemetry.MetricsRegistry` is
    installed for the duration of the command, an exposition server runs
    while the command does (``--metrics-port``), and the final snapshot
    lands as a JSON artifact (``--telemetry-dump``) on the way out —
    including on failure, so a crashed run still leaves its telemetry.
    """
    if metrics_port is None and dump_path is None:
        yield None
        return
    from .telemetry import (
        MetricsRegistry,
        MetricsServer,
        render_json,
        use_registry,
    )

    with use_registry(MetricsRegistry()) as registry:
        server = None
        if metrics_port is not None:
            server = MetricsServer(registry, port=metrics_port).start()
            print(
                f"serving metrics on http://127.0.0.1:{server.port}/metrics "
                f"(JSON at /metrics.json)"
            )
        try:
            yield registry
        finally:
            if server is not None:
                server.stop()
            if dump_path is not None:
                dump_path = Path(dump_path)
                dump_path.parent.mkdir(parents=True, exist_ok=True)
                dump_path.write_text(
                    render_json(registry.snapshot()), encoding="utf-8"
                )
                print(f"wrote telemetry snapshot to {dump_path}")


def _cmd_simulate(args) -> None:
    from .buildings import MallConfig, build_mall
    from .dsm import save_dsm
    from .positioning import write_csv
    from .simulation import BROWSER, SHOPPER, MobilitySimulator
    from .timeutil import HOUR, TimeRange

    args.out.mkdir(parents=True, exist_ok=True)
    mall = build_mall(MallConfig(floors=args.floors))
    save_dsm(mall, args.out / "mall-dsm.json")
    simulator = MobilitySimulator(mall, seed=args.seed)
    devices = simulator.simulate_population(
        args.devices,
        profiles=[SHOPPER, BROWSER],
        window=TimeRange(10 * HOUR, 22 * HOUR),
    )
    records = [r for d in devices for r in d.raw]
    count = write_csv(sorted(records), args.out / "positioning.csv")
    truth = {d.device_id: d.truth_semantics.to_dict() for d in devices}
    (args.out / "ground-truth.json").write_text(
        json.dumps(truth, indent=2), encoding="utf-8"
    )
    print(
        f"wrote {count} records for {len(devices)} devices to {args.out}/ "
        f"(DSM + positioning.csv + ground-truth.json)"
    )


def _cmd_validate(args) -> None:
    from .dsm import load_dsm, validate_dsm

    model = load_dsm(args.dsm)
    warnings = validate_dsm(model, require_connected=False)
    print(f"{model}: OK ({len(warnings)} warning(s))")
    for warning in warnings:
        print(f"  warning: {warning}")


def _cmd_translate(args) -> None:
    from .config import load_task, run_task

    from .errors import ConfigError

    engine = None
    if args.backend is not None:
        from .engine import EngineConfig

        kwargs = {"backend": args.backend, "workers": args.workers}
        if args.chunk_size is not None:
            kwargs["chunk_size"] = args.chunk_size
        if args.knowledge_build is not None:
            kwargs["knowledge_build"] = args.knowledge_build
        if args.record_layout is not None:
            kwargs["record_layout"] = args.record_layout
        engine = EngineConfig(**kwargs)
    elif (
        args.workers is not None
        or args.chunk_size is not None
        or args.knowledge_build is not None
        or args.record_layout is not None
    ):
        raise ConfigError(
            "--workers/--chunk-size/--knowledge-build/--record-layout tune "
            "the parallel engine; pass --backend (serial, threads or "
            "processes) to enable it"
        )
    config = load_task(args.config)
    with _telemetry_session(dump_path=args.telemetry_dump):
        batch = run_task(config, engine=engine)
    args.out.mkdir(parents=True, exist_ok=True)
    for result in batch:
        safe_id = result.device_id.replace("/", "_").replace(":", "_")
        result.export(args.out / f"{safe_id}.json")
    print(
        f"translated {len(batch)} sequences "
        f"({batch.total_records} records -> {batch.total_semantics} semantics) "
        f"in {batch.elapsed_seconds:.2f}s -> {args.out}/"
    )
    if batch.stats is not None:
        print(batch.stats.format_table())


def _cmd_serve(args) -> None:
    from .config import build_translator, load_task, select_sequences
    from .engine import EngineConfig
    from .errors import ConfigError
    from .live import LiveConfig, LiveTranslationService

    from .knowledge import parse_retention

    if args.retention is not None:
        parse_retention(args.retention)  # fail fast on a malformed spec
    if args.shards < 1:
        raise ConfigError(f"--shards must be >= 1, got {args.shards}")
    if args.exchange_interval < 1:
        raise ConfigError(
            f"--exchange-interval must be >= 1, got {args.exchange_interval}"
        )
    if args.snapshot_interval is not None and args.state_dir is None:
        raise ConfigError(
            "--snapshot-interval tunes the durable-state checkpoint "
            "cadence; pass --state-dir to enable journaling"
        )
    translators = {}
    feeds = {}
    retention = {}
    for spec in args.venues:
        venue_id, separator, path = spec.partition("=")
        if not separator:
            venue_id, path = Path(spec).stem, spec
        if venue_id in translators:
            raise ConfigError(f"duplicate venue id {venue_id!r}")
        task = load_task(Path(path))
        translators[venue_id] = build_translator(task)
        # The CLI flag overrides every venue; otherwise each task config
        # chooses its own knowledge lifecycle.
        retention[venue_id] = (
            args.retention
            if args.retention is not None
            else task.knowledge_retention
        )
        feeds[venue_id] = sorted(
            (
                record
                for sequence in select_sequences(task)
                for record in sequence.records
            ),
            key=lambda record: (record.timestamp, record.device_id),
        )

    engine_kwargs = {"backend": args.backend, "workers": args.workers}
    if args.chunk_size is not None:
        engine_kwargs["chunk_size"] = args.chunk_size
    if args.record_layout is not None:
        engine_kwargs["record_layout"] = args.record_layout
    engine_config = EngineConfig(**engine_kwargs)
    live_kwargs = {
        "window_seconds": args.window_seconds,
        "max_window_records": args.max_window_records,
        "adaptive_windowing": args.adaptive_windowing,
    }
    if args.snapshot_interval is not None:
        live_kwargs["snapshot_interval"] = args.snapshot_interval
    live_config = LiveConfig(**live_kwargs)

    with _telemetry_session(args.metrics_port, args.telemetry_dump):
        if args.shards > 1:
            _serve_sharded(
                args, translators, feeds, retention, engine_config,
                live_config,
            )
            return

        service = LiveTranslationService(
            translators,
            engine_config,
            live_config,
            retention=retention,
            state_dir=args.state_dir,
        )

        def report(window) -> None:
            venues = ", ".join(
                f"{vid}: {len(batch)} seq -> {batch.total_semantics} sem"
                for vid, batch in sorted(window.venues.items())
            )
            print(
                f"window {window.index:4d}  {window.records:6d} records  "
                f"{window.elapsed_seconds * 1e3:7.1f} ms  [{venues}]"
            )

        with service:
            # A recovered service already absorbed a prefix of each
            # venue's deterministic feed; skip exactly those records so
            # the replayed feed resumes at the journaled window boundary.
            processed = {
                vid: state.records
                for vid, state in service.stats.venues.items()
            }
            stats = service.serve(
                _resume_feeds(feeds, processed), on_window=report
            )
            print(stats.format_table())
            if not args.no_finalize:
                _report_finalized(service.finalize(), args.out)


def _serve_sharded(
    args, translators, feeds, retention, engine_config, live_config
) -> None:
    """The ``trips serve --shards N`` path: sharded cluster ingestion."""
    from .distributed import ShardedIngestService

    cluster = ShardedIngestService(
        translators,
        shards=args.shards,
        engine_config=engine_config,
        live_config=live_config,
        shard_router=args.shard_router,
        exchange_interval=args.exchange_interval,
        retention=retention,
        state_dir=args.state_dir,
    )

    def report(window) -> None:
        shards = ", ".join(
            f"shard {index}: {result.sequences} seq"
            for index, result in sorted(window.shards.items())
        )
        note = "  [exchange]" if window.exchange is not None else ""
        print(
            f"window {window.index:4d}  {window.records:6d} records  "
            f"{window.elapsed_seconds * 1e3:7.1f} ms  [{shards}]{note}"
        )

    with cluster:
        # Per-venue records already absorbed, summed across the
        # recovered shards (device routing is deterministic, so
        # skipping the feed prefix re-routes identically).
        processed: dict[str, int] = {}
        for shard_stats in cluster.stats.per_shard:
            for vid, venue_stats in shard_stats.venues.items():
                processed[vid] = processed.get(vid, 0) + venue_stats.records
        stats = cluster.run_feeds(
            _resume_feeds(feeds, processed), on_window=report
        )
        print(stats.format_table())
        if not args.no_finalize:
            _report_finalized(cluster.finalize(), args.out)


def _resume_feeds(feeds, processed):
    """Per-venue record lists -> :class:`RecordStream` feeds, skipping
    the prefix a recovered service already absorbed."""
    from .positioning import RecordStream

    streams = {}
    for venue_id, records in feeds.items():
        skip = processed.get(venue_id, 0)
        if skip:
            print(
                f"resuming {venue_id}: skipping {skip} journaled records"
            )
        streams[venue_id] = RecordStream(iter(records[skip:]))
    return streams


def _report_finalized(finalized, out: "Path | None") -> None:
    """Print the per-venue finalized batches; export them when asked."""
    for venue_id, batch in sorted(finalized.items()):
        print(
            f"finalized {venue_id}: {len(batch)} sequences, "
            f"{batch.total_semantics} semantics "
            f"(knowledge over "
            f"{batch.knowledge.sequences_seen if batch.knowledge else 0:g}"
            f" sequences)"
        )
        if out is not None:
            venue_dir = out / venue_id
            venue_dir.mkdir(parents=True, exist_ok=True)
            for index, result in enumerate(batch):
                safe_id = result.device_id.replace("/", "_").replace(
                    ":", "_"
                )
                result.export(venue_dir / f"{index}-{safe_id}.json")
            print(f"  wrote {len(batch)} result files to {venue_dir}/")


def _cmd_render(args) -> None:
    from .dsm import load_dsm
    from .viewer import MapView

    model = load_dsm(args.dsm)
    document = MapView(model).render(args.floor)
    document.save(args.out)
    print(f"rendered floor {args.floor} of {model.name} to {args.out}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
