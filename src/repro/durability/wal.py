"""Write-ahead log: one JSON entry per line, header first.

The WAL is an append-only text file of newline-delimited JSON.  Its
first line is a header carrying a magic string and the codec's
:data:`~repro.durability.codec.FORMAT_VERSION`; every later line is one
entry dict.  Appends flush (and optionally fsync) before returning, so
an entry either made it to the file whole or is the torn final line of
a crash — and replay treats exactly those two cases differently:

- a **torn tail** (the last line fails to parse) is dropped: the crash
  interrupted the append, so the entry's window was never acknowledged
  and will be re-processed on resume;
- a parse failure on any **earlier** line is corruption, not a crash
  artifact — append never starts line N+1 before line N is flushed —
  and raises :class:`~repro.errors.PersistenceError` rather than
  silently replaying a prefix of the truth.

:meth:`WriteAheadLog.reset` truncates back to the header after a
snapshot has captured everything the log held; the snapshot rename and
the reset are separate steps, so entries also carry enough context
(their window index) for the journal to skip anything a crash left
behind between the two.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from ..errors import PersistenceError
from ..telemetry import get_registry
from .codec import FORMAT_VERSION

#: Magic string identifying a TRIPS WAL file.
WAL_MAGIC = "trips-wal"


class WriteAheadLog:
    """Append-only JSON-lines log with crash-tolerant replay.

    ``sync=True`` fsyncs every append (durability against power loss);
    the default flushes only (durability against process death, which
    is what the crash-recovery property tests exercise).
    """

    def __init__(self, path: "str | Path", *, sync: bool = False):
        self.path = Path(path)
        self.sync = sync
        self._handle = None
        self._header_bytes = 0
        #: Entry bytes appended through this instance (header and resets
        #: excluded) — the durability cost surfaced by live stats and the
        #: ``trips_wal_bytes_total`` telemetry counter.
        self.bytes_written = 0
        #: Entries appended through this instance.
        self.entries_written = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self) -> "list[dict]":
        """Open (creating if needed) and return the replayable entries."""
        if self._handle is not None:
            raise PersistenceError(f"WAL {self.path} is already open")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = _encode_line({"magic": WAL_MAGIC, "version": FORMAT_VERSION})
        parsed = None
        raw = self.path.read_bytes() if self.path.exists() else b""
        if raw:
            parsed = self._parse(raw)
        handle = open(self.path, "ab")
        if not raw or parsed is None:
            # Empty file, or a torn header with nothing after it (the
            # crash interrupted file creation): start the log over.
            entries: "list[dict]" = []
            handle.truncate(0)
            handle.seek(0, os.SEEK_END)
            handle.write(header)
            handle.flush()
            os.fsync(handle.fileno())
            self._header_bytes = len(header)
        else:
            entries, valid_bytes = parsed
            if valid_bytes < len(raw):
                # Cut the torn tail off for real: the next append must
                # start a fresh line, not glue onto the torn one.
                handle.truncate(valid_bytes)
                handle.seek(0, os.SEEK_END)
            # Offset of the first entry = the file's own header line.
            self._header_bytes = len(raw.split(b"\n", 1)[0]) + 1
        self._handle = handle
        return entries

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, entry: dict) -> None:
        """Append one entry and flush it to the OS before returning."""
        handle = self._require_open()
        registry = get_registry()
        started = time.perf_counter() if registry.enabled else 0.0
        line = _encode_line(entry)
        handle.write(line)
        handle.flush()
        if self.sync:
            os.fsync(handle.fileno())
        self.bytes_written += len(line)
        self.entries_written += 1
        if registry.enabled:
            registry.histogram("trips_wal_append_seconds").observe(
                time.perf_counter() - started
            )
            registry.counter("trips_wal_appends_total").inc()
            registry.counter("trips_wal_bytes_total").inc(len(line))

    def reset(self) -> None:
        """Truncate back to the header (called after a snapshot)."""
        handle = self._require_open()
        handle.flush()
        handle.truncate(self._header_bytes)
        handle.seek(0, os.SEEK_END)
        if self.sync:
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _parse(
        self, raw: bytes
    ) -> "tuple[list[dict], int] | None":
        """Parse a WAL image into ``(entries, valid_bytes)``.

        ``valid_bytes`` is the length of the intact prefix (header plus
        every whole entry line); anything beyond it is a torn tail the
        caller must truncate away.  ``None`` means "torn header, start
        over".
        """
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        if not lines:
            return None
        try:
            head = json.loads(lines[0])
        except ValueError:
            if len(lines) == 1:
                return None
            raise PersistenceError(
                f"WAL {self.path} has a corrupt header followed by "
                f"{len(lines) - 1} entries"
            ) from None
        if not isinstance(head, dict) or head.get("magic") != WAL_MAGIC:
            raise PersistenceError(
                f"{self.path} is not a TRIPS WAL (header {head!r})"
            )
        if head.get("version") != FORMAT_VERSION:
            raise PersistenceError(
                f"WAL {self.path} is format version {head.get('version')!r}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        entries: list[dict] = []
        valid_bytes = len(lines[0]) + 1
        for number, line in enumerate(lines[1:], start=2):
            try:
                entry = json.loads(line)
            except ValueError:
                if number == len(lines):
                    break  # torn tail: the interrupted append, dropped
                raise PersistenceError(
                    f"WAL {self.path} is corrupt at line {number} "
                    "(mid-file entry failed to parse)"
                ) from None
            if not isinstance(entry, dict):
                raise PersistenceError(
                    f"WAL {self.path} line {number} is not an entry object"
                )
            entries.append(entry)
            valid_bytes += len(line) + 1
        return entries, valid_bytes

    def _require_open(self):
        if self._handle is None:
            raise PersistenceError(f"WAL {self.path} is not open")
        return self._handle

    def __repr__(self) -> str:
        state = "open" if self._handle is not None else "closed"
        return f"WriteAheadLog({str(self.path)!r}, {state})"


def _encode_line(entry: dict) -> bytes:
    text = json.dumps(entry, separators=(",", ":"), sort_keys=True)
    return text.encode("utf-8") + b"\n"
