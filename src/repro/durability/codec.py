"""Versioned, self-describing codec for the knowledge state machine.

Every durable payload is a plain JSON-compatible dict tagged with its
type under ``"t"``; :func:`encode` and :func:`decode` dispatch on that
tag, so a WAL entry or snapshot is readable without knowing in advance
what it holds.  :data:`FORMAT_VERSION` stamps the container files (WAL
header, snapshot envelope) and is checked on load — an unknown version
raises :class:`~repro.errors.PersistenceError` instead of silently
misreading.

The round-trip guarantee is **bit-for-bit**, not merely value-equal:

- :class:`~repro.core.complementing.ExactSum` accumulators persist
  their full Shewchuk expansion (:meth:`ExactSum.expansion`) and are
  rebuilt verbatim (:meth:`ExactSum.from_expansion`), never re-added —
  a re-accumulation could settle on a different equal-sum expansion,
  and replayed folds must walk exactly the internal states the
  uninterrupted run would have.
- Floats ride through JSON via :func:`repr`, which Python round-trips
  exactly; integer counts stay integers (and decayed float weights stay
  floats) because JSON distinguishes the two.
- :class:`~repro.knowledge.KnowledgeStore` payloads carry the open
  epoch, the retained ring, the roll/retire counters, the monotone
  data-time watermark and a *structural* encoding of the retention
  policy (spec names cannot express a combined ``window:N+Ts`` policy,
  so the policy's parameters are stored, not its name).

The codec is the wire format the planned networked knowledge exchange
will reuse for its delta payloads.
"""

from __future__ import annotations

from typing import Any

from ..core.complementing.knowledge import (
    ExactSum,
    MobilityKnowledge,
    PartialKnowledge,
    RegionStats,
)
from ..errors import PersistenceError
from ..knowledge.retention import (
    ExponentialDecay,
    RetentionPolicy,
    SlidingWindow,
    Unbounded,
)
from ..knowledge.store import Epoch, KnowledgeStore
from ..positioning import RawPositioningRecord

#: Version of the wire format; stamped into WAL headers and snapshot
#: envelopes, checked on load.
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Retention policies (structural, not spec-string: "window:N+Ts" has no
# parseable spec, and a policy must survive the round-trip exactly)
# ----------------------------------------------------------------------
def encode_retention(policy: RetentionPolicy) -> dict:
    """Encode a retention policy by its parameters."""
    if isinstance(policy, Unbounded):
        return {"kind": "unbounded"}
    if isinstance(policy, SlidingWindow):
        return {
            "kind": "window",
            "max_epochs": policy.max_epochs,
            "ttl_seconds": policy.ttl_seconds,
        }
    if isinstance(policy, ExponentialDecay):
        return {"kind": "decay", "half_life": policy.half_life}
    raise PersistenceError(
        f"cannot persist retention policy {policy!r}: only the built-in "
        "unbounded/window/decay policies have a durable encoding"
    )


def decode_retention(payload: dict) -> RetentionPolicy:
    """Rebuild a retention policy from :func:`encode_retention` output."""
    kind = payload.get("kind")
    if kind == "unbounded":
        return Unbounded()
    if kind == "window":
        return SlidingWindow(
            max_epochs=payload["max_epochs"],
            ttl_seconds=payload["ttl_seconds"],
        )
    if kind == "decay":
        return ExponentialDecay(half_life=payload["half_life"])
    raise PersistenceError(f"unknown retention encoding {payload!r}")


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _encode_stats(stats: RegionStats) -> dict:
    return {
        "t": "rstats",
        "visits": stats.visits,
        "stays": stats.stay_count,
        "dwell": stats._dwell.expansion(),
    }


def _encode_partial(partial: PartialKnowledge) -> dict:
    return {
        "t": "partial",
        "regions": list(partial.regions),
        "transitions": {
            origin: dict(outgoing)
            for origin, outgoing in partial.transitions.items()
        },
        "outgoing": dict(partial.outgoing_totals),
        "stats": {
            region: _encode_stats(stats)
            for region, stats in partial.stats.items()
        },
        "sequences": partial.sequences_seen,
    }


def _encode_knowledge(knowledge: MobilityKnowledge) -> dict:
    return {
        "t": "knowledge",
        "regions": list(knowledge.regions),
        "smoothing": knowledge.smoothing,
        "transitions": {
            origin: dict(outgoing)
            for origin, outgoing in knowledge._transitions.items()
        },
        "outgoing": dict(knowledge._outgoing_totals),
        "stats": {
            region: _encode_stats(stats)
            for region, stats in knowledge._stats.items()
        },
        "sequences": knowledge.sequences_seen,
    }


def _encode_epoch(epoch: Epoch) -> dict:
    return {
        "t": "epoch",
        "index": epoch.index,
        "partial": _encode_partial(epoch.partial),
        "start": epoch.start,
        "end": epoch.end,
    }


def _encode_store(store: KnowledgeStore) -> dict:
    return {
        "t": "store",
        "retention": encode_retention(store.retention),
        "knowledge": _encode_knowledge(store.knowledge),
        "epochs": [_encode_epoch(epoch) for epoch in store.epochs],
        "rolled": store.epochs_rolled,
        "retired": store.epochs_retired,
        "track_deltas": store.track_deltas,
        "current": (
            None if store._current is None else _encode_partial(store._current)
        ),
        "current_start": store._current_start,
        "current_end": store._current_end,
        "newest": store.newest_timestamp,
    }


_ENCODERS = {
    ExactSum: lambda total: {"t": "xsum", "p": total.expansion()},
    RegionStats: _encode_stats,
    PartialKnowledge: _encode_partial,
    MobilityKnowledge: _encode_knowledge,
    Epoch: _encode_epoch,
    KnowledgeStore: _encode_store,
}


def encode(obj: Any) -> dict:
    """Encode a knowledge-layer object as a type-tagged JSON dict."""
    encoder = _ENCODERS.get(type(obj))
    if encoder is None:
        raise PersistenceError(
            f"no durable encoding for {type(obj).__name__}"
        )
    return encoder(obj)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _decode_stats(payload: dict) -> RegionStats:
    stats = RegionStats(
        visits=payload["visits"], stay_count=payload["stays"]
    )
    # Adopt the dwell expansion verbatim (the constructor would
    # re-accumulate and could settle on a different equal-sum state).
    stats._dwell = ExactSum.from_expansion(payload["dwell"])
    return stats


def _decode_partial(payload: dict) -> PartialKnowledge:
    return PartialKnowledge(
        regions=list(payload["regions"]),
        transitions={
            origin: dict(outgoing)
            for origin, outgoing in payload["transitions"].items()
        },
        outgoing_totals=dict(payload["outgoing"]),
        stats={
            region: _decode_stats(stats)
            for region, stats in payload["stats"].items()
        },
        sequences_seen=payload["sequences"],
    )


def _decode_knowledge(payload: dict) -> MobilityKnowledge:
    return MobilityKnowledge(
        regions=list(payload["regions"]),
        smoothing=payload["smoothing"],
        _transitions={
            origin: dict(outgoing)
            for origin, outgoing in payload["transitions"].items()
        },
        _outgoing_totals=dict(payload["outgoing"]),
        _stats={
            region: _decode_stats(stats)
            for region, stats in payload["stats"].items()
        },
        sequences_seen=payload["sequences"],
    )


def _decode_epoch(payload: dict) -> Epoch:
    return Epoch(
        index=payload["index"],
        partial=_decode_partial(payload["partial"]),
        start=payload["start"],
        end=payload["end"],
    )


def _decode_store(payload: dict) -> KnowledgeStore:
    store = KnowledgeStore(
        knowledge=_decode_knowledge(payload["knowledge"]),
        retention=decode_retention(payload["retention"]),
    )
    store.epochs.extend(_decode_epoch(epoch) for epoch in payload["epochs"])
    store.epochs_rolled = payload["rolled"]
    store.epochs_retired = payload["retired"]
    store.track_deltas = payload["track_deltas"]
    store._current = (
        None
        if payload["current"] is None
        else _decode_partial(payload["current"])
    )
    store._current_start = payload["current_start"]
    store._current_end = payload["current_end"]
    store._newest_folded = payload["newest"]
    if store.epochs and store.epochs[-1].index == store.epochs_rolled - 1:
        store.last_epoch = store.epochs[-1]
    return store


_DECODERS = {
    "xsum": lambda payload: ExactSum.from_expansion(payload["p"]),
    "rstats": _decode_stats,
    "partial": _decode_partial,
    "knowledge": _decode_knowledge,
    "epoch": _decode_epoch,
    "store": _decode_store,
}


def decode(payload: dict) -> Any:
    """Rebuild the object a type-tagged dict encodes, bit for bit."""
    if not isinstance(payload, dict):
        raise PersistenceError(
            f"durable payload must be a dict, got {type(payload).__name__}"
        )
    tag = payload.get("t")
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise PersistenceError(f"unknown durable payload tag {tag!r}")
    try:
        return decoder(payload)
    except PersistenceError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(
            f"malformed durable payload (tag {tag!r}): {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Raw record batches (compact row form; journaled only when the service
# retains per-window results for finalize())
# ----------------------------------------------------------------------
def encode_records(records: "list[RawPositioningRecord]") -> list:
    """Encode a window's raw records as compact rows."""
    return [
        [
            record.timestamp,
            record.device_id,
            record.location.x,
            record.location.y,
            record.location.floor,
        ]
        for record in records
    ]


def decode_records(rows: list) -> "list[RawPositioningRecord]":
    """Rebuild a window's raw records from :func:`encode_records` rows."""
    from ..geometry import Point

    try:
        return [
            RawPositioningRecord(
                timestamp=timestamp,
                device_id=device_id,
                location=Point(x, y, floor=floor),
            )
            for timestamp, device_id, x, y, floor in rows
        ]
    except (TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed record rows: {exc}") from exc
