"""Durable state journal: snapshot file + WAL, with exact recovery.

One journal owns one state directory::

    state-dir/
      snapshot.json   # last checkpoint (atomic tmp+rename)
      wal.jsonl       # header + entries appended since that checkpoint

The protocol, in the order the live service drives it once per window:

1. :meth:`append_window` appends the window's entry (per-venue deltas,
   roll/retire markers, optionally the raw record batch) and flushes.
2. When the snapshot cadence is due, :meth:`write_snapshot` writes the
   full state to ``snapshot.json.tmp``, fsyncs, renames over
   ``snapshot.json`` (atomic on POSIX), then resets the WAL back to its
   header.

Crash anywhere in that sequence recovers exactly, because every WAL
entry carries its window index and the snapshot envelope carries the
number of windows it captured: :meth:`load` returns the snapshot plus
only the WAL entries *newer* than it.  A crash between the snapshot
rename and the WAL reset leaves stale entries behind — all of them
``<= snapshot.windows`` — and they are filtered out, not replayed
twice.  A torn final WAL line is an unacknowledged window and is
dropped by the WAL's replay (see :mod:`repro.durability.wal`).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from ..errors import PersistenceError
from ..telemetry import get_registry
from .codec import FORMAT_VERSION
from .wal import WriteAheadLog

#: Magic string identifying a TRIPS snapshot file.
SNAPSHOT_MAGIC = "trips-snapshot"


class DurableStateJournal:
    """Snapshot + WAL pair for one service (or one shard) instance."""

    def __init__(self, directory: "str | Path", *, sync: bool = False):
        self.directory = Path(directory)
        self.snapshot_path = self.directory / "snapshot.json"
        self.wal = WriteAheadLog(self.directory / "wal.jsonl", sync=sync)
        self._entries: "list[dict] | None" = None
        #: Snapshots checkpointed through this instance.
        self.snapshots_written = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self) -> None:
        """Create the directory if needed and open (replaying) the WAL."""
        self.directory.mkdir(parents=True, exist_ok=True)
        self._entries = self.wal.open()

    def close(self) -> None:
        self.wal.close()
        self._entries = None

    @property
    def is_open(self) -> bool:
        """Whether the WAL is open for appending."""
        return self._entries is not None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def load(self) -> "tuple[dict | None, list[dict]]":
        """The last snapshot payload plus the WAL entries newer than it.

        Must be called after :meth:`open`.  Returns ``(None, entries)``
        when no snapshot has ever been written.  Entries are window
        entries and markers in append order, already filtered down to
        those the snapshot does not cover.
        """
        if self._entries is None:
            raise PersistenceError(
                f"journal {self.directory} is not open"
            )
        snapshot = self._read_snapshot()
        covered = -1 if snapshot is None else snapshot["windows"] - 1
        entries = [
            entry
            for entry in self._entries
            if entry.get("window", covered + 1) > covered
        ]
        return snapshot, entries

    def _read_snapshot(self) -> "dict | None":
        if not self.snapshot_path.exists():
            return None
        try:
            payload = json.loads(self.snapshot_path.read_bytes())
        except ValueError as exc:
            # Snapshots are published by atomic rename; a torn one means
            # the directory was damaged, not that a crash raced us.
            raise PersistenceError(
                f"snapshot {self.snapshot_path} is corrupt: {exc}"
            ) from exc
        if (
            not isinstance(payload, dict)
            or payload.get("magic") != SNAPSHOT_MAGIC
        ):
            raise PersistenceError(
                f"{self.snapshot_path} is not a TRIPS snapshot"
            )
        if payload.get("version") != FORMAT_VERSION:
            raise PersistenceError(
                f"snapshot {self.snapshot_path} is format version "
                f"{payload.get('version')!r}; this build reads version "
                f"{FORMAT_VERSION}"
            )
        return payload

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append_window(self, window: int, body: dict) -> None:
        """Append one window's entry (indexed for snapshot filtering)."""
        self.wal.append({"t": "window", "window": window, **body})

    def write_snapshot(self, windows: int, body: dict) -> None:
        """Checkpoint the full state atomically, then truncate the WAL.

        ``windows`` is the number of windows the state has absorbed; it
        is what :meth:`load` filters stale WAL entries against, so it
        must count exactly the windows whose entries were appended.
        """
        registry = get_registry()
        started = time.perf_counter() if registry.enabled else 0.0
        payload = {
            "magic": SNAPSHOT_MAGIC,
            "version": FORMAT_VERSION,
            "windows": windows,
            **body,
        }
        tmp_path = self.snapshot_path.with_suffix(".json.tmp")
        with open(tmp_path, "wb") as handle:
            handle.write(
                json.dumps(
                    payload, separators=(",", ":"), sort_keys=True
                ).encode("utf-8")
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.snapshot_path)
        self.wal.reset()
        self.snapshots_written += 1
        if registry.enabled:
            registry.histogram("trips_snapshot_seconds").observe(
                time.perf_counter() - started
            )
            registry.counter("trips_snapshots_total").inc()

    def __repr__(self) -> str:
        return f"DurableStateJournal({str(self.directory)!r})"
