"""Durable knowledge state: versioned codec, WAL, snapshots, recovery.

The live and distributed services (:mod:`repro.live`,
:mod:`repro.distributed`) are long-running processes whose per-venue
:class:`~repro.knowledge.KnowledgeStore` state would otherwise
evaporate on restart.  This package makes that state durable:

- :mod:`~repro.durability.codec` — a versioned, self-describing wire
  format for :class:`~repro.core.complementing.PartialKnowledge`,
  :class:`~repro.core.complementing.MobilityKnowledge` and the
  :class:`~repro.knowledge.KnowledgeStore` epoch ring, persisting
  :class:`~repro.core.complementing.ExactSum` expansions verbatim so
  round-trips are **bit-for-bit** — a recovered store does not merely
  equal the lost one, it walks identical internal states on every
  subsequent fold.
- :mod:`~repro.durability.wal` — an append-only write-ahead log of
  per-window entries (each venue's exact
  :class:`~repro.core.complementing.PartialKnowledge` delta plus
  epoch-roll/retire markers), flushed at every window boundary, with
  torn-tail-tolerant replay.
- :mod:`~repro.durability.journal` — periodic full snapshots with
  atomic publication and WAL truncation, and the snapshot + WAL-tail
  recovery protocol that is exact at any crash point.

The replay invariant the property suite proves: kill the service at any
window boundary, recover from the state directory, finish the feed, and
``finalize()`` output and knowledge are bit-for-bit identical to the
uninterrupted run, under all three retention policies and under sharded
ingestion.  The codec doubles as the delta wire format the planned
networked knowledge exchange will reuse.
"""

from .codec import (
    FORMAT_VERSION,
    decode,
    decode_records,
    decode_retention,
    encode,
    encode_records,
    encode_retention,
)
from .journal import SNAPSHOT_MAGIC, DurableStateJournal
from .wal import WAL_MAGIC, WriteAheadLog

__all__ = [
    "FORMAT_VERSION",
    "SNAPSHOT_MAGIC",
    "WAL_MAGIC",
    "DurableStateJournal",
    "WriteAheadLog",
    "decode",
    "decode_records",
    "decode_retention",
    "encode",
    "encode_records",
    "encode_retention",
]
