"""Lightweight span tracing: nested monotonic timers on a bounded ring.

A *span* is one timed phase — ``registry.trace("live_window",
venue="mall")`` — measured on the monotonic clock
(:func:`time.perf_counter`), never wall time, so durations are immune to
clock steps.  Spans nest per thread: a ``trace`` opened while another is
running records the outer span as its parent, so one live window's
record shows the engine phases inside it.

Completed spans land on a bounded ring (:class:`SpanTracer`, a
``deque(maxlen=...)``) — recent history for the JSON exposition without
unbounded growth — and each completion also feeds the
``trips_span_seconds`` histogram (labelled by span name), which is where
p99-style questions are answered after the ring has rotated.

Tracing never touches the traced computation: spans observe clocks and
counters only, which is one half of the telemetry exactness contract
(``tests/test_telemetry.py`` proves translation output is bit-for-bit
identical with tracing on or off).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from .registry import MetricsRegistry

#: Histogram fed by every completed span, labelled ``span=<name>``.
SPAN_HISTOGRAM = "trips_span_seconds"


@dataclass
class Span:
    """One timed phase: identity, lineage, and monotonic timing."""

    span_id: int
    name: str
    labels: "dict[str, str]"
    #: ``span_id`` of the span this one nested inside (``None`` at root).
    parent_id: "int | None"
    #: Nesting depth (0 at root) — render-friendly lineage summary.
    depth: int
    #: Monotonic start (``time.perf_counter``); meaningful only relative
    #: to other spans of the same process.
    started: float
    duration: "float | None" = None

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "labels": dict(self.labels),
            "parent_id": self.parent_id,
            "depth": self.depth,
            "started": self.started,
            "duration": self.duration,
        }


class _SpanContext:
    """The context manager one ``trace()`` call returns (not reusable)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._span.started = time.perf_counter()
        return self._span

    def __exit__(self, *exc_info) -> None:
        duration = time.perf_counter() - self._span.started
        self._span.duration = duration
        self._tracer._pop(self._span)
        self._tracer._record(self._span)


class _NullSpanContext:
    """Shared, stateless no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()


class SpanTracer:
    """Per-registry span state: id allocation, nesting stack, ring."""

    def __init__(self, ring: int, registry: "MetricsRegistry"):
        self._ring: "deque[Span]" = deque(maxlen=ring)
        self._registry = registry
        self._ids = itertools.count()
        self._lock = threading.Lock()
        self._local = threading.local()

    def trace(self, name: str, labels: Mapping[str, object]) -> _SpanContext:
        parent = self._stack()[-1] if self._stack() else None
        span = Span(
            span_id=next(self._ids),
            name=name,
            labels={k: str(v) for k, v in labels.items()},
            parent_id=parent.span_id if parent is not None else None,
            depth=parent.depth + 1 if parent is not None else 0,
            started=0.0,
        )
        return _SpanContext(self, span)

    def recent(self) -> "list[Span]":
        with self._lock:
            return list(self._ring)

    # ------------------------------------------------------------------
    def _stack(self) -> "list[Span]":
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def _record(self, span: Span) -> None:
        with self._lock:
            self._ring.append(span)
        self._registry.histogram(SPAN_HISTOGRAM, span=span.name).observe(
            span.duration
        )
