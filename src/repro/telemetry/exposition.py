"""Exposition: Prometheus text + JSON rendering, and the scrape server.

Both renderers take a **snapshot** (the plain-dict output of
:meth:`~repro.telemetry.registry.MetricsRegistry.snapshot`), never a
live registry — the snapshot is taken under the registry lock, so a
scrape observes one consistent cut even while ingestion keeps updating
instruments (snapshot isolation).

:class:`MetricsServer` is a stdlib ``http.server`` running on a daemon
thread — no third-party dependency — serving:

- ``GET /metrics`` — Prometheus text exposition (version 0.0.4), the
  format every Prometheus-compatible scraper understands;
- ``GET /metrics.json`` — the full JSON snapshot, including histogram
  max values and the recent-span ring, for humans and ad-hoc tooling.

Wired up by ``trips serve --metrics-port N`` (port 0 asks the OS for an
ephemeral port; read it back from :attr:`MetricsServer.port`).
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

CONTENT_TYPE_TEXT = "text/plain; version=0.0.4; charset=utf-8"
CONTENT_TYPE_JSON = "application/json; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_labels(labels: "list | tuple", extra: "tuple | None" = None) -> str:
    """Render a label set as ``{k="v",...}`` (empty string when bare)."""
    pairs = [tuple(pair) for pair in labels]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in pairs
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    """Prometheus-flavoured number: ``+Inf``/``-Inf``/``NaN`` spelled out."""
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot as Prometheus text exposition.

    Families are sorted by metric name and series by label set, so the
    output is deterministic for a given snapshot; histograms expand to
    the conventional ``_bucket`` (cumulative, with an explicit ``+Inf``
    bound), ``_sum``, and ``_count`` series.
    """
    lines: "list[str]" = []
    typed: "set[str]" = set()

    for entry in sorted(
        snapshot.get("counters", ()), key=lambda e: (e["name"], e["labels"])
    ):
        if entry["name"] not in typed:
            typed.add(entry["name"])
            lines.append(f"# TYPE {entry['name']} counter")
        lines.append(
            f"{entry['name']}{_format_labels(entry['labels'])} "
            f"{_format_value(entry['value'])}"
        )

    for entry in sorted(
        snapshot.get("gauges", ()), key=lambda e: (e["name"], e["labels"])
    ):
        if entry["name"] not in typed:
            typed.add(entry["name"])
            lines.append(f"# TYPE {entry['name']} gauge")
        lines.append(
            f"{entry['name']}{_format_labels(entry['labels'])} "
            f"{_format_value(entry['value'])}"
        )

    seen_histograms: "set[str]" = set()
    for entry in sorted(
        snapshot.get("histograms", ()), key=lambda e: (e["name"], e["labels"])
    ):
        name = entry["name"]
        if name not in seen_histograms:
            seen_histograms.add(name)
            lines.append(f"# TYPE {name} histogram")
        labels = entry["labels"]
        cumulative = 0
        for bound, count in zip(entry["bounds"], entry["counts"]):
            cumulative += count
            le = _format_value(float(bound))
            lines.append(
                f"{name}_bucket{_format_labels(labels, ('le', le))} "
                f"{cumulative}"
            )
        cumulative += entry["counts"][-1]
        lines.append(
            f"{name}_bucket{_format_labels(labels, ('le', '+Inf'))} "
            f"{cumulative}"
        )
        lines.append(
            f"{name}_sum{_format_labels(labels)} "
            f"{_format_value(float(entry['sum']))}"
        )
        lines.append(f"{name}_count{_format_labels(labels)} {entry['count']}")

    return "\n".join(lines) + ("\n" if lines else "")


def render_json(snapshot: dict) -> str:
    """Render a registry snapshot as deterministic, indented JSON."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` and ``/metrics.json`` from fresh snapshots."""

    # Set per-server-class by MetricsServer; a callable returning a dict.
    snapshot_fn = staticmethod(lambda: {})

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(self.snapshot_fn()).encode("utf-8")
            content_type = CONTENT_TYPE_TEXT
        elif path in ("/metrics.json", "/metrics/json"):
            body = render_json(self.snapshot_fn()).encode("utf-8")
            content_type = CONTENT_TYPE_JSON
        else:
            self.send_error(404, "unknown path; try /metrics or /metrics.json")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        pass  # scrapes are high-frequency; keep the console quiet


class MetricsServer:
    """Background scrape endpoint for one registry.

    Runs a ``ThreadingHTTPServer`` on a daemon thread; every request
    takes a *fresh* snapshot under the registry lock, so responses are
    consistent cuts regardless of concurrent updates.  Usable as a
    context manager::

        with MetricsServer(registry, port=0) as server:
            print(f"scrape me on :{server.port}")
    """

    def __init__(self, registry, port: int = 0, host: str = "127.0.0.1"):
        self._registry = registry
        handler = type(
            "_BoundMetricsHandler",
            (_MetricsHandler,),
            {"snapshot_fn": staticmethod(registry.snapshot)},
        )
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: "threading.Thread | None" = None

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with port 0)."""
        return self._server.server_address[1]

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="trips-metrics",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
