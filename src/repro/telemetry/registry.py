"""The metrics registry: counters, gauges, and exact-merge histograms.

Three instrument kinds, all label-aware and all safe to update from any
thread (one registry-wide lock serializes every mutation, so a snapshot
is a *consistent* cut across every instrument):

- :class:`Counter` — a monotone integer.  Increments are integers only,
  so worker-side counts merge by plain addition: exact, commutative,
  associative — the same algebra discipline as
  :class:`~repro.core.complementing.PartialKnowledge` merges.
- :class:`Gauge` — a point-in-time float (queue depth, retained epochs).
  Snapshot merges take the **maximum**, the only order-independent
  combination that makes sense for a point-in-time reading.
- :class:`Histogram` — fixed, explicit bucket bounds (never adaptive, so
  two workers' buckets always align), integer per-bucket counts, and a
  running total kept in an :class:`~repro.core.complementing.ExactSum`
  Shewchuk expansion — merging snapshots in any order or grouping yields
  bit-for-bit identical sums, proven by the hypothesis suite in
  ``tests/test_telemetry.py``.

Process-safe aggregation works through :meth:`MetricsRegistry.snapshot`
(full fidelity, including the exact-sum partials) and
:meth:`MetricsRegistry.merge_snapshot`: a ``processes`` backend worker
snapshots its local registry, ships the plain-dict snapshot back, and
the coordinator folds it in — deterministically, independent of worker
count and arrival order.

:class:`NullRegistry` is the disabled path: every lookup returns a
shared no-op instrument and ``enabled`` is ``False``, so instrumentation
sites can guard their hot paths with one attribute check and the
telemetry-off translation path stays near-free
(``benchmarks/bench_telemetry.py`` gates the enabled overhead too).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterator, Mapping

from ..core.complementing import ExactSum
from ..errors import ConfigError
from .spans import Span, SpanTracer, _NULL_SPAN_CONTEXT

#: Default histogram bucket upper bounds (seconds-flavoured: the common
#: instrument is a latency).  Fixed and explicit so every worker's
#: buckets align and merges are exact; override per histogram for
#: size-flavoured metrics.
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Default bound of the recent-spans ring.
DEFAULT_SPAN_RING = 256

LabelSet = "tuple[tuple[str, str], ...]"


def _label_key(labels: Mapping[str, object]) -> LabelSet:
    """Canonical (sorted, stringified) label tuple — the instrument key."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotone integer counter; increments must be integers (exact)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet, lock: threading.RLock):
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (a non-negative integer) to the counter."""
        if not isinstance(amount, int) or isinstance(amount, bool):
            raise ConfigError(
                f"counter {self.name!r} increments must be integers, got "
                f"{amount!r}; integer addition is what keeps cross-worker "
                "merges exact"
            )
        if amount < 0:
            raise ConfigError(
                f"counter {self.name!r} is monotone; cannot add {amount}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time float value (set/inc/dec)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet, lock: threading.RLock):
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= float(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bound histogram with an exact (Shewchuk) running sum.

    ``bounds`` are the inclusive upper bucket bounds; one implicit
    ``+Inf`` bucket catches the rest.  Observations bisect into their
    bucket, so an observe is O(log #buckets); ``max`` is tracked so a
    snapshot can answer "worst window latency so far" without a scrape
    history.
    """

    __slots__ = ("name", "labels", "bounds", "_lock", "_counts", "_sum",
                 "_count", "_max")

    def __init__(
        self,
        name: str,
        labels: LabelSet,
        lock: threading.RLock,
        bounds: "tuple[float, ...]" = DEFAULT_BUCKETS,
    ):
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigError(
                f"histogram {self.__class__.__name__} {name!r} bucket "
                f"bounds must be non-empty and strictly increasing, got "
                f"{bounds!r}"
            )
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self._lock = lock
        self._counts = [0] * (len(self.bounds) + 1)  # +1: the +Inf bucket
        self._sum = ExactSum()
        self._count = 0
        self._max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum.add(value)
            self._count += 1
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum.value

    @property
    def max(self) -> "float | None":
        with self._lock:
            return self._max

    def bucket_counts(self) -> "list[int]":
        """Per-bucket counts (last entry is the +Inf bucket)."""
        with self._lock:
            return list(self._counts)


class MetricsRegistry:
    """One process's telemetry state: instruments plus the span tracer.

    Instruments are created on first lookup and cached per
    ``(name, labels)``; lookups and updates share one re-entrant lock,
    which is also what makes :meth:`snapshot` a consistent cut — the
    exposition layer renders from the snapshot, never from live state
    (snapshot isolation).
    """

    enabled = True

    def __init__(self, *, span_ring: int = DEFAULT_SPAN_RING):
        self._lock = threading.RLock()
        self._counters: "dict[tuple[str, LabelSet], Counter]" = {}
        self._gauges: "dict[tuple[str, LabelSet], Gauge]" = {}
        self._histograms: "dict[tuple[str, LabelSet], Histogram]" = {}
        self._buckets: "dict[str, tuple[float, ...]]" = {}
        self._tracer = SpanTracer(ring=span_ring, registry=self)

    # ------------------------------------------------------------------
    # Instrument lookup
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                self._check_kind(name, self._counters)
                instrument = Counter(name, key[1], self._lock)
                self._counters[key] = instrument
            return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                self._check_kind(name, self._gauges)
                instrument = Gauge(name, key[1], self._lock)
                self._gauges[key] = instrument
            return instrument

    def histogram(
        self,
        name: str,
        buckets: "tuple[float, ...] | None" = None,
        **labels,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                self._check_kind(name, self._histograms)
                bounds = self._buckets.get(name)
                if bounds is None:
                    bounds = (
                        tuple(buckets)
                        if buckets is not None
                        else DEFAULT_BUCKETS
                    )
                    # Every label-series of one histogram shares one set
                    # of bounds: that alignment is what keeps merges and
                    # cross-series comparison exact.
                    self._buckets[name] = bounds
                instrument = Histogram(name, key[1], self._lock, bounds)
                self._histograms[key] = instrument
            elif buckets is not None and tuple(buckets) != instrument.bounds:
                raise ConfigError(
                    f"histogram {name!r} already exists with bounds "
                    f"{instrument.bounds!r}; bounds are fixed at creation"
                )
            return instrument

    def _check_kind(self, name: str, own: dict) -> None:
        """A metric name may belong to exactly one instrument kind."""
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is own:
                continue
            if any(key[0] == name for key in table):
                raise ConfigError(
                    f"metric {name!r} is already registered as a {kind}"
                )

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def trace(self, name: str, **labels):
        """Context manager timing one span (monotonic clock).

        Nested ``trace`` calls on the same thread record parent/child
        links; completed spans land on a bounded ring
        (:meth:`recent_spans`) and feed the ``trips_span_seconds``
        histogram, labelled by span name.
        """
        return self._tracer.trace(name, labels)

    def recent_spans(self) -> "list[Span]":
        """The most recently completed spans, oldest first (bounded)."""
        return self._tracer.recent()

    # ------------------------------------------------------------------
    # Snapshots, merging, iteration
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A consistent, full-fidelity copy of every instrument.

        Plain dicts/lists only (picklable, JSON-encodable): counters as
        integers, gauges as floats, histograms as bucket counts plus the
        exact-sum **partials** (not just the rounded value), so a
        snapshot can be merged into another registry without losing the
        bit-for-bit merge guarantee.  Spans ride along for the JSON
        exposition but never merge.
        """
        with self._lock:
            counters = [
                {
                    "name": c.name,
                    "labels": [list(pair) for pair in c.labels],
                    "value": c._value,
                }
                for c in self._counters.values()
            ]
            gauges = [
                {
                    "name": g.name,
                    "labels": [list(pair) for pair in g.labels],
                    "value": g._value,
                }
                for g in self._gauges.values()
            ]
            histograms = [
                {
                    "name": h.name,
                    "labels": [list(pair) for pair in h.labels],
                    "bounds": list(h.bounds),
                    "counts": list(h._counts),
                    "count": h._count,
                    "sum": h._sum.value,
                    "sum_partials": list(h._sum._partials),
                    "max": h._max,
                }
                for h in self._histograms.values()
            ]
            spans = [span.to_dict() for span in self._tracer.recent()]
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": spans,
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one, exactly.

        Counters add (integers), histogram bucket counts add and sums
        merge through their exact-sum partials — order- and
        grouping-independent, bit for bit — and gauges take the maximum
        (the one order-independent combination for a point-in-time
        reading).  Spans are per-process and are not merged.
        """
        with self._lock:
            for entry in snapshot.get("counters", ()):
                labels = dict(entry["labels"])
                self.counter(entry["name"], **labels).inc(entry["value"])
            for entry in snapshot.get("gauges", ()):
                labels = dict(entry["labels"])
                gauge = self.gauge(entry["name"], **labels)
                if entry["value"] > gauge._value:
                    gauge._value = float(entry["value"])
            for entry in snapshot.get("histograms", ()):
                labels = dict(entry["labels"])
                histogram = self.histogram(
                    entry["name"], buckets=tuple(entry["bounds"]), **labels
                )
                for index, count in enumerate(entry["counts"]):
                    histogram._counts[index] += count
                histogram._count += entry["count"]
                incoming = ExactSum()
                incoming._partials = [
                    float(p) for p in entry["sum_partials"]
                ]
                histogram._sum.merge(incoming)
                if entry["max"] is not None and (
                    histogram._max is None or entry["max"] > histogram._max
                ):
                    histogram._max = float(entry["max"])

    def instruments(self) -> "Iterator[Counter | Gauge | Histogram]":
        """Every registered instrument (stable name/label order)."""
        with self._lock:
            everything = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        return iter(
            sorted(everything, key=lambda i: (i.name, i.labels))
        )

    def __str__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry({len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, "
                f"{len(self._histograms)} histograms)"
            )


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for the disabled path."""

    __slots__ = ()

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1.0) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    value = 0
    count = 0
    sum = 0.0
    max = None


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: every operation is a cheap no-op.

    Shares the :class:`MetricsRegistry` surface so instrumentation sites
    never branch on registry type — only, optionally, on
    :attr:`enabled` to skip building label kwargs on hot paths.
    """

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=None, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def trace(self, name: str, **labels):
        return _NULL_SPAN_CONTEXT

    def recent_spans(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": [], "spans": []}

    def merge_snapshot(self, snapshot: dict) -> None:
        pass

    def instruments(self) -> Iterator:
        return iter(())

    def __str__(self) -> str:
        return "NullRegistry()"
