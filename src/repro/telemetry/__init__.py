"""Unified telemetry: metrics registry, span tracing, and exposition.

Every layer of the pipeline — engine phases, live windows, knowledge
rolls, exchange rounds, WAL appends, snapshots, recovery — reports into
one process-wide :class:`MetricsRegistry` of counters, gauges, and
fixed-bucket histograms, plus nested monotonic span traces.  The
registry is dependency-free (stdlib + the repo's own
:class:`~repro.core.complementing.ExactSum`) and process-safe: worker
registries ship plain-dict snapshots back to the coordinator, where
:meth:`MetricsRegistry.merge_snapshot` folds them in exactly —
counters by integer addition, histogram sums through their Shewchuk
expansion partials — so aggregated telemetry is order- and
worker-count-independent.

The cardinal invariant is **exactness neutrality**: telemetry observes,
it never participates.  Translation output and ``finalize()`` knowledge
are bit-for-bit identical with telemetry enabled or disabled, across
every execution backend and record layout — proven by the differential
suite in ``tests/test_telemetry.py``.  The disabled path is a
:class:`NullRegistry` whose instruments are shared no-ops, so
uninstrumented runs stay near-free (gated by
``benchmarks/bench_telemetry.py``, which also caps the enabled overhead
at 3% per window).

Exposition is threefold: ``trips serve --metrics-port N`` starts a
:class:`MetricsServer` (Prometheus text at ``/metrics``, JSON snapshot
at ``/metrics.json``), the live service's ``format_table`` renders the
same numbers for the console, and ``--telemetry-dump PATH`` writes the
end-of-run JSON snapshot as an artifact.

The process-wide registry defaults to disabled; enable it with::

    from repro.telemetry import MetricsRegistry, set_registry

    set_registry(MetricsRegistry())

or scope it to a block with :func:`use_registry`.
"""

from __future__ import annotations

import contextlib
import threading

from .exposition import MetricsServer, render_json, render_prometheus
from .registry import (
    DEFAULT_BUCKETS,
    DEFAULT_SPAN_RING,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .spans import SPAN_HISTOGRAM, Span, SpanTracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_SPAN_RING",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "NullRegistry",
    "SPAN_HISTOGRAM",
    "Span",
    "SpanTracer",
    "get_registry",
    "render_json",
    "render_prometheus",
    "set_registry",
    "use_registry",
]

#: The shared disabled registry — the process-wide default.
NULL_REGISTRY = NullRegistry()

_state_lock = threading.Lock()
_registry: "MetricsRegistry | NullRegistry" = NULL_REGISTRY


def get_registry() -> "MetricsRegistry | NullRegistry":
    """The process-wide registry (a :class:`NullRegistry` by default)."""
    return _registry


def set_registry(
    registry: "MetricsRegistry | NullRegistry | None",
) -> "MetricsRegistry | NullRegistry":
    """Install ``registry`` process-wide and return the previous one.

    ``None`` restores the shared disabled registry.
    """
    global _registry
    with _state_lock:
        previous = _registry
        _registry = registry if registry is not None else NULL_REGISTRY
    return previous


@contextlib.contextmanager
def use_registry(registry: "MetricsRegistry | NullRegistry | None"):
    """Scope the process-wide registry to a ``with`` block.

    Restores the previous registry on exit, even on error — the shape
    tests use to instrument one translation without leaking state.
    """
    previous = set_registry(registry)
    try:
        yield get_registry()
    finally:
        set_registry(previous)
