"""Streaming positioning source: the paper's "streams APIs" input.

A :class:`RecordStream` wraps any record iterator and exposes windowed
consumption, so the Configurator can attach TRIPS to a live positioning
feed and the Data Selector can still operate on bounded chunks.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from ..errors import DataSourceError
from .record import RawPositioningRecord
from .sequence import PositioningSequence


class RecordStream:
    """A pull-based stream of positioning records.

    The stream is single-pass: records are consumed as they are read,
    mirroring a network feed.  ``take``/``take_window`` return bounded
    batches; ``drain`` empties the rest.
    """

    def __init__(self, records: Iterable[RawPositioningRecord]):
        self._iterator: Iterator[RawPositioningRecord] = iter(records)
        self._consumed = 0
        self._pushed_back: list[RawPositioningRecord] = []

    @property
    def consumed(self) -> int:
        """Number of records handed out so far."""
        return self._consumed

    def iter_records(self) -> Iterator[RawPositioningRecord]:
        """DataSource protocol: yields the remaining records."""
        while True:
            record = self._next_or_none()
            if record is None:
                return
            yield record

    def take(self, count: int) -> list[RawPositioningRecord]:
        """Up to ``count`` records (fewer when the stream ends)."""
        if count < 0:
            raise DataSourceError(f"take count must be >= 0, got {count}")
        batch: list[RawPositioningRecord] = []
        while len(batch) < count:
            record = self._next_or_none()
            if record is None:
                break
            batch.append(record)
        return batch

    def take_window(
        self, window_seconds: float, max_records: int | None = None
    ) -> list[RawPositioningRecord]:
        """Records until the stream's timestamps advance ``window_seconds``.

        Assumes the feed is approximately time-ordered, as positioning
        streams are.  The first record beyond the window is pushed back.
        ``max_records`` additionally bounds the window by count, so a
        burst of traffic cannot grow one window without limit — the
        window closes on whichever bound is hit first.
        """
        if window_seconds <= 0:
            raise DataSourceError(
                f"window must be positive, got {window_seconds}"
            )
        if max_records is not None and max_records < 1:
            raise DataSourceError(
                f"max_records must be >= 1, got {max_records}"
            )
        batch: list[RawPositioningRecord] = []
        window_start: float | None = None
        while max_records is None or len(batch) < max_records:
            record = self._next_or_none()
            if record is None:
                break
            if window_start is None:
                window_start = record.timestamp
            if record.timestamp - window_start > window_seconds:
                self._push_back(record)
                break
            batch.append(record)
        return batch

    def drain(self) -> list[RawPositioningRecord]:
        """All remaining records."""
        return list(self.iter_records())

    def _next_or_none(self) -> RawPositioningRecord | None:
        if self._pushed_back:
            record = self._pushed_back.pop()
        else:
            try:
                record = next(self._iterator)
            except StopIteration:
                return None
        self._consumed += 1
        return record

    def _push_back(self, record: RawPositioningRecord) -> None:
        """Return a record to the stream; it was never really handed out."""
        self._pushed_back.append(record)
        self._consumed -= 1


def windowed_records(
    stream: RecordStream,
    window_seconds: float,
    max_records: int | None = None,
) -> Iterator[list[RawPositioningRecord]]:
    """Yield consecutive raw-record windows until the stream ends.

    Each window is bounded by time (``window_seconds``) and optionally by
    count (``max_records``) — whichever closes first.  This is the unit
    the live streaming service translates and folds incrementally.
    """
    while True:
        batch = stream.take_window(window_seconds, max_records=max_records)
        if not batch:
            return
        yield batch


def windowed_sequences(
    stream: RecordStream,
    window_seconds: float,
    on_window: Callable[[list[PositioningSequence]], None] | None = None,
    max_records: int | None = None,
) -> Iterator[list[PositioningSequence]]:
    """Yield per-device sequences for each consecutive stream window.

    This is the incremental path: each window's records are grouped by
    device and handed to the caller (or ``on_window``), letting the
    Translator run continuously over a live feed.
    """
    for batch in windowed_records(
        stream, window_seconds, max_records=max_records
    ):
        sequences = PositioningSequence.group_records(batch)
        if on_window is not None:
            on_window(sequences)
        yield sequences


def sequence_stream(
    stream: RecordStream,
    window_seconds: float,
    max_records: int | None = None,
) -> Iterator[PositioningSequence]:
    """Flatten a windowed stream into one lazy iterator of sequences.

    This is the ingestion shape ``repro.engine.Engine.translate_stream``
    expects: each window's per-device sequences are yielded one at a time
    as the underlying stream is consumed, so ingestion overlaps phase one
    instead of waiting for the whole feed.  Note the engine still retains
    every phase-one result until its knowledge barrier, so the feed must
    be finite; truly unbounded feeds need per-window translation — see
    :meth:`repro.engine.Engine.translate_increment` and
    :class:`repro.live.LiveTranslationService`.
    """
    for window in windowed_sequences(
        stream, window_seconds, max_records=max_records
    ):
        yield from window
