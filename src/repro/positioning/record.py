"""Raw positioning records: the left-hand side of the paper's Table 1.

Each record "captures the object location as a geometric point at a
timestamp" — ``oi, (5.1, 12.7, 3F), 1:02:05pm``.  Records are immutable;
the cleaning layer produces *new* records rather than mutating, so the
viewer can always show raw and cleaned sequences side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import DataSourceError
from ..geometry import Point
from ..timeutil import format_clock


@dataclass(frozen=True, order=True)
class RawPositioningRecord:
    """One positioning fix for one device.

    Ordered by ``(timestamp, device_id)`` so sorting a mixed batch yields
    global time order.  ``location`` carries planar coordinates plus the
    reported floor, which may be wrong — floor correction is the cleaning
    layer's job.
    """

    timestamp: float
    device_id: str
    location: Point

    def __post_init__(self) -> None:
        if not self.device_id:
            raise DataSourceError("positioning record requires a device id")

    @property
    def floor(self) -> int:
        """The reported floor value."""
        return self.location.floor

    def moved(self, location: Point) -> "RawPositioningRecord":
        """A copy at a different location (used by repairs)."""
        return replace(self, location=location)

    def refloored(self, floor: int) -> "RawPositioningRecord":
        """A copy with only the floor value changed (floor correction)."""
        return replace(self, location=self.location.with_floor(floor))

    def __str__(self) -> str:  # paper style: oi, (5.1, 12.7, 3F), 1:02:05pm
        return f"{self.device_id}, {self.location}, {format_clock(self.timestamp)}"
