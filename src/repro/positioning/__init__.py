"""Positioning data layer (substrate S5).

Raw positioning records and per-device sequences, multi-source ingestion
(CSV, JSON-lines, DB-style tables, streams), the Data Selector's combinable
rule algebra, and controlled error injection for the cleaning experiments.
"""

from .io import (
    CSV_COLUMNS,
    CsvFileSource,
    DataSource,
    JsonlFileSource,
    MemorySource,
    TableSource,
    write_csv,
    write_jsonl,
)
from .quality import (
    InjectionReport,
    inject_dropout,
    inject_floor_errors,
    inject_gaussian_noise,
    inject_outliers,
    subsample,
)
from .record import RawPositioningRecord
from .selector import (
    AndRule,
    DailyHoursRule,
    DataSelector,
    DeviceIdRule,
    DurationRule,
    FrequencyRule,
    NotRule,
    OrRule,
    PeriodicPatternRule,
    RecordCountRule,
    SelectionRule,
    SpatialRangeRule,
    TemporalRangeRule,
)
from .sequence import PositioningSequence
from .stream import (
    RecordStream,
    sequence_stream,
    windowed_records,
    windowed_sequences,
)

__all__ = [
    "CSV_COLUMNS",
    "AndRule",
    "CsvFileSource",
    "DailyHoursRule",
    "DataSelector",
    "DataSource",
    "DeviceIdRule",
    "DurationRule",
    "FrequencyRule",
    "InjectionReport",
    "JsonlFileSource",
    "MemorySource",
    "NotRule",
    "OrRule",
    "PeriodicPatternRule",
    "PositioningSequence",
    "RawPositioningRecord",
    "RecordCountRule",
    "RecordStream",
    "SelectionRule",
    "SpatialRangeRule",
    "TableSource",
    "TemporalRangeRule",
    "inject_dropout",
    "inject_floor_errors",
    "inject_gaussian_noise",
    "inject_outliers",
    "sequence_stream",
    "subsample",
    "windowed_records",
    "windowed_sequences",
    "write_csv",
    "write_jsonl",
]
