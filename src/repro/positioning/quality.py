"""Controlled degradation of positioning sequences.

The cleaning experiments (E-F3a) need sequences with *known* injected
errors: the paper's raw data "is uncertain and discrete in nature due to
the limitations of indoor positioning" (§1).  These utilities corrupt a
clean (e.g. ground-truth) sequence with each error class independently so
benchmarks can sweep one error rate at a time.

Every function is pure and seeded: the input sequence is never mutated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataSourceError
from .record import RawPositioningRecord
from .sequence import PositioningSequence


@dataclass(frozen=True)
class InjectionReport:
    """What an injection pass actually changed, for ground-truth scoring."""

    affected_indexes: tuple[int, ...]
    description: str

    @property
    def count(self) -> int:
        """Number of corrupted records."""
        return len(self.affected_indexes)


def inject_gaussian_noise(
    sequence: PositioningSequence, sigma: float, seed: int = 0
) -> PositioningSequence:
    """Add isotropic Gaussian noise of ``sigma`` metres to every record."""
    if sigma < 0:
        raise DataSourceError(f"sigma must be >= 0, got {sigma}")
    rng = np.random.default_rng(seed)
    noisy: list[RawPositioningRecord] = []
    offsets = rng.normal(0.0, sigma, size=(len(sequence), 2)) if sigma > 0 else None
    for index, record in enumerate(sequence):
        if offsets is None:
            noisy.append(record)
        else:
            dx, dy = offsets[index]
            noisy.append(record.moved(record.location.translate(dx, dy)))
    return sequence.with_records(noisy)


def inject_floor_errors(
    sequence: PositioningSequence,
    rate: float,
    floors: list[int],
    seed: int = 0,
) -> tuple[PositioningSequence, InjectionReport]:
    """Flip the floor value of a ``rate`` fraction of records.

    Each corrupted record gets a uniformly chosen *wrong* floor from
    ``floors``, mimicking the barometer/AP-ambiguity floor misreads that the
    cleaning layer's floor value correction targets.
    """
    _check_rate(rate)
    if len(floors) < 2:
        raise DataSourceError("floor errors need at least two distinct floors")
    rng = np.random.default_rng(seed)
    corrupted: list[RawPositioningRecord] = []
    affected: list[int] = []
    for index, record in enumerate(sequence):
        if rng.random() < rate:
            wrong_choices = [f for f in floors if f != record.floor]
            wrong = int(rng.choice(wrong_choices))
            corrupted.append(record.refloored(wrong))
            affected.append(index)
        else:
            corrupted.append(record)
    report = InjectionReport(tuple(affected), f"floor errors at rate {rate}")
    return sequence.with_records(corrupted), report


def inject_outliers(
    sequence: PositioningSequence,
    rate: float,
    magnitude: float = 30.0,
    seed: int = 0,
) -> tuple[PositioningSequence, InjectionReport]:
    """Teleport a ``rate`` fraction of records by ~``magnitude`` metres.

    Models the multipath "jumps" indoor Wi-Fi positioning produces — the
    speed-constraint violations the cleaning layer detects.
    """
    _check_rate(rate)
    if magnitude <= 0:
        raise DataSourceError(f"magnitude must be positive, got {magnitude}")
    rng = np.random.default_rng(seed)
    corrupted: list[RawPositioningRecord] = []
    affected: list[int] = []
    for index, record in enumerate(sequence):
        if rng.random() < rate:
            angle = rng.uniform(0.0, 2.0 * np.pi)
            distance = magnitude * (0.75 + 0.5 * rng.random())
            moved = record.location.translate(
                distance * np.cos(angle), distance * np.sin(angle)
            )
            corrupted.append(record.moved(moved))
            affected.append(index)
        else:
            corrupted.append(record)
    report = InjectionReport(tuple(affected), f"outliers at rate {rate}")
    return sequence.with_records(corrupted), report


def inject_dropout(
    sequence: PositioningSequence,
    gap_seconds: float,
    gap_count: int = 1,
    seed: int = 0,
) -> tuple[PositioningSequence, InjectionReport]:
    """Delete all records inside ``gap_count`` windows of ``gap_seconds``.

    Produces the discontinuities the complementing layer must repair.
    Windows are placed uniformly at random inside the sequence span without
    touching the first and last records (so the sequence endpoints anchor
    the inference).
    """
    if gap_seconds <= 0:
        raise DataSourceError(f"gap_seconds must be positive, got {gap_seconds}")
    if gap_count < 1:
        raise DataSourceError(f"gap_count must be >= 1, got {gap_count}")
    rng = np.random.default_rng(seed)
    span = sequence.time_range
    dropped: set[int] = set()
    for _ in range(gap_count):
        latest_start = span.end - gap_seconds
        if latest_start <= span.start:
            break
        gap_start = rng.uniform(span.start, latest_start)
        gap_end = gap_start + gap_seconds
        for index, record in enumerate(sequence):
            if index in (0, len(sequence) - 1):
                continue
            if gap_start <= record.timestamp <= gap_end:
                dropped.add(index)
    kept = [r for i, r in enumerate(sequence) if i not in dropped]
    if len(kept) < 2:
        raise DataSourceError("dropout would leave fewer than two records")
    report = InjectionReport(
        tuple(sorted(dropped)),
        f"{gap_count} dropout window(s) of {gap_seconds}s",
    )
    return sequence.with_records(kept), report


def subsample(
    sequence: PositioningSequence, keep_every: int
) -> PositioningSequence:
    """Keep every ``keep_every``-th record (sampling-interval degradation)."""
    if keep_every < 1:
        raise DataSourceError(f"keep_every must be >= 1, got {keep_every}")
    kept = [r for i, r in enumerate(sequence) if i % keep_every == 0]
    if sequence.records[-1] not in kept:
        kept.append(sequence.records[-1])
    return sequence.with_records(kept)


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise DataSourceError(f"rate must be in [0, 1], got {rate}")
