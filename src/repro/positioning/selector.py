"""The Data Selector: configurable, combinable sequence-selection rules.

The paper's Configurator "offers users a set of configurable and combinable
rules to select the (device) positioning sequences of particular interest.
Typical rules include device ID pattern, spatial range, temporal range,
positioning frequency, and periodic pattern" (§2).  Rules compose with
``&``, ``|`` and ``~``; record-level rules also *trim* sequences (a temporal
range keeps only in-window records), while sequence-level rules accept or
reject whole sequences.
"""

from __future__ import annotations

import fnmatch
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import SelectorError
from ..geometry import BoundingBox
from ..timeutil import DAY, TimeRange
from .io import DataSource
from .record import RawPositioningRecord
from .sequence import PositioningSequence


class SelectionRule(ABC):
    """Base class for all Data Selector rules.

    A rule may act at the record level (``keeps_record``), the sequence
    level (``accepts_sequence``), or both.  The defaults keep everything,
    so concrete rules override only the level they care about.
    """

    def keeps_record(self, record: RawPositioningRecord) -> bool:
        """Record-level predicate; True keeps the record."""
        return True

    def accepts_sequence(self, sequence: PositioningSequence) -> bool:
        """Sequence-level predicate; True keeps the whole sequence."""
        return True

    def __and__(self, other: "SelectionRule") -> "SelectionRule":
        return AndRule(self, other)

    def __or__(self, other: "SelectionRule") -> "SelectionRule":
        return OrRule(self, other)

    def __invert__(self) -> "SelectionRule":
        return NotRule(self)


@dataclass
class AndRule(SelectionRule):
    """Both operands must keep the record / accept the sequence."""

    left: SelectionRule
    right: SelectionRule

    def keeps_record(self, record: RawPositioningRecord) -> bool:
        return self.left.keeps_record(record) and self.right.keeps_record(record)

    def accepts_sequence(self, sequence: PositioningSequence) -> bool:
        return self.left.accepts_sequence(sequence) and self.right.accepts_sequence(
            sequence
        )


@dataclass
class OrRule(SelectionRule):
    """Either operand suffices, evaluated per level."""

    left: SelectionRule
    right: SelectionRule

    def keeps_record(self, record: RawPositioningRecord) -> bool:
        return self.left.keeps_record(record) or self.right.keeps_record(record)

    def accepts_sequence(self, sequence: PositioningSequence) -> bool:
        return self.left.accepts_sequence(sequence) or self.right.accepts_sequence(
            sequence
        )


@dataclass
class NotRule(SelectionRule):
    """Logical negation at both levels."""

    inner: SelectionRule

    def keeps_record(self, record: RawPositioningRecord) -> bool:
        return not self.inner.keeps_record(record)

    def accepts_sequence(self, sequence: PositioningSequence) -> bool:
        return not self.inner.accepts_sequence(sequence)


class DeviceIdRule(SelectionRule):
    """Keep records whose device id matches a glob or regular expression.

    Glob is the default (``"3a.*"`` in the paper's walkthrough reads
    naturally as a prefix pattern); pass ``regex=True`` for full regular
    expressions.
    """

    def __init__(self, pattern: str, regex: bool = False):
        if not pattern:
            raise SelectorError("device id pattern must be non-empty")
        self.pattern = pattern
        if regex:
            try:
                self._matcher = re.compile(pattern)
            except re.error as exc:
                raise SelectorError(f"bad device id regex {pattern!r}: {exc}") from exc
        else:
            self._matcher = re.compile(fnmatch.translate(pattern))

    def keeps_record(self, record: RawPositioningRecord) -> bool:
        return self._matcher.match(record.device_id) is not None


class SpatialRangeRule(SelectionRule):
    """Keep records inside a planar box, optionally on specific floors.

    "one can select the positioning sequences that ... appear on the ground
    floor in the target indoor space" (§2).
    """

    def __init__(self, bounds: BoundingBox | None = None, floors: list[int] | None = None):
        if bounds is None and floors is None:
            raise SelectorError("spatial rule needs bounds and/or floors")
        self.bounds = bounds
        self.floors = set(floors) if floors is not None else None

    def keeps_record(self, record: RawPositioningRecord) -> bool:
        if self.floors is not None and record.floor not in self.floors:
            return False
        if self.bounds is not None and not self.bounds.contains_point(
            record.location
        ):
            return False
        return True


class TemporalRangeRule(SelectionRule):
    """Keep records inside an absolute time window."""

    def __init__(self, window: TimeRange):
        self.window = window

    def keeps_record(self, record: RawPositioningRecord) -> bool:
        return self.window.contains(record.timestamp)


class DailyHoursRule(SelectionRule):
    """Keep records whose time-of-day falls in ``[open, close]`` seconds.

    This is the walkthrough's "only appear during the mall's operating
    hours 10:00 AM - 10:00 PM" selection applied to multi-day data.
    """

    def __init__(self, open_seconds: float, close_seconds: float):
        if not 0 <= open_seconds < close_seconds <= DAY:
            raise SelectorError(
                f"invalid daily hours [{open_seconds}, {close_seconds}]"
            )
        self.open_seconds = open_seconds
        self.close_seconds = close_seconds

    def keeps_record(self, record: RawPositioningRecord) -> bool:
        day_time = record.timestamp % DAY
        return self.open_seconds <= day_time <= self.close_seconds


class DurationRule(SelectionRule):
    """Accept sequences lasting at least / at most the given seconds.

    "one can select the positioning sequences that last for more than one
    hour" (§2).
    """

    def __init__(self, min_seconds: float = 0.0, max_seconds: float = float("inf")):
        if min_seconds < 0 or max_seconds < min_seconds:
            raise SelectorError(
                f"invalid duration bounds [{min_seconds}, {max_seconds}]"
            )
        self.min_seconds = min_seconds
        self.max_seconds = max_seconds

    def accepts_sequence(self, sequence: PositioningSequence) -> bool:
        return self.min_seconds <= sequence.duration <= self.max_seconds


class FrequencyRule(SelectionRule):
    """Accept sequences by positioning frequency (records per minute)."""

    def __init__(
        self, min_per_minute: float = 0.0, max_per_minute: float = float("inf")
    ):
        if min_per_minute < 0 or max_per_minute < min_per_minute:
            raise SelectorError(
                f"invalid frequency bounds [{min_per_minute}, {max_per_minute}]"
            )
        self.min_per_minute = min_per_minute
        self.max_per_minute = max_per_minute

    def accepts_sequence(self, sequence: PositioningSequence) -> bool:
        return self.min_per_minute <= sequence.frequency <= self.max_per_minute


class RecordCountRule(SelectionRule):
    """Accept sequences with at least / at most the given record count."""

    def __init__(self, min_records: int = 1, max_records: int | None = None):
        if min_records < 1 or (max_records is not None and max_records < min_records):
            raise SelectorError(
                f"invalid record count bounds [{min_records}, {max_records}]"
            )
        self.min_records = min_records
        self.max_records = max_records

    def accepts_sequence(self, sequence: PositioningSequence) -> bool:
        count = len(sequence)
        if count < self.min_records:
            return False
        return self.max_records is None or count <= self.max_records


class PeriodicPatternRule(SelectionRule):
    """Accept devices that reappear periodically.

    The device must be present (have at least one record) in at least
    ``min_periods`` distinct periods of ``period_seconds`` (default: days).
    This captures the paper's "periodic pattern" rule — e.g. mall staff who
    show up every day versus one-off visitors.
    """

    def __init__(self, min_periods: int, period_seconds: float = DAY):
        if min_periods < 1:
            raise SelectorError(f"min_periods must be >= 1, got {min_periods}")
        if period_seconds <= 0:
            raise SelectorError(
                f"period_seconds must be positive, got {period_seconds}"
            )
        self.min_periods = min_periods
        self.period_seconds = period_seconds

    def accepts_sequence(self, sequence: PositioningSequence) -> bool:
        periods = {int(t // self.period_seconds) for t in sequence.timestamps}
        return len(periods) >= self.min_periods


class DataSelector:
    """Applies a rule tree to one or more data sources.

    ``select`` streams records from every source, drops records the rule's
    record-level predicates reject, groups the survivors into per-device
    sequences (optionally splitting on long gaps so separate visits become
    separate sequences), and finally applies the sequence-level predicates.
    """

    def __init__(
        self,
        sources: list[DataSource],
        rule: SelectionRule | None = None,
        visit_gap: float | None = None,
    ):
        if not sources:
            raise SelectorError("DataSelector needs at least one source")
        self.sources = list(sources)
        self.rule = rule
        self.visit_gap = visit_gap

    def select(self) -> list[PositioningSequence]:
        """The selected positioning sequences, in device order."""
        kept: list[RawPositioningRecord] = []
        for source in self.sources:
            for record in source.iter_records():
                if self.rule is None or self.rule.keeps_record(record):
                    kept.append(record)
        if not kept:
            return []
        sequences = PositioningSequence.group_records(kept)
        if self.visit_gap is not None:
            split: list[PositioningSequence] = []
            for sequence in sequences:
                split.extend(sequence.split_on_gaps(self.visit_gap))
            sequences = split
        if self.rule is not None:
            sequences = [
                s for s in sequences if self.rule.accepts_sequence(s)
            ]
        return sequences

    def count_records(self) -> int:
        """Total records across sources, before any filtering."""
        return sum(1 for source in self.sources for _ in source.iter_records())
