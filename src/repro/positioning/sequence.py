"""Per-device positioning sequences.

The Translator "takes each individual positioning sequence as input"
(paper §3): a time-ordered list of one device's raw records.  The class here
is an immutable value object with the temporal/spatial accessors every layer
needs, plus gap splitting and time slicing for the Data Selector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import DataSourceError
from ..geometry import BoundingBox, Point
from ..timeutil import TimeRange
from .record import RawPositioningRecord


@dataclass(frozen=True)
class PositioningSequence:
    """A time-ordered sequence of one device's positioning records."""

    device_id: str
    records: tuple[RawPositioningRecord, ...]

    def __init__(
        self, device_id: str, records: list[RawPositioningRecord] | tuple
    ):
        records = tuple(sorted(records, key=lambda r: r.timestamp))
        if not records:
            raise DataSourceError(f"empty sequence for device {device_id!r}")
        for record in records:
            if record.device_id != device_id:
                raise DataSourceError(
                    f"record of device {record.device_id!r} in sequence of "
                    f"{device_id!r}"
                )
        object.__setattr__(self, "device_id", device_id)
        object.__setattr__(self, "records", records)

    @classmethod
    def group_records(
        cls, records: list[RawPositioningRecord]
    ) -> list["PositioningSequence"]:
        """Group a mixed record batch into per-device sequences.

        Sequences are returned in device-id order, which keeps downstream
        batch translation deterministic.
        """
        by_device: dict[str, list[RawPositioningRecord]] = {}
        for record in records:
            by_device.setdefault(record.device_id, []).append(record)
        return [cls(device, recs) for device, recs in sorted(by_device.items())]

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[RawPositioningRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> RawPositioningRecord:
        return self.records[index]

    @property
    def points(self) -> list[Point]:
        """All record locations in time order."""
        return [r.location for r in self.records]

    @property
    def timestamps(self) -> list[float]:
        """All record timestamps in time order."""
        return [r.timestamp for r in self.records]

    @property
    def time_range(self) -> TimeRange:
        """Closed interval from first to last record."""
        return TimeRange(self.records[0].timestamp, self.records[-1].timestamp)

    @property
    def duration(self) -> float:
        """Elapsed seconds between first and last record."""
        return self.time_range.duration

    @property
    def floors_visited(self) -> list[int]:
        """Distinct reported floors in ascending order."""
        return sorted({r.floor for r in self.records})

    @property
    def bounds(self) -> BoundingBox:
        """Planar bounding box over all records."""
        return BoundingBox.around(self.points)

    @property
    def mean_interval(self) -> float:
        """Mean seconds between consecutive records (0 for singletons)."""
        if len(self.records) < 2:
            return 0.0
        return self.duration / (len(self.records) - 1)

    @property
    def frequency(self) -> float:
        """Positioning frequency in records per minute.

        This is the quantity the paper's Data Selector filters on
        ("positioning frequency" rule).
        """
        if self.duration <= 0.0:
            return float(len(self.records)) * 60.0
        return len(self.records) / self.duration * 60.0

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_records(
        self, records: list[RawPositioningRecord]
    ) -> "PositioningSequence":
        """A new sequence for the same device with different records."""
        return PositioningSequence(self.device_id, records)

    def slice_time(self, window: TimeRange) -> "PositioningSequence | None":
        """Records falling inside ``window``, or None when empty."""
        kept = [r for r in self.records if window.contains(r.timestamp)]
        if not kept:
            return None
        return self.with_records(kept)

    def slice_index(self, start: int, stop: int) -> "PositioningSequence":
        """Records by positional range ``[start, stop)``."""
        kept = list(self.records[start:stop])
        if not kept:
            raise DataSourceError("index slice selected no records")
        return self.with_records(kept)

    def split_on_gaps(self, max_gap: float) -> list["PositioningSequence"]:
        """Split where consecutive records are more than ``max_gap`` apart.

        Devices that leave the building and return later produce one
        sequence per visit; the Data Selector applies this before
        sequence-level rules.
        """
        if max_gap <= 0:
            raise DataSourceError(f"max_gap must be positive, got {max_gap}")
        pieces: list[PositioningSequence] = []
        current: list[RawPositioningRecord] = [self.records[0]]
        for prev, record in zip(self.records, self.records[1:]):
            if record.timestamp - prev.timestamp > max_gap:
                pieces.append(self.with_records(current))
                current = []
            current.append(record)
        pieces.append(self.with_records(current))
        return pieces

    def gaps_longer_than(self, threshold: float) -> list[TimeRange]:
        """Inter-record gaps exceeding ``threshold`` seconds."""
        found = []
        for prev, record in zip(self.records, self.records[1:]):
            if record.timestamp - prev.timestamp > threshold:
                found.append(TimeRange(prev.timestamp, record.timestamp))
        return found

    def __str__(self) -> str:
        return (
            f"sequence({self.device_id}: {len(self.records)} records, "
            f"{self.duration:.0f}s, floors {self.floors_visited})"
        )
