"""Positioning data sources: text files, tables and streams.

The Data Selector "accepts the indoor positioning data from multi-sources
(e.g., text files, database tables, and streams APIs)" (paper §2).  Every
source implements the one-method :class:`DataSource` protocol so the
selector can consume them uniformly; CSV and JSON-lines files cover the
text formats, :class:`TableSource` adapts row tuples from any DB cursor,
and :mod:`repro.positioning.stream` adds the streaming API.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator, Protocol, Sequence

from ..errors import DataSourceError
from ..geometry import Point
from .record import RawPositioningRecord

#: Canonical CSV column order.
CSV_COLUMNS = ("device_id", "x", "y", "floor", "timestamp")


class DataSource(Protocol):
    """Anything that can yield raw positioning records."""

    def iter_records(self) -> Iterator[RawPositioningRecord]:
        """Yield records in source order (not necessarily time order)."""
        ...


class MemorySource:
    """An in-memory record batch, mostly for tests and simulation output."""

    def __init__(self, records: Iterable[RawPositioningRecord]):
        self._records = list(records)

    def iter_records(self) -> Iterator[RawPositioningRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)


class CsvFileSource:
    """Reads ``device_id,x,y,floor,timestamp`` CSV files (with header)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def iter_records(self) -> Iterator[RawPositioningRecord]:
        try:
            with open(self.path, newline="", encoding="utf-8") as handle:
                reader = csv.DictReader(handle)
                missing = set(CSV_COLUMNS) - set(reader.fieldnames or ())
                if missing:
                    raise DataSourceError(
                        f"{self.path}: missing CSV columns {sorted(missing)}"
                    )
                for line_number, row in enumerate(reader, start=2):
                    yield _record_from_row(row, f"{self.path}:{line_number}")
        except OSError as exc:
            raise DataSourceError(f"cannot read {self.path}: {exc}") from exc


class JsonlFileSource:
    """Reads JSON-lines files with one record object per line."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def iter_records(self) -> Iterator[RawPositioningRecord]:
        try:
            with open(self.path, encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        data = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise DataSourceError(
                            f"{self.path}:{line_number}: malformed JSON: {exc}"
                        ) from exc
                    yield _record_from_row(data, f"{self.path}:{line_number}")
        except OSError as exc:
            raise DataSourceError(f"cannot read {self.path}: {exc}") from exc


class TableSource:
    """Adapts database-style row tuples ``(device_id, x, y, floor, ts)``.

    Accepts any iterable of sequences — a DB-API cursor, a list of tuples,
    a generator — which is how TRIPS would sit on top of a positioning
    table.
    """

    def __init__(self, rows: Iterable[Sequence]):
        self._rows = rows

    def iter_records(self) -> Iterator[RawPositioningRecord]:
        for index, row in enumerate(self._rows):
            if len(row) != 5:
                raise DataSourceError(
                    f"table row {index} has {len(row)} fields, expected 5"
                )
            device_id, x, y, floor, timestamp = row
            yield _make_record(device_id, x, y, floor, timestamp, f"row {index}")


def _record_from_row(row: dict, context: str) -> RawPositioningRecord:
    try:
        return _make_record(
            row["device_id"], row["x"], row["y"], row["floor"], row["timestamp"],
            context,
        )
    except KeyError as exc:
        raise DataSourceError(f"{context}: missing field {exc}") from exc


def _make_record(
    device_id, x, y, floor, timestamp, context: str
) -> RawPositioningRecord:
    try:
        return RawPositioningRecord(
            timestamp=float(timestamp),
            device_id=str(device_id),
            location=Point(float(x), float(y), int(floor)),
        )
    except (TypeError, ValueError) as exc:
        raise DataSourceError(f"{context}: bad record fields: {exc}") from exc


def write_csv(records: Iterable[RawPositioningRecord], path: str | Path) -> int:
    """Write records to CSV; returns the count written."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_COLUMNS)
        for record in records:
            writer.writerow(
                (
                    record.device_id,
                    f"{record.location.x:.4f}",
                    f"{record.location.y:.4f}",
                    record.floor,
                    f"{record.timestamp:.3f}",
                )
            )
            count += 1
    return count


def write_jsonl(records: Iterable[RawPositioningRecord], path: str | Path) -> int:
    """Write records to JSON-lines; returns the count written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(
                json.dumps(
                    {
                        "device_id": record.device_id,
                        "x": record.location.x,
                        "y": record.location.y,
                        "floor": record.floor,
                        "timestamp": record.timestamp,
                    }
                )
            )
            handle.write("\n")
            count += 1
    return count
