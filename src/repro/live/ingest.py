"""Asyncio ingestion front-end: bounded queues over blocking feeds.

:class:`~repro.positioning.RecordStream` is pull-based and blocking — a
network feed parks the reader until records arrive.  The front-end here
turns one or more such feeds into a windowed producer/consumer pipeline:

- one **producer** task per feed cuts time/count-bounded windows off the
  feed in a worker thread (``asyncio.to_thread``), so a slow feed never
  stalls the event loop;
- cut windows queue onto one bounded :class:`asyncio.Queue`
  (``LiveConfig.max_pending_windows`` deep).  When translation falls
  behind, ``put`` blocks the producers — **backpressure**: in-flight
  memory is bounded by queue depth × window size, never by feed length;
- one **consumer** task pops windows in arrival order and runs the
  (blocking, pool-backed) window translation off the event loop.

Tagged feeds (``{venue_id: RecordStream}``) skip per-record routing —
every window carries its venue id; a single untagged feed is routed
record by record through the service's dispatcher.  A consumer failure
(e.g. a record routed to an unknown venue) cancels the producers instead
of deadlocking them against a full queue.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import TYPE_CHECKING, Callable, Mapping, Union

from ..positioning import RawPositioningRecord, RecordStream
from ..telemetry import get_registry

if TYPE_CHECKING:  # pragma: no cover
    from .service import LiveStats, LiveTranslationService, LiveWindowResult

#: What :meth:`LiveTranslationService.serve` accepts: one untagged feed
#: (dispatcher-routed) or a map of venue-tagged feeds.
FeedSet = Union[RecordStream, Mapping[str, RecordStream]]

#: End-of-feeds marker on the window queue.
_SENTINEL = None


def _as_feed_map(
    feeds: FeedSet,
) -> "dict[str | None, RecordStream]":
    """Normalize to ``{venue_id_or_None: stream}``."""
    if isinstance(feeds, RecordStream):
        return {None: feeds}
    if not feeds:
        from ..errors import DispatchError

        raise DispatchError("serve() needs at least one feed")
    return dict(feeds)


async def serve_async(
    service: "LiveTranslationService",
    feeds: FeedSet,
    on_window: "Callable[[LiveWindowResult], None] | None" = None,
) -> "LiveStats":
    """Run feeds to exhaustion through the windowed ingestion pipeline."""
    config = service.live_config
    queue: "asyncio.Queue" = asyncio.Queue(maxsize=config.max_pending_windows)
    feed_map = _as_feed_map(feeds)
    registry = get_registry()
    depth_gauge = registry.gauge("trips_live_queue_depth")

    async def produce(venue_id: "str | None", stream: RecordStream) -> None:
        while True:
            # Bounds are re-read per window: adaptive windowing tightens
            # a venue's record bound as its observed feed rate evolves.
            window_seconds, max_records = service.window_bounds(venue_id)
            cut_started = time.perf_counter()
            batch: list[RawPositioningRecord] = await asyncio.to_thread(
                stream.take_window,
                window_seconds,
                max_records,
            )
            if registry.enabled:
                registry.histogram("trips_live_window_cut_seconds").observe(
                    time.perf_counter() - cut_started
                )
            if not batch:
                return
            # Time spent parked on a full queue is the backpressure the
            # bounded ingestion pipeline exists to apply — worth a series
            # of its own.
            put_started = time.perf_counter()
            await queue.put((venue_id, batch))
            if registry.enabled:
                registry.histogram("trips_live_backpressure_seconds").observe(
                    time.perf_counter() - put_started
                )
                depth_gauge.set(queue.qsize())

    async def consume() -> None:
        while True:
            item = await queue.get()
            depth_gauge.set(queue.qsize())
            if item is _SENTINEL:
                return
            venue_id, records = item
            window = await asyncio.to_thread(
                service.process_window, records, venue_id
            )
            if on_window is not None:
                on_window(window)

    producer_tasks = [
        asyncio.create_task(produce(vid, stream))
        for vid, stream in feed_map.items()
    ]
    producers = asyncio.ensure_future(asyncio.gather(*producer_tasks))
    consumer = asyncio.create_task(consume())

    async def cancel_producers() -> None:
        # gather() with the default return_exceptions=False completes on
        # the first failure but leaves sibling tasks running — cancel the
        # individual tasks, not the (already done) gather future.
        for task in producer_tasks:
            task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await asyncio.gather(*producer_tasks, return_exceptions=True)

    await asyncio.wait(
        {producers, consumer}, return_when=asyncio.FIRST_COMPLETED
    )
    if consumer.done():
        # The consumer only returns on the sentinel, which has not been
        # sent yet — it must have failed.  Unblock and stop the
        # producers, then surface the failure.
        await cancel_producers()
        consumer.result()
        return service.stats  # pragma: no cover - defensive
    try:
        producers.result()
    except BaseException as failure:
        # One feed failed: stop the siblings before re-raising, or they
        # would block forever on a full queue once the consumer exits.
        # The consumer still drains queued windows; if that drain *also*
        # fails, the producer's failure stays the one raised — the drain
        # error is chained as its context instead of replacing it.
        await cancel_producers()
        try:
            await queue.put(_SENTINEL)
            await consumer
        except BaseException as drain_failure:
            if failure.__context__ is None:
                failure.__context__ = drain_failure
        raise
    await queue.put(_SENTINEL)
    await consumer
    return service.stats
