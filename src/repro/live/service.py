"""The live translation service: windowed, incremental, multi-building.

One :class:`LiveTranslationService` owns a single warm worker pool (one
:class:`~repro.engine.backends.ExecutionBackend`, opened once with the
full venue map) and one per-venue :class:`~repro.engine.Engine` mapped
onto it.  Each incoming window of records is routed per venue, grouped
into per-device sequences, pushed through the engine's incremental path
(:meth:`~repro.engine.Engine.translate_increment`) and **folded** into
that venue's long-running :class:`~repro.core.complementing.MobilityKnowledge`
— no knowledge rebuild, ever.  The per-window output is an ordinary
:class:`~repro.core.translator.BatchTranslationResult` per venue; the
service additionally accumulates cumulative :class:`LiveStats`.

Live versus batch semantics
---------------------------

Per-window complements are inferred against the knowledge *as of that
window* — that is what "live" means; early windows see less evidence.
Knowledge folding itself is exact, so under the default unbounded
retention, once a finite stream has been fully replayed the cumulative
knowledge is bit-for-bit identical to a one-shot batch build over the
same windowed sequences, and :meth:`finalize` re-complements every
retained window against it — reproducing exactly what
``Engine.translate_batch`` over those sequences would have returned.

Knowledge lifecycle
-------------------

Each venue's knowledge lives in a
:class:`~repro.knowledge.KnowledgeStore`; every ingestion window is one
*epoch* — the service rolls the venue's store after folding the window —
and the store's retention policy (``EngineConfig.retention``, or the
service's per-venue ``retention`` override) decides what the prior keeps
remembering: everything (unbounded, the default), only the newest epochs
(sliding window, retired by exact subtraction), or a recency-weighted
decay.  ``VenueStats.retained_epochs`` reports the lifecycle state per
venue.

Adaptive windowing
------------------

With ``LiveConfig.adaptive_windowing`` (off by default) the service
keeps an EWMA of each venue's observed records/sec and derives a
per-venue ``max_window_records`` target from it, so a quiet office and a
busy mall both keep their windows near the configured time span without
one burst growing a window without bound.  The ingestion front-end and
:meth:`run_stream` consult :meth:`window_bounds` per window.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping

from ..core.complementing import MobilityKnowledge
from ..core.translator import (
    BatchTranslationResult,
    TranslationResult,
    Translator,
    assemble_results,
)
from ..engine import Engine, EngineConfig, ExecutionBackend, create_backend
from ..errors import ConfigError
from ..knowledge import KnowledgeStore, RetentionPolicy, parse_retention
from ..positioning import (
    PositioningSequence,
    RawPositioningRecord,
    RecordStream,
)
from ..telemetry import get_registry
from ..durability import (
    DurableStateJournal,
    decode,
    decode_records,
    encode,
    encode_records,
    encode_retention,
)
from ..errors import PersistenceError
from .dispatch import Router, VenueDispatcher
from .ingest import FeedSet, serve_async

#: Adaptive windowing never drives a venue's record target below this —
#: a near-idle venue still gets meaningful batches.
ADAPTIVE_MIN_RECORDS = 8

#: Headroom over the EWMA-predicted records-per-window, so the count
#: bound only closes a window on genuine bursts, not ordinary jitter.
ADAPTIVE_HEADROOM = 2.0


@dataclass(frozen=True)
class LiveConfig:
    """Windowing and ingestion knobs of the live service."""

    #: Time span of one ingestion window.
    window_seconds: float = 300.0
    #: Optional per-window record bound (whichever bound closes first).
    max_window_records: int | None = None
    #: Bounded ingestion queue depth: at most this many cut windows wait
    #: for translation before the feed readers block (backpressure).
    max_pending_windows: int = 4
    #: Keep every window's per-device results for :meth:`finalize` /
    #: viewer construction.  Disable for truly unbounded feeds, where
    #: only per-window emissions and the folded knowledge are retained.
    retain_results: bool = True
    #: Derive a per-venue ``max_window_records`` target from an EWMA of
    #: each venue's observed records/sec (see the module notes).  Off by
    #: default: adaptive cuts change the windowed sequence split, so the
    #: finalize-equals-batch check against a *fixed* windowing no longer
    #: applies verbatim.
    adaptive_windowing: bool = False
    #: EWMA smoothing for the observed feed rate (1.0 = latest window
    #: only, smaller = smoother).
    adaptive_alpha: float = 0.25
    #: Durable-state checkpoint cadence: with a ``state_dir`` configured,
    #: the service writes a full :class:`~repro.knowledge.KnowledgeStore`
    #: snapshot (and truncates the WAL) every this many windows.  Smaller
    #: = faster recovery, more checkpoint I/O per window.
    snapshot_interval: int = 16

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ConfigError(
                f"window_seconds must be positive, got {self.window_seconds}"
            )
        if self.max_window_records is not None and self.max_window_records < 1:
            raise ConfigError(
                f"max_window_records must be >= 1, got "
                f"{self.max_window_records}"
            )
        if self.max_pending_windows < 1:
            raise ConfigError(
                f"max_pending_windows must be >= 1, got "
                f"{self.max_pending_windows}"
            )
        if not 0.0 < self.adaptive_alpha <= 1.0:
            raise ConfigError(
                f"adaptive_alpha must be in (0, 1], got "
                f"{self.adaptive_alpha}"
            )
        if self.snapshot_interval < 1:
            raise ConfigError(
                f"snapshot_interval must be >= 1 windows, got "
                f"{self.snapshot_interval}"
            )


@dataclass
class VenueStats:
    """Cumulative per-venue counters."""

    venue_id: str
    windows: int = 0
    records: int = 0
    sequences: int = 0
    semantics: int = 0
    #: Sequences currently contributing to the venue's knowledge (a
    #: decayed float weight under decay retention; drops when a sliding
    #: window retires epochs).
    knowledge_sequences: "int | float" = 0
    #: Wall time spent translating (and folding/retiring) this venue's
    #: windows.
    translate_seconds: float = 0.0
    #: Epochs still contributing to the venue's knowledge (ring length
    #: under sliding-window retention; every epoch ever rolled under
    #: unbounded/decay).
    retained_epochs: int = 0
    #: The adaptive per-venue ``max_window_records`` target (``None``
    #: until adaptive windowing has observed a window).
    window_records_target: int | None = None


@dataclass
class LiveStats:
    """Cumulative service counters across all venues."""

    windows: int = 0
    records: int = 0
    sequences: int = 0
    semantics: int = 0
    #: Wall time spent inside window translation.
    translate_seconds: float = 0.0
    #: Wall time from the first window to the latest one.
    elapsed_seconds: float = 0.0
    #: WAL entry bytes appended by this service's journal (0 without a
    #: configured ``state_dir``).
    wal_bytes: int = 0
    #: Durable snapshots checkpointed by this service's journal.
    snapshots: int = 0
    venues: dict[str, VenueStats] = field(default_factory=dict)

    @property
    def windows_per_second(self) -> float:
        """Sustained window throughput over the service's lifetime."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.windows / self.elapsed_seconds

    @property
    def records_per_second(self) -> float:
        """Sustained record throughput over the service's lifetime."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.records / self.elapsed_seconds

    def format_table(self) -> str:
        """Small fixed-width rendering for CLI / bench output."""
        summary = (
            f"windows={self.windows} records={self.records} "
            f"sequences={self.sequences} semantics={self.semantics} "
            f"({self.windows_per_second:.2f} windows/s, "
            f"{self.records_per_second:,.0f} records/s)"
        )
        if self.wal_bytes or self.snapshots:
            summary += (
                f"  wal={self.wal_bytes:,d}B snapshots={self.snapshots}"
            )
        lines = [summary]
        # The venue column grows with the longest id, so a venue named
        # longer than the 12-character default cannot shear the table.
        width = max([12] + [len(venue_id) for venue_id in self.venues])
        for venue_id in sorted(self.venues):
            venue = self.venues[venue_id]
            line = (
                f"  {venue_id:<{width}} {venue.windows:4d} windows  "
                f"{venue.records:7d} records  {venue.sequences:5d} sequences  "
                f"{venue.semantics:6d} semantics  "
                f"{venue.translate_seconds:6.2f}s translate  "
                f"knowledge over {venue.knowledge_sequences:g} sequences "
                f"({venue.retained_epochs} epochs)"
            )
            if venue.window_records_target is not None:
                line += f"  window<={venue.window_records_target} records"
            lines.append(line)
        return "\n".join(lines)


@dataclass(frozen=True)
class LiveWindowResult:
    """One ingestion window's translation, split per venue."""

    index: int
    venues: dict[str, BatchTranslationResult]
    records: int
    elapsed_seconds: float

    @property
    def sequences(self) -> int:
        """Per-device sequences translated in this window."""
        return sum(len(batch) for batch in self.venues.values())

    @property
    def semantics(self) -> int:
        """Final semantics triplets emitted in this window."""
        return sum(
            batch.total_semantics for batch in self.venues.values()
        )


@dataclass
class _VenueState:
    """Everything the service accumulates for one venue."""

    venue_id: str
    engine: Engine
    #: The venue's knowledge store (epoch ring + live knowledge behind
    #: the configured retention policy); created lazily on the first
    #: window, ``None`` when the venue builds no knowledge at all.
    store: KnowledgeStore | None = None
    #: Whether store creation was attempted (distinguishes "not yet"
    #: from "this venue has knowledge disabled").
    store_checked: bool = False
    #: EWMA of observed records/sec (adaptive windowing).
    ewma_rate: float | None = None
    results: list[TranslationResult] = field(default_factory=list)
    #: Raw per-window record batches, kept only when journaling with
    #: ``retain_results`` — recovery rebuilds :attr:`results` from them
    #: by re-running deterministic phase one.
    batches: "list[list[RawPositioningRecord]]" = field(default_factory=list)
    stats: VenueStats = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.stats is None:
            self.stats = VenueStats(self.venue_id)

    @property
    def knowledge(self) -> MobilityKnowledge | None:
        """The store's live knowledge (``None`` before the first window)."""
        return self.store.knowledge if self.store is not None else None


class LiveTranslationService:
    """Continuous windowed translation over one shared worker pool.

    Construct with ``{venue_id: Translator}`` — one entry per building —
    plus the engine and live configs; then either drive it window by
    window (:meth:`process_window`), replay a finite stream on the
    calling thread (:meth:`run_stream`), or serve one or more feeds
    through the asyncio ingestion front-end (:meth:`serve` /
    :meth:`aserve`).  The worker pool opens lazily on the first window
    and stays warm until :meth:`close`; the service is a context manager.
    """

    def __init__(
        self,
        translators: Mapping[str, Translator] | Translator,
        engine_config: EngineConfig | None = None,
        live_config: LiveConfig | None = None,
        router: Router | None = None,
        retention: "str | RetentionPolicy | Mapping[str, str | RetentionPolicy] | None" = None,
        state_dir: "str | Path | None" = None,
    ):
        if isinstance(translators, Translator):
            translators = {"default": translators}
        self.dispatcher = VenueDispatcher(translators, router=router)
        self.engine_config = (
            engine_config if engine_config is not None else EngineConfig()
        )
        self.live_config = (
            live_config if live_config is not None else LiveConfig()
        )
        # Per-venue knowledge-retention override; falls back to
        # ``EngineConfig.retention`` where unset.  Validated eagerly so a
        # malformed spec fails at construction, not mid-stream.
        if isinstance(retention, Mapping):
            for venue_id, spec in retention.items():
                if venue_id not in self.dispatcher.translators:
                    raise ConfigError(
                        f"retention names unknown venue {venue_id!r}"
                    )
                parse_retention(spec)
            retention = dict(retention)
        else:
            parse_retention(retention)
        self._retention = retention
        self._backend: ExecutionBackend | None = None
        self._states: dict[str, _VenueState] = {}
        self._windows = 0
        self._started: float | None = None
        self._elapsed = 0.0
        self._translate_seconds = 0.0
        # Durable state: a snapshot + WAL journal rooted at ``state_dir``
        # (see :mod:`repro.durability`).  Recovery runs once, on the
        # first open(), after the engines are built.
        self._journal = (
            DurableStateJournal(state_dir) if state_dir is not None else None
        )
        self._recovered = False
        self._since_snapshot = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self) -> "LiveTranslationService":
        """Start the shared pool and bind one engine per venue.

        The backend context is the full venue map, shipped to each
        worker exactly once; every venue's engine then maps its phases
        onto the same warm pool under its own context key.
        """
        if self._backend is not None:
            return self
        backend = create_backend(
            self.engine_config.backend, self.engine_config.workers
        )
        backend.open(dict(self.dispatcher.translators))
        self._backend = backend
        for venue_id in self.dispatcher.venue_ids:
            if venue_id not in self._states:
                engine = Engine(
                    self.dispatcher.translator(venue_id),
                    self.engine_config,
                    backend=backend,
                    context_key=venue_id,
                )
                self._states[venue_id] = _VenueState(venue_id, engine)
            else:
                self._states[venue_id].engine = Engine(
                    self.dispatcher.translator(venue_id),
                    self.engine_config,
                    backend=backend,
                    context_key=venue_id,
                )
        if self._journal is not None:
            if not self._recovered:
                self._journal.open()
                self._recover()
                self._recovered = True
            elif not self._journal.is_open:
                # Re-opened after close(): the on-disk entries are the
                # windows this instance already holds in memory, so the
                # replay list is discarded, and appending continues.
                self._journal.open()
        return self

    def close(self) -> None:
        """Tear the shared pool down; accumulated state is kept."""
        if self._backend is not None:
            self._backend.close()
            self._backend = None
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "LiveTranslationService":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._backend is None:
            self.open()

    # ------------------------------------------------------------------
    # Window processing
    # ------------------------------------------------------------------
    def process_window(
        self,
        records: list[RawPositioningRecord],
        venue_id: str | None = None,
    ) -> LiveWindowResult:
        """Translate one cut window of records.

        With ``venue_id`` the whole window belongs to one tagged feed;
        otherwise the dispatcher routes each record.  Per venue, the
        window's records group into per-device sequences, run through the
        incremental engine path, and the window's knowledge shard folds
        into the venue's knowledge store.  Every window is one **epoch**:
        after the fold the venue's store rolls, and its retention policy
        may retire or discount old epochs (default unbounded retention
        retires nothing — the pre-lifecycle behaviour, bit for bit).
        """
        self._ensure_open()
        registry = get_registry()
        started = time.perf_counter()
        if self._started is None:
            self._started = started
        if venue_id is not None:
            self.dispatcher.translator(venue_id)  # validate the tag
            routed = {venue_id: records} if records else {}
        else:
            routed = self.dispatcher.split(records)

        window_batches: dict[str, BatchTranslationResult] = {}
        journal_venues: list[dict] = []
        for vid, venue_records in routed.items():
            state = self._states[vid]
            sequences = PositioningSequence.group_records(venue_records)
            venue_started = time.perf_counter()
            with registry.trace("live_window", venue=vid):
                if not state.store_checked:
                    self._create_store(state)
                retired: list = []
                if state.store is not None:
                    batch, _ = state.engine.translate_increment(
                        sequences, store=state.store
                    )
                    retired = state.store.roll()  # one epoch per window
                else:
                    batch, _ = state.engine.translate_increment(sequences)
            venue_elapsed = time.perf_counter() - venue_started
            if self.live_config.retain_results:
                state.results.extend(batch.results)
            stats = state.stats
            stats.windows += 1
            stats.records += len(venue_records)
            stats.sequences += len(batch)
            stats.semantics += batch.total_semantics
            stats.translate_seconds += venue_elapsed
            if state.store is not None:
                stats.knowledge_sequences = (
                    state.store.knowledge.sequences_seen
                )
                stats.retained_epochs = state.store.retained_epochs
            if registry.enabled:
                registry.histogram(
                    "trips_live_window_seconds", venue=vid
                ).observe(venue_elapsed)
                registry.counter(
                    "trips_live_records_total", venue=vid
                ).inc(len(venue_records))
                registry.counter(
                    "trips_live_semantics_total", venue=vid
                ).inc(batch.total_semantics)
                if state.store is not None:
                    registry.gauge(
                        "trips_knowledge_retained_epochs", venue=vid
                    ).set(state.store.retained_epochs)
                    registry.gauge(
                        "trips_knowledge_sequences", venue=vid
                    ).set(state.store.knowledge.sequences_seen)
            self._observe_rate(state, venue_records)
            if self._journal is not None:
                if self.live_config.retain_results:
                    state.batches.append(venue_records)
                journal_venues.append(
                    self._journal_venue_entry(
                        state, venue_records, batch, retired, venue_elapsed
                    )
                )
            window_batches[vid] = batch

        finished = time.perf_counter()
        elapsed = finished - started
        self._windows += 1
        self._translate_seconds += elapsed
        self._elapsed = finished - self._started
        if registry.enabled:
            registry.counter("trips_live_windows_total").inc()
        if self._journal is not None:
            self._journal.append_window(
                self._windows - 1, {"venues": journal_venues}
            )
            self._since_snapshot += 1
            if self._since_snapshot >= self.live_config.snapshot_interval:
                self.checkpoint()
        return LiveWindowResult(
            index=self._windows - 1,
            venues=window_batches,
            records=len(records),
            elapsed_seconds=elapsed,
        )

    def _retention_for(self, venue_id: str) -> "str | RetentionPolicy | None":
        """This venue's retention override (``None`` → engine default)."""
        if isinstance(self._retention, Mapping):
            return self._retention.get(venue_id)
        return self._retention

    def _create_store(self, state: _VenueState) -> None:
        """Create one venue's store (or record that it has none).

        When journaling, the store tracks the open epoch's shard even
        under ring-less retention, so every roll's ``last_epoch`` carries
        the window's exact delta — the WAL payload.
        """
        state.store = state.engine.make_store(
            retention=self._retention_for(state.venue_id)
        )
        if state.store is not None and self._journal is not None:
            state.store.track_deltas = True
        state.store_checked = True

    # ------------------------------------------------------------------
    # Durable state (see :mod:`repro.durability`)
    # ------------------------------------------------------------------
    def _journal_venue_entry(
        self,
        state: _VenueState,
        venue_records: list[RawPositioningRecord],
        batch: BatchTranslationResult,
        retired: list,
        venue_elapsed: float,
    ) -> dict:
        """One venue's share of the window's WAL entry.

        The delta is the epoch the roll just closed — bit for bit the
        shard this window folded — plus its data-time span and the
        indices of the epochs retention retired, so replay can validate
        that re-rolling retires exactly what the live run did.  With
        ``retain_results`` the raw record batch rides along, because
        recovery rebuilds the retained results by re-running
        deterministic phase one over it.
        """
        closed = state.store.last_epoch if state.store is not None else None
        return {
            "venue": state.venue_id,
            "records": len(venue_records),
            "sequences": len(batch),
            "semantics": batch.total_semantics,
            "seconds": venue_elapsed,
            "delta": None if closed is None else encode(closed.partial),
            "start": None if closed is None else closed.start,
            "end": None if closed is None else closed.end,
            "retired": [epoch.index for epoch in retired],
            "batch": (
                encode_records(venue_records)
                if self.live_config.retain_results
                else None
            ),
        }

    def checkpoint(self) -> None:
        """Write a full durable snapshot now and truncate the WAL.

        Runs automatically every ``LiveConfig.snapshot_interval`` windows;
        callable directly at any window boundary (the sharded service
        checkpoints each shard right after an exchange round, so rebased
        knowledge — which arrives outside the fold path — becomes
        durable).  No-op without a configured ``state_dir``.
        """
        if self._journal is None:
            return
        venues: dict[str, dict] = {}
        for vid, state in self._states.items():
            venues[vid] = {
                "store": (
                    None if state.store is None else encode(state.store)
                ),
                "store_checked": state.store_checked,
                "stats": {
                    "windows": state.stats.windows,
                    "records": state.stats.records,
                    "sequences": state.stats.sequences,
                    "semantics": state.stats.semantics,
                    "translate_seconds": state.stats.translate_seconds,
                    "window_records_target": (
                        state.stats.window_records_target
                    ),
                },
                "ewma": state.ewma_rate,
                "batches": (
                    [encode_records(batch) for batch in state.batches]
                    if self.live_config.retain_results
                    else None
                ),
            }
        self._journal.write_snapshot(
            self._windows,
            {
                "translate_seconds": self._translate_seconds,
                "elapsed": self._elapsed,
                "venues": venues,
            },
        )
        self._since_snapshot = 0

    def _recover(self) -> None:
        """Restore state from the journal: snapshot, then the WAL tail.

        The snapshot restores each venue's store (codec round-trips are
        bit-for-bit, ``ExactSum`` expansions verbatim) and counters; each
        WAL entry then re-folds its venue deltas and re-rolls — retention
        is deterministic, and the retired epoch indices must match what
        the entry logged, or the log has diverged from the code and
        recovery raises instead of resuming silently wrong.  Retained
        results are rebuilt afterwards by re-running phase one over the
        journaled record batches against the warm pool.
        """
        snapshot, entries = self._journal.load()
        if snapshot is not None:
            self._restore_snapshot(snapshot)
        for entry in entries:
            self._replay_entry(entry)
        self._since_snapshot = len(entries)
        registry = get_registry()
        if registry.enabled:
            registry.gauge("trips_recovery_windows_replayed").set(
                len(entries)
            )
            registry.counter("trips_recoveries_total").inc()
        if self.live_config.retain_results:
            for state in self._states.values():
                for records in state.batches:
                    sequences = PositioningSequence.group_records(records)
                    pairs = state.engine.phase_one(sequences)
                    state.results.extend(
                        assemble_results(sequences, pairs, None)
                    )

    def _restore_snapshot(self, snapshot: dict) -> None:
        self._windows = snapshot["windows"]
        self._translate_seconds = snapshot["translate_seconds"]
        self._elapsed = snapshot["elapsed"]
        for vid, payload in snapshot["venues"].items():
            state = self._states.get(vid)
            if state is None:
                raise PersistenceError(
                    f"snapshot names venue {vid!r}, which this service "
                    "does not serve"
                )
            if payload["store"] is not None:
                store = decode(payload["store"])
                self._check_restored_retention(vid, store)
                store.track_deltas = True
                state.store = store
            state.store_checked = payload["store_checked"]
            counters = payload["stats"]
            state.stats.windows = counters["windows"]
            state.stats.records = counters["records"]
            state.stats.sequences = counters["sequences"]
            state.stats.semantics = counters["semantics"]
            state.stats.translate_seconds = counters["translate_seconds"]
            state.stats.window_records_target = counters[
                "window_records_target"
            ]
            state.ewma_rate = payload["ewma"]
            if state.store is not None:
                state.stats.knowledge_sequences = (
                    state.store.knowledge.sequences_seen
                )
                state.stats.retained_epochs = state.store.retained_epochs
            if self.live_config.retain_results and payload["batches"]:
                state.batches = [
                    decode_records(rows) for rows in payload["batches"]
                ]

    def _check_restored_retention(self, vid: str, store: KnowledgeStore):
        """A restored store must run the policy this service configures.

        Silently adopting a different policy would make the recovered
        run diverge from both the crashed one and a fresh one.
        """
        configured = self._retention_for(vid)
        if configured is None:
            configured = self.engine_config.retention
        if encode_retention(parse_retention(configured)) != encode_retention(
            store.retention
        ):
            raise PersistenceError(
                f"venue {vid!r} was journaled under retention "
                f"{store.retention.name!r} but this service configures "
                f"{parse_retention(configured).name!r}"
            )

    def _replay_entry(self, entry: dict) -> None:
        if entry.get("window") != self._windows:
            raise PersistenceError(
                f"WAL entry for window {entry.get('window')!r} cannot "
                f"follow {self._windows} recovered windows (gap or "
                "duplicate in the log)"
            )
        for payload in entry["venues"]:
            vid = payload["venue"]
            state = self._states.get(vid)
            if state is None:
                raise PersistenceError(
                    f"WAL entry names venue {vid!r}, which this service "
                    "does not serve"
                )
            if not state.store_checked:
                self._create_store(state)
            if payload["delta"] is not None:
                if state.store is None:
                    raise PersistenceError(
                        f"WAL entry carries a knowledge delta for venue "
                        f"{vid!r}, which builds no knowledge"
                    )
                state.store.fold(
                    decode(payload["delta"]),
                    start=payload["start"],
                    end=payload["end"],
                )
                retired = state.store.roll()
                if [e.index for e in retired] != payload["retired"]:
                    raise PersistenceError(
                        f"replaying venue {vid!r} retired epochs "
                        f"{[e.index for e in retired]} where the log "
                        f"recorded {payload['retired']}"
                    )
            stats = state.stats
            stats.windows += 1
            stats.records += payload["records"]
            stats.sequences += payload["sequences"]
            stats.semantics += payload["semantics"]
            stats.translate_seconds += payload["seconds"]
            if state.store is not None:
                stats.knowledge_sequences = (
                    state.store.knowledge.sequences_seen
                )
                stats.retained_epochs = state.store.retained_epochs
            if (
                self.live_config.retain_results
                and payload["batch"] is not None
            ):
                state.batches.append(decode_records(payload["batch"]))
        self._windows += 1
        self._translate_seconds += sum(
            payload["seconds"] for payload in entry["venues"]
        )

    def _observe_rate(
        self, state: _VenueState, venue_records: list[RawPositioningRecord]
    ) -> None:
        """Fold one window's observed feed rate into the venue's EWMA.

        Adaptive windowing: the EWMA of records/sec predicts the records
        one ``window_seconds`` span will carry; double that
        (:data:`ADAPTIVE_HEADROOM`) becomes the venue's
        ``max_window_records`` target, so the count bound only closes a
        window early on genuine bursts.  The rate is measured against the
        configured window span, not the records' own data-time span — a
        burst compressed into a few seconds must not inflate the bound
        meant to contain it (and a window the count bound closed early
        would otherwise report its instantaneous burst rate, raising the
        very bound that just fired).  A configured global
        ``max_window_records`` stays the hard ceiling.
        """
        if not self.live_config.adaptive_windowing or not venue_records:
            return
        rate = len(venue_records) / self.live_config.window_seconds
        alpha = self.live_config.adaptive_alpha
        if state.ewma_rate is None:
            state.ewma_rate = rate
        else:
            state.ewma_rate = alpha * rate + (1.0 - alpha) * state.ewma_rate
        target = max(
            ADAPTIVE_MIN_RECORDS,
            math.ceil(
                state.ewma_rate
                * self.live_config.window_seconds
                * ADAPTIVE_HEADROOM
            ),
        )
        if self.live_config.max_window_records is not None:
            target = min(target, self.live_config.max_window_records)
        state.stats.window_records_target = target

    def window_bounds(
        self, venue_id: str | None = None
    ) -> tuple[float, int | None]:
        """The ``(window_seconds, max_records)`` bounds to cut with next.

        The time span is global; the record bound is the venue's
        adaptive target when adaptive windowing is on and the venue has
        been observed, else the global ``max_window_records``.  Consulted
        per window by :meth:`run_stream` and the asyncio producers.
        """
        config = self.live_config
        max_records = config.max_window_records
        if config.adaptive_windowing and venue_id is not None:
            state = self._states.get(venue_id)
            if state is not None and state.stats.window_records_target:
                max_records = state.stats.window_records_target
        return config.window_seconds, max_records

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def run_stream(
        self,
        stream: RecordStream,
        venue_id: str | None = None,
        on_window: Callable[[LiveWindowResult], None] | None = None,
    ) -> LiveStats:
        """Replay one finite feed window by window on the calling thread.

        The synchronous driver: no asyncio, same windowing and fold
        semantics as :meth:`serve` — including per-venue adaptive window
        bounds, consulted before each cut.  Leaves the service open so
        the caller can :meth:`finalize` against the warm pool.
        """
        self._ensure_open()
        while True:
            window_seconds, max_records = self.window_bounds(venue_id)
            records = stream.take_window(window_seconds, max_records)
            if not records:
                break
            window = self.process_window(records, venue_id)
            if on_window is not None:
                on_window(window)
        return self.stats

    def serve(
        self,
        feeds: FeedSet,
        on_window: Callable[[LiveWindowResult], None] | None = None,
    ) -> LiveStats:
        """Drive the asyncio ingestion front-end to feed exhaustion.

        ``feeds`` is a single (router-dispatched) :class:`RecordStream`
        or a ``{venue_id: RecordStream}`` map of tagged feeds.  Blocking
        convenience wrapper over :meth:`aserve`.
        """
        import asyncio

        return asyncio.run(self.aserve(feeds, on_window=on_window))

    async def aserve(
        self,
        feeds: FeedSet,
        on_window: Callable[[LiveWindowResult], None] | None = None,
    ) -> LiveStats:
        """Async ingestion: windows are cut per feed and queued with
        backpressure (``LiveConfig.max_pending_windows``), translation
        runs off the event loop, and the call returns once every feed is
        exhausted and every queued window translated."""
        self._ensure_open()
        return await serve_async(self, feeds, on_window=on_window)

    # ------------------------------------------------------------------
    # Accumulated state
    # ------------------------------------------------------------------
    @property
    def stats(self) -> LiveStats:
        """Cumulative counters across every processed window."""
        venues = {
            vid: state.stats for vid, state in self._states.items()
        }
        return LiveStats(
            windows=self._windows,
            records=sum(v.records for v in venues.values()),
            sequences=sum(v.sequences for v in venues.values()),
            semantics=sum(v.semantics for v in venues.values()),
            translate_seconds=self._translate_seconds,
            elapsed_seconds=self._elapsed,
            wal_bytes=(
                self._journal.wal.bytes_written
                if self._journal is not None
                else 0
            ),
            snapshots=(
                self._journal.snapshots_written
                if self._journal is not None
                else 0
            ),
            venues=venues,
        )

    def knowledge(self, venue_id: str) -> MobilityKnowledge | None:
        """One venue's live folded knowledge (``None`` before any window
        reached it, or when its complementing layer is off)."""
        self.dispatcher.translator(venue_id)
        state = self._states.get(venue_id)
        return state.knowledge if state is not None else None

    def store(self, venue_id: str) -> KnowledgeStore | None:
        """One venue's knowledge store — live knowledge plus epoch ring
        and retention policy (``None`` under the same conditions as
        :meth:`knowledge`)."""
        self.dispatcher.translator(venue_id)
        state = self._states.get(venue_id)
        return state.store if state is not None else None

    def ensure_store(self, venue_id: str) -> KnowledgeStore | None:
        """Materialize one venue's knowledge store ahead of any window.

        Normally stores are created lazily by the first window that
        reaches a venue; the distributed knowledge exchange
        (:mod:`repro.distributed`) needs them eagerly, so a shard that
        has not yet served a venue can still receive the cluster's
        merged knowledge for it.  Returns the store, or ``None`` when
        the venue builds no knowledge at all (same gate as
        :meth:`knowledge`); idempotent once created.
        """
        self.dispatcher.translator(venue_id)
        self._ensure_open()
        state = self._states[venue_id]
        if not state.store_checked:
            self._create_store(state)
        return state.store

    def results(self, venue_id: str) -> list[TranslationResult]:
        """One venue's retained per-window results, in arrival order."""
        self.dispatcher.translator(venue_id)
        state = self._states.get(venue_id)
        return list(state.results) if state is not None else []

    def viewer_session(self, venue_id: str, device_id: str, **kwargs):
        """A :class:`~repro.viewer.ViewerSession` over one device's
        accumulated live results at one venue — the device's windowed
        translations stitched into a single browsable history."""
        from ..viewer import ViewerSession

        translator = self.dispatcher.translator(venue_id)
        return ViewerSession.from_live(
            translator.model, self.results(venue_id), device_id, **kwargs
        )

    def finalize(self) -> dict[str, BatchTranslationResult]:
        """Batch-equivalent cumulative results per venue.

        Re-complements every retained windowed sequence against the
        venue's *final* cumulative knowledge, on the shared pool.  For a
        finite, fully-replayed stream the returned batches are exactly —
        result for result, knowledge bit for bit — what
        ``Engine.translate_batch`` would produce over the same windowed
        sequences.  Per-window emissions remain the live (knowledge-as-of
        -window) view; this is the consolidated one.
        """
        if not self.live_config.retain_results:
            raise ConfigError(
                "finalize() needs retained results; this service runs "
                "with LiveConfig(retain_results=False)"
            )
        self._ensure_open()
        finalized: dict[str, BatchTranslationResult] = {}
        for venue_id in self.dispatcher.venue_ids:
            state = self._states[venue_id]
            started = time.perf_counter()
            sequences = [result.raw for result in state.results]
            pairs = [
                (result.cleaning, result.annotation)
                for result in state.results
            ]
            complements = None
            if state.knowledge is not None:
                complements = state.engine.complement(
                    [pair[1].sequence for pair in pairs], state.knowledge
                )
            results = assemble_results(sequences, pairs, complements)
            finalized[venue_id] = BatchTranslationResult(
                results,
                state.knowledge,
                time.perf_counter() - started,
                None,
            )
        return finalized
