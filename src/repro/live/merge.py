"""Merging one device's windowed translations into a single viewable one.

The live service emits one :class:`TranslationResult` per device per
window.  The Viewer, however, browses *one* device's full history — raw,
cleaned and semantics timelines side by side — so the windowed results
must be stitched back together.  Windows are disjoint, consecutive time
slices, which makes the merge a concatenation: records and semantics
append in window order, and the cleaning/annotation bookkeeping indexes
(which are positions inside each window's own sequence) shift by the
number of records in the preceding windows.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable

from ..core.annotation import AnnotationResult
from ..core.cleaning import CleaningReport, CleaningResult
from ..core.complementing import ComplementResult
from ..core.semantics import MobilitySemanticsSequence
from ..core.translator import TranslationResult
from ..errors import ViewerError
from ..positioning import PositioningSequence


def merge_device_results(
    results: Iterable[TranslationResult], device_id: str
) -> TranslationResult:
    """Stitch one device's windowed results into a single result.

    ``results`` is any iterable of translation results — typically a
    venue's retained live results, or one finalized batch — possibly
    holding many devices and many windows per device.  Only windows of
    ``device_id`` participate, in the order they appear (the live
    service retains arrival order, which is time order).
    """
    windows = [r for r in results if r.device_id == device_id]
    if not windows:
        raise ViewerError(
            f"no translation results for device {device_id!r}"
        )
    if len(windows) == 1:
        return windows[0]

    raw_records = []
    cleaned_records = []
    report = CleaningReport()
    snippets = []
    skipped_snippets = 0
    original_semantics = []
    final_semantics = []
    gaps_found = gaps_filled = inferred = 0
    complemented = False
    offset = 0
    for window in windows:
        raw_records.extend(window.raw.records)
        cleaned_records.extend(window.cleaned.records)
        window_report = window.cleaning.report
        report.total_records += window_report.total_records
        report.invalid_indexes.extend(
            i + offset for i in window_report.invalid_indexes
        )
        report.floor_corrected.extend(
            i + offset for i in window_report.floor_corrected
        )
        report.interpolated.extend(
            i + offset for i in window_report.interpolated
        )
        report.unrepaired.extend(
            i + offset for i in window_report.unrepaired
        )
        snippets.extend(
            replace(s, start=s.start + offset, end=s.end + offset)
            for s in window.annotation.snippets
        )
        skipped_snippets += window.annotation.skipped_snippets
        original_semantics.extend(window.original_semantics)
        final_semantics.extend(window.semantics)
        if window.complement is not None:
            complemented = True
            gaps_found += window.complement.gaps_found
            gaps_filled += window.complement.gaps_filled
            inferred += window.complement.inferred_semantics
        offset += len(window.raw)

    raw = PositioningSequence(device_id, raw_records)
    cleaned = PositioningSequence(device_id, cleaned_records)
    annotation = AnnotationResult(
        MobilitySemanticsSequence(device_id, original_semantics),
        snippets,
        skipped_snippets,
    )
    complement = None
    if complemented:
        complement = ComplementResult(
            MobilitySemanticsSequence(device_id, final_semantics),
            gaps_found,
            gaps_filled,
            inferred,
        )
    return TranslationResult(
        device_id=device_id,
        raw=raw,
        cleaning=CleaningResult(raw, cleaned, report),
        annotation=annotation,
        complement=complement,
    )
