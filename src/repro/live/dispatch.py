"""Multi-building dispatch: route positioning records to venue translators.

One live service instance serves heterogeneous traffic — a mall feed, an
airport feed and an office feed can share one worker pool — so records
must be routed to the right building's :class:`~repro.core.Translator`.
The :class:`VenueDispatcher` owns that mapping.  Routing happens at
*record* granularity before sequences are formed, so a mixed feed is
split per venue and each venue's records group into per-device sequences
independently (the same device id at two venues never merges).

Routing rules, in order of precedence:

1. an explicit ``venue_id`` passed by the caller (tagged feeds);
2. a custom ``router`` callable ``record -> venue_id``;
3. the default prefix router: device ids of the form ``"<venue>:<id>"``
   route to ``<venue>``;
4. a single-venue dispatcher routes everything to its only venue.

Unknown venue ids raise :class:`~repro.errors.DispatchError` — a live
service must fail loudly on misrouted traffic, not silently drop it.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from ..core.translator import Translator
from ..errors import DispatchError
from ..positioning import RawPositioningRecord

#: Separator of the default ``"<venue>:<device>"`` prefix routing scheme.
VENUE_SEPARATOR = ":"

Router = Callable[[RawPositioningRecord], str]


def prefix_router(separator: str = VENUE_SEPARATOR) -> Router:
    """A router reading the venue id from the device-id prefix."""

    def route(record: RawPositioningRecord) -> str:
        venue_id, found, _ = record.device_id.partition(separator)
        if not found:
            raise DispatchError(
                f"device id {record.device_id!r} carries no "
                f"{separator!r}-separated venue prefix; tag the feed with a "
                "venue id or pass a custom router"
            )
        return venue_id

    return route


class VenueDispatcher:
    """Routes records to per-building translators by venue id."""

    def __init__(
        self,
        translators: Mapping[str, Translator],
        router: Router | None = None,
    ):
        if not translators:
            raise DispatchError("dispatcher needs at least one venue")
        self.translators = dict(translators)
        if router is not None:
            self._router = router
        elif len(self.translators) == 1:
            only = next(iter(self.translators))
            self._router = lambda record: only
        else:
            self._router = prefix_router()

    @property
    def venue_ids(self) -> list[str]:
        """All venue ids, sorted for deterministic iteration."""
        return sorted(self.translators)

    def translator(self, venue_id: str) -> Translator:
        """The translator serving one venue."""
        self._check_venue(venue_id)
        return self.translators[venue_id]

    def route(self, record: RawPositioningRecord) -> str:
        """The venue id one record belongs to."""
        venue_id = self._router(record)
        self._check_venue(venue_id)
        return venue_id

    def split(
        self, records: Iterable[RawPositioningRecord]
    ) -> dict[str, list[RawPositioningRecord]]:
        """Partition a mixed record batch per venue, preserving order.

        The returned dict is keyed in sorted venue order (only venues
        that actually received records appear), so window processing is
        deterministic regardless of feed interleaving.
        """
        routed: dict[str, list[RawPositioningRecord]] = {}
        for record in records:
            routed.setdefault(self.route(record), []).append(record)
        return {venue_id: routed[venue_id] for venue_id in sorted(routed)}

    def _check_venue(self, venue_id: str) -> None:
        if venue_id not in self.translators:
            known = ", ".join(self.venue_ids)
            raise DispatchError(
                f"no translator for venue {venue_id!r} (known: {known})"
            )

    def __len__(self) -> int:
        return len(self.translators)

    def __str__(self) -> str:
        return f"VenueDispatcher({', '.join(self.venue_ids)})"
