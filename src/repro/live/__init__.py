"""Live streaming translation: windowed ingestion over a warm engine pool.

TRIPS is pitched as an online system — positioning records arrive
continuously and the viewer should reflect mobility semantics as they
happen.  This package is that online front half: where
:mod:`repro.engine` translates one finite batch,
:class:`LiveTranslationService` translates a *feed*, indefinitely, with
bounded memory.

How it works
------------

**Windowing.**  Each incoming :class:`~repro.positioning.RecordStream`
is cut into consecutive windows bounded by time
(``LiveConfig.window_seconds``) and optionally by record count
(``LiveConfig.max_window_records``) — whichever bound closes first.
Windows flow through a bounded asyncio queue
(``LiveConfig.max_pending_windows`` deep); when translation falls behind
the feed, the queue fills and the feed readers block, so in-flight
memory stays proportional to queue depth × window size regardless of
feed length (see :mod:`repro.live.ingest`).

**Fold, don't rebuild.**  Every window runs through the engine's
incremental path: phase one (clean + annotate) fans out across the
worker pool, the window's
:class:`~repro.core.complementing.PartialKnowledge` shard **folds** into
the venue's long-running
:class:`~repro.core.complementing.MobilityKnowledge` — an
O(#regions + #edges) merge, never a rebuild — and phase two complements
the window against the cumulative knowledge as of that window.  Folding
is exact (:class:`~repro.core.complementing.ExactSum` dwell totals), so
after a finite stream is fully replayed the cumulative knowledge is
bit-for-bit identical to a one-shot batch build, and
:meth:`LiveTranslationService.finalize` reproduces exactly what
``Engine.translate_batch`` would have returned over the same windowed
sequences.

**Multi-building dispatch.**  One service instance serves heterogeneous
traffic: records route by venue id — tagged feeds, a custom router, or
the ``"<venue>:<device>"`` device-id prefix — to per-building
:class:`~repro.core.Translator`s (:mod:`repro.live.dispatch`), while all
venues share a single worker pool (the backend context is the venue map,
shipped once; per-window knowledge travels through the backend's
generation-keyed share channel).

**Knowledge lifecycle.**  Each venue's knowledge lives in a
:class:`~repro.knowledge.KnowledgeStore`; every ingestion window is one
epoch, and the store's retention policy (``EngineConfig.retention`` or a
per-venue override) decides what the prior remembers — everything
(unbounded, the default), only the newest epochs (sliding window,
retired by the shard algebra's exact inverse), or recency-weighted decay.
With ``LiveConfig.adaptive_windowing`` the service additionally derives
a per-venue ``max_window_records`` target from an EWMA of each venue's
observed feed rate.

Quickstart::

    from repro import LiveConfig, LiveTranslationService, Translator
    from repro.positioning import RecordStream

    service = LiveTranslationService(
        {"mall": Translator(mall), "airport": Translator(airport)},
        live_config=LiveConfig(window_seconds=600.0),
    )
    with service:
        stats = service.serve({"mall": mall_feed, "airport": airport_feed})
        consolidated = service.finalize()
"""

from .dispatch import VENUE_SEPARATOR, Router, VenueDispatcher, prefix_router
from .ingest import FeedSet, serve_async
from .merge import merge_device_results
from .service import (
    LiveConfig,
    LiveStats,
    LiveTranslationService,
    LiveWindowResult,
    VenueStats,
)

__all__ = [
    "FeedSet",
    "LiveConfig",
    "LiveStats",
    "LiveTranslationService",
    "LiveWindowResult",
    "Router",
    "VENUE_SEPARATOR",
    "VenueDispatcher",
    "VenueStats",
    "merge_device_results",
    "prefix_router",
    "serve_async",
]
