"""Mobility simulator (substrate S6).

Vita-style synthetic indoor mobility: agent profiles, DSM-constrained
movement, the Wi-Fi positioning error model, and devices with aligned
ground truth / raw data / ground-truth semantics.
"""

from .movement import MovementSimulator
from .profiles import (
    BROWSER,
    PROFILE_PRESETS,
    SHOPPER,
    STAFF,
    TRAVELER,
    WORKER,
    AgentProfile,
)
from .simulator import (
    MobilitySimulator,
    SimulatedDevice,
    SimulationConfig,
)
from .wifi import PERFECT_CHANNEL, WifiErrorModel

__all__ = [
    "BROWSER",
    "PERFECT_CHANNEL",
    "PROFILE_PRESETS",
    "SHOPPER",
    "STAFF",
    "TRAVELER",
    "WORKER",
    "AgentProfile",
    "MobilitySimulator",
    "MovementSimulator",
    "SimulatedDevice",
    "SimulationConfig",
    "WifiErrorModel",
]
