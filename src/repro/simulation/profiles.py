"""Agent behavior profiles for the mobility simulator.

Each profile shapes how a simulated device moves: how many regions it
visits, how long it dwells, how fast it walks, and which region categories
attract it.  The presets cover the paper's three motivating environments
(mall shoppers, office workers, airport travelers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError


@dataclass(frozen=True)
class AgentProfile:
    """Behavioral parameters of one simulated device class."""

    name: str
    #: Inclusive range of target regions visited per session.
    visits: tuple[int, int] = (3, 6)
    #: Stay duration range in seconds at each visited region.
    stay_duration: tuple[float, float] = (180.0, 900.0)
    #: Walking speed range in m/s.
    walk_speed: tuple[float, float] = (0.9, 1.5)
    #: Category -> preference weight when choosing target regions.
    category_weights: dict[str, float] = field(
        default_factory=lambda: {"shop": 1.0}
    )
    #: Probability that a chosen target sits on a different floor.
    floor_change_bias: float = 0.3

    def __post_init__(self) -> None:
        if self.visits[0] < 1 or self.visits[1] < self.visits[0]:
            raise SimulationError(f"invalid visits range {self.visits}")
        if self.stay_duration[0] <= 0 or self.stay_duration[1] < self.stay_duration[0]:
            raise SimulationError(
                f"invalid stay duration range {self.stay_duration}"
            )
        if self.walk_speed[0] <= 0 or self.walk_speed[1] < self.walk_speed[0]:
            raise SimulationError(f"invalid walk speed range {self.walk_speed}")
        if not self.category_weights:
            raise SimulationError("profile needs at least one category weight")
        if not 0.0 <= self.floor_change_bias <= 1.0:
            raise SimulationError("floor_change_bias must be in [0, 1]")


#: A typical mall shopper: several shops, medium dwells, cashier at the end.
SHOPPER = AgentProfile(
    name="shopper",
    visits=(3, 7),
    stay_duration=(240.0, 1200.0),
    walk_speed=(0.9, 1.4),
    category_weights={"shop": 3.0, "food": 1.0, "cashier": 0.4,
                      "entertainment": 0.6},
    floor_change_bias=0.35,
)

#: A window browser: many short visits, rarely buys.
BROWSER = AgentProfile(
    name="browser",
    visits=(5, 10),
    stay_duration=(60.0, 300.0),
    walk_speed=(1.0, 1.6),
    category_weights={"shop": 2.0, "food": 0.5, "entertainment": 1.0},
    floor_change_bias=0.5,
)

#: Mall staff: few regions, very long dwells (their own unit).
STAFF = AgentProfile(
    name="staff",
    visits=(1, 2),
    stay_duration=(3600.0, 14400.0),
    walk_speed=(1.1, 1.6),
    category_weights={"shop": 1.0, "cashier": 1.0},
    floor_change_bias=0.1,
)

#: Office worker: desk, meetings, kitchen.
WORKER = AgentProfile(
    name="worker",
    visits=(3, 6),
    stay_duration=(600.0, 5400.0),
    walk_speed=(1.0, 1.5),
    category_weights={"office": 3.0, "facility": 1.0},
    floor_change_bias=0.25,
)

#: Airport traveler: security, a shop or two, the gate.
TRAVELER = AgentProfile(
    name="traveler",
    visits=(2, 5),
    stay_duration=(300.0, 2400.0),
    walk_speed=(1.0, 1.7),
    category_weights={"gate": 2.0, "shop": 1.0, "food": 1.0, "facility": 0.6},
    floor_change_bias=0.4,
)

#: Registry for config-file lookups.
PROFILE_PRESETS = {
    profile.name: profile
    for profile in (SHOPPER, BROWSER, STAFF, WORKER, TRAVELER)
}
