"""Wi-Fi positioning error model.

Converts dense ground-truth movement into the kind of data a mall Wi-Fi
positioning system actually produces: sparser, jittered sampling; Gaussian
planar noise; occasional floor misreads; heavy-tailed outlier jumps; and
missing fixes.  These are precisely the error classes the paper's cleaning
layer targets ("such locations feature inherently errors and such
timestamps are discrete", §1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..positioning import PositioningSequence, RawPositioningRecord


@dataclass(frozen=True)
class WifiErrorModel:
    """Parameters of the synthetic positioning channel."""

    #: Std-dev of isotropic Gaussian planar noise (metres).
    sigma: float = 1.2
    #: Probability a fix reports a wrong floor.
    floor_error_rate: float = 0.03
    #: Probability a fix teleports by ~``outlier_magnitude``.
    outlier_rate: float = 0.01
    outlier_magnitude: float = 25.0
    #: Probability a scheduled fix is simply missing.
    dropout_rate: float = 0.05
    #: Mean / jitter of the sampling interval (seconds).
    interval_mean: float = 5.0
    interval_jitter: float = 1.5

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise SimulationError(f"sigma must be >= 0, got {self.sigma}")
        for rate_name in ("floor_error_rate", "outlier_rate", "dropout_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(f"{rate_name} must be in [0, 1], got {rate}")
        if self.interval_mean <= 0:
            raise SimulationError("interval_mean must be positive")
        if self.outlier_magnitude <= 0:
            raise SimulationError("outlier_magnitude must be positive")

    def observe(
        self,
        ground_truth: PositioningSequence,
        floors: list[int],
        seed: int = 0,
    ) -> PositioningSequence:
        """Produce the raw positioning sequence a Wi-Fi system would log.

        Fix times advance by a jittered interval; each fix reads the
        nearest ground-truth sample and corrupts it.  At least two fixes
        always survive so downstream sequence invariants hold.
        """
        rng = np.random.default_rng(seed)
        truth = ground_truth.records
        times = ground_truth.timestamps
        records: list[RawPositioningRecord] = []
        cursor = times[0]
        end = times[-1]
        while cursor <= end:
            if rng.random() >= self.dropout_rate:
                nearest = self._nearest_index(times, cursor)
                records.append(
                    self._corrupt(truth[nearest], cursor, floors, rng)
                )
            step = rng.normal(self.interval_mean, self.interval_jitter)
            cursor += max(0.5, step)
        if len(records) < 2:
            first = self._corrupt(truth[0], times[0], floors, rng)
            last = self._corrupt(truth[-1], times[-1], floors, rng)
            records = [first, last]
        return PositioningSequence(ground_truth.device_id, records)

    @staticmethod
    def _nearest_index(times: list[float], moment: float) -> int:
        import bisect

        position = bisect.bisect_left(times, moment)
        if position == 0:
            return 0
        if position >= len(times):
            return len(times) - 1
        before, after = times[position - 1], times[position]
        return position if after - moment < moment - before else position - 1

    def _corrupt(
        self,
        truth: RawPositioningRecord,
        at_time: float,
        floors: list[int],
        rng: np.random.Generator,
    ) -> RawPositioningRecord:
        location = truth.location
        if self.sigma > 0:
            dx, dy = rng.normal(0.0, self.sigma, size=2)
            location = location.translate(float(dx), float(dy))
        if rng.random() < self.outlier_rate:
            angle = rng.uniform(0.0, 2.0 * np.pi)
            jump = self.outlier_magnitude * (0.6 + 0.8 * rng.random())
            location = location.translate(
                float(jump * np.cos(angle)), float(jump * np.sin(angle))
            )
        if len(floors) > 1 and rng.random() < self.floor_error_rate:
            wrong = [f for f in floors if f != location.floor]
            location = location.with_floor(int(rng.choice(wrong)))
        return RawPositioningRecord(
            timestamp=at_time,
            device_id=truth.device_id,
            location=location,
        )


#: A clean channel for debugging and unit tests.
PERFECT_CHANNEL = WifiErrorModel(
    sigma=0.0,
    floor_error_rate=0.0,
    outlier_rate=0.0,
    dropout_rate=0.0,
    interval_mean=5.0,
    interval_jitter=0.0,
)
