"""Ground-truth movement generation: walking and dwelling.

Produces densely-sampled, physically consistent trajectories: walking legs
follow the DSM topology's door-respecting paths (so ground truth never cuts
through walls), floor changes take time proportional to the stack cost, and
dwells wander gently inside the region's footprint.
"""

from __future__ import annotations

import math

import numpy as np

from ..dsm import DigitalSpaceModel
from ..errors import SimulationError
from ..geometry import Circle, Point, Polygon, shape_contains
from ..positioning import RawPositioningRecord


class MovementSimulator:
    """Sample-level movement primitives shared by all agent profiles."""

    def __init__(
        self,
        model: DigitalSpaceModel,
        sample_interval: float = 2.0,
    ):
        if sample_interval <= 0:
            raise SimulationError(
                f"sample_interval must be positive, got {sample_interval}"
            )
        self.model = model
        self.topology = model.topology
        self.sample_interval = sample_interval

    # ------------------------------------------------------------------
    # Walking
    # ------------------------------------------------------------------
    def walk(
        self,
        device_id: str,
        start: Point,
        goal: Point,
        speed: float,
        start_time: float,
    ) -> tuple[list[RawPositioningRecord], float]:
        """Ground-truth samples of a walk; returns (samples, arrival_time).

        The walk follows the topology's waypoints.  A leg between waypoints
        on different floors consumes ``floor_change_cost`` metres-equivalent
        per floor at the same walking speed.
        """
        if speed <= 0:
            raise SimulationError(f"walk speed must be positive, got {speed}")
        waypoints = self.topology.walking_path(start, goal)
        if not waypoints:
            # Unreachable goal: stand still for one sample so time advances.
            return (
                [RawPositioningRecord(start_time, device_id, start)],
                start_time + self.sample_interval,
            )
        samples: list[RawPositioningRecord] = []
        clock = start_time
        for a, b in zip(waypoints, waypoints[1:]):
            leg_distance = self._leg_distance(a, b)
            if leg_distance <= 1e-9:
                continue
            leg_time = leg_distance / speed
            steps = max(1, int(leg_time / self.sample_interval))
            for step in range(steps):
                fraction = (step + 1) / steps
                moment = clock + leg_time * fraction
                samples.append(
                    RawPositioningRecord(
                        moment, device_id, self._leg_point(a, b, fraction)
                    )
                )
            clock += leg_time
        if not samples:
            samples = [RawPositioningRecord(start_time, device_id, goal)]
        return samples, clock

    def _leg_distance(self, a: Point, b: Point) -> float:
        planar = a.planar_distance_to(b)
        if a.floor == b.floor:
            return planar
        vertical = self.topology.floor_change_cost * abs(a.floor - b.floor)
        return max(planar, vertical)

    @staticmethod
    def _leg_point(a: Point, b: Point, fraction: float) -> Point:
        floor = a.floor if fraction < 0.5 else b.floor
        return Point(
            a.x + (b.x - a.x) * fraction,
            a.y + (b.y - a.y) * fraction,
            floor,
        )

    # ------------------------------------------------------------------
    # Dwelling
    # ------------------------------------------------------------------
    def dwell(
        self,
        device_id: str,
        region_id: str,
        around: Point,
        duration: float,
        start_time: float,
        rng: np.random.Generator,
        wander_speed: float = 0.25,
    ) -> tuple[list[RawPositioningRecord], float]:
        """Samples of a dwell inside a region; returns (samples, end_time).

        The agent drifts between random interior points at browsing speed,
        which gives dwells the low-variance, low-straightness signature the
        event identifier learns as *stay*.
        """
        if duration <= 0:
            raise SimulationError(f"dwell duration must be positive, got {duration}")
        shape = self._region_shape(region_id)
        samples: list[RawPositioningRecord] = []
        clock = start_time
        position = around
        target = self._interior_point(shape, around, rng)
        end_time = start_time + duration
        while clock < end_time:
            clock = min(clock + self.sample_interval, end_time)
            step = wander_speed * self.sample_interval
            distance = position.planar_distance_to(target)
            if distance <= step:
                position = target
                target = self._interior_point(shape, around, rng)
            else:
                fraction = step / distance
                position = Point(
                    position.x + (target.x - position.x) * fraction,
                    position.y + (target.y - position.y) * fraction,
                    position.floor,
                )
            samples.append(RawPositioningRecord(clock, device_id, position))
        return samples, end_time

    def region_entry_point(
        self, region_id: str, rng: np.random.Generator
    ) -> Point:
        """A random interior point of the region, used as the walk goal."""
        shape = self._region_shape(region_id)
        anchor = self.model.region_anchor(region_id)
        return self._interior_point(shape, anchor, rng)

    def _region_shape(self, region_id: str):
        region = self.model.region(region_id)
        if region.shape is not None:
            return region.shape
        if region.entity_ids:
            return self.model.entity(region.entity_ids[0]).shape
        raise SimulationError(f"region {region_id!r} has no usable shape")

    @staticmethod
    def _interior_point(shape, fallback: Point, rng: np.random.Generator) -> Point:
        """Rejection-sample a point inside the shape (fallback: anchor)."""
        if isinstance(shape, Circle):
            for _ in range(16):
                angle = rng.uniform(0.0, 2.0 * math.pi)
                radius = shape.radius * 0.85 * math.sqrt(rng.random())
                candidate = Point(
                    shape.center.x + radius * math.cos(angle),
                    shape.center.y + radius * math.sin(angle),
                    shape.floor,
                )
                if shape.contains_point(candidate):
                    return candidate
            return shape.center
        if isinstance(shape, Polygon):
            bounds = shape.bounds
            for _ in range(32):
                candidate = Point(
                    rng.uniform(bounds.min_x, bounds.max_x),
                    rng.uniform(bounds.min_y, bounds.max_y),
                    shape.floor,
                )
                if shape.contains_point(candidate, include_boundary=False):
                    # Shrink towards centroid so samples stay off the walls.
                    return candidate.lerp(shape.centroid, 0.15)
            return shape.centroid
        if shape_contains(shape, fallback):
            return fallback
        return fallback
