"""The mobility simulator: synthetic devices with known ground truth.

This is the Vita-style data substrate (the authors' own prior tool [7]
generated indoor mobility data for real buildings): agents enter through an
entrance, visit a profile-driven sequence of semantic regions, dwell, and
leave.  Each simulated device yields three aligned artifacts:

* dense **ground-truth** positions (what really happened),
* **raw** positioning records (ground truth pushed through the Wi-Fi error
  model — the Translator's input),
* **ground-truth mobility semantics** (run-length region occupancy of the
  true trajectory — what the Translator should recover).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.semantics import (
    EVENT_PASS_BY,
    EVENT_STAY,
    MobilitySemantic,
    MobilitySemanticsSequence,
)
from ..dsm import DigitalSpaceModel
from ..errors import SimulationError
from ..positioning import PositioningSequence, RawPositioningRecord
from ..timeutil import TimeRange
from .movement import MovementSimulator
from .profiles import SHOPPER, AgentProfile
from .wifi import WifiErrorModel


@dataclass(frozen=True)
class SimulatedDevice:
    """Everything known about one synthetic device."""

    device_id: str
    profile_name: str
    ground_truth: PositioningSequence
    raw: PositioningSequence
    truth_semantics: MobilitySemanticsSequence
    visited_region_ids: tuple[str, ...]


@dataclass(frozen=True)
class SimulationConfig:
    """Global knobs of the simulator."""

    sample_interval: float = 2.0
    #: Ground-truth runs at least this long count as stays; shorter as pass-bys.
    stay_threshold: float = 60.0
    #: Ignore region runs shorter than this (boundary flicker).
    min_run_duration: float = 4.0

    def __post_init__(self) -> None:
        if self.sample_interval <= 0:
            raise SimulationError("sample_interval must be positive")
        if self.stay_threshold <= 0:
            raise SimulationError("stay_threshold must be positive")


class MobilitySimulator:
    """Simulates device visits inside one DSM."""

    def __init__(
        self,
        model: DigitalSpaceModel,
        error_model: WifiErrorModel | None = None,
        config: SimulationConfig | None = None,
        seed: int = 0,
    ):
        self.model = model
        self.error_model = error_model if error_model is not None else WifiErrorModel()
        self.config = config if config is not None else SimulationConfig()
        self.seed = seed
        self.movement = MovementSimulator(model, self.config.sample_interval)
        self._entrances = [d for d in model.doors() if d.is_entrance]
        if not self._entrances:
            raise SimulationError(
                f"DSM {model.name!r} has no entrance doors; flag at least one "
                "door with the 'entrance' property"
            )
        self._targets = self._target_regions()
        if not self._targets:
            raise SimulationError(
                f"DSM {model.name!r} has no non-hallway regions to visit"
            )

    def _target_regions(self) -> list[str]:
        targets = []
        for region in self.model.regions():
            if region.category == "hallway":
                continue
            targets.append(region.region_id)
        return targets

    # ------------------------------------------------------------------
    # Single device
    # ------------------------------------------------------------------
    def simulate_device(
        self,
        device_id: str,
        profile: AgentProfile = SHOPPER,
        start_time: float = 0.0,
        seed: int | None = None,
    ) -> SimulatedDevice:
        """Simulate one device session (enter -> visits -> exit)."""
        rng = np.random.default_rng(self.seed if seed is None else seed)
        entrance = self._entrances[int(rng.integers(0, len(self._entrances)))]
        start = self._entry_position(entrance)
        itinerary = self._choose_itinerary(profile, start.floor, rng)
        speed = float(rng.uniform(*profile.walk_speed))

        samples: list[RawPositioningRecord] = [
            RawPositioningRecord(start_time, device_id, start)
        ]
        clock = start_time
        position = start
        for region_id in itinerary:
            goal = self.movement.region_entry_point(region_id, rng)
            walk_samples, clock = self.movement.walk(
                device_id, position, goal, speed, clock
            )
            samples.extend(walk_samples)
            position = samples[-1].location
            dwell_duration = float(rng.uniform(*profile.stay_duration))
            dwell_samples, clock = self.movement.dwell(
                device_id, region_id, position, dwell_duration, clock, rng
            )
            samples.extend(dwell_samples)
            position = samples[-1].location
        exit_samples, clock = self.movement.walk(
            device_id, position, start, speed, clock
        )
        samples.extend(exit_samples)

        ground_truth = PositioningSequence(device_id, self._dedup_times(samples))
        raw = self.error_model.observe(
            ground_truth,
            self.model.floor_numbers,
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        truth_semantics = self.derive_truth_semantics(ground_truth)
        return SimulatedDevice(
            device_id=device_id,
            profile_name=profile.name,
            ground_truth=ground_truth,
            raw=raw,
            truth_semantics=truth_semantics,
            visited_region_ids=tuple(itinerary),
        )

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def simulate_population(
        self,
        count: int,
        profiles: list[AgentProfile] | None = None,
        window: TimeRange | None = None,
        seed: int | None = None,
    ) -> list[SimulatedDevice]:
        """Simulate ``count`` devices with staggered arrival times.

        Device ids follow the paper's anonymized-MAC look (``3a.x.14``).
        """
        if count < 1:
            raise SimulationError(f"population count must be >= 1, got {count}")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        chosen_profiles = profiles if profiles else [SHOPPER]
        window = window if window is not None else TimeRange(0.0, 8 * 3600.0)
        devices = []
        for index in range(count):
            profile = chosen_profiles[int(rng.integers(0, len(chosen_profiles)))]
            arrival = float(rng.uniform(window.start, max(window.start + 1.0,
                                                          window.end - 1800.0)))
            device_id = f"3a.{index:04x}.14"
            devices.append(
                self.simulate_device(
                    device_id,
                    profile,
                    start_time=arrival,
                    seed=int(rng.integers(0, 2**31 - 1)),
                )
            )
        return devices

    # ------------------------------------------------------------------
    # Ground-truth semantics
    # ------------------------------------------------------------------
    def derive_truth_semantics(
        self, ground_truth: PositioningSequence
    ) -> MobilitySemanticsSequence:
        """Run-length region occupancy of the true trajectory.

        Runs lasting at least ``stay_threshold`` become ``stay``; shorter
        ones become ``pass-by``; sub-``min_run_duration`` flickers are
        dropped.
        """
        runs: list[tuple[str, str, float, float]] = []
        current_id: str | None = None
        current_name = ""
        run_start = 0.0
        last_time = 0.0
        for record in ground_truth:
            region = self.model.primary_region_at(record.location)
            region_id = region.region_id if region is not None else None
            if region_id != current_id:
                if current_id is not None:
                    runs.append((current_id, current_name, run_start, last_time))
                current_id = region_id
                current_name = region.name if region is not None else ""
                run_start = record.timestamp
            last_time = record.timestamp
        if current_id is not None:
            runs.append((current_id, current_name, run_start, last_time))

        semantics = []
        for region_id, region_name, start, end in runs:
            duration = end - start
            if duration < self.config.min_run_duration:
                continue
            event = EVENT_STAY if duration >= self.config.stay_threshold else EVENT_PASS_BY
            semantics.append(
                MobilitySemantic(
                    event=event,
                    region_id=region_id,
                    region_name=region_name,
                    time_range=TimeRange(start, end),
                )
            )
        return MobilitySemanticsSequence(ground_truth.device_id, semantics)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _entry_position(self, entrance) -> "Point":
        from ..geometry import Point

        anchor = entrance.anchor
        partition = self.model.partition_at(anchor)
        if partition is not None:
            return anchor
        snapped = self.model.nearest_partition(anchor, max_distance=5.0)
        if snapped is None:
            raise SimulationError(
                f"entrance {entrance.entity_id!r} is not near walkable space"
            )
        target = snapped[0].anchor
        return Point(
            anchor.x + (target.x - anchor.x) * 0.1,
            anchor.y + (target.y - anchor.y) * 0.1,
            anchor.floor,
        )

    def _choose_itinerary(
        self, profile: AgentProfile, start_floor: int, rng: np.random.Generator
    ) -> list[str]:
        count = int(rng.integers(profile.visits[0], profile.visits[1] + 1))
        weights = []
        for region_id in self._targets:
            region = self.model.region(region_id)
            weight = profile.category_weights.get(region.category, 0.05)
            floor = self.model.region_floor(region_id)
            if floor != start_floor:
                # Far floors are less likely unless the profile roams.
                distance = abs(floor - start_floor)
                weight *= profile.floor_change_bias ** min(distance, 2)
            weights.append(weight)
        total = sum(weights)
        if total <= 0:
            raise SimulationError("no region matches the profile's preferences")
        probabilities = np.array(weights) / total
        chosen = rng.choice(
            len(self._targets),
            size=min(count, len(self._targets)),
            replace=False,
            p=probabilities,
        )
        return [self._targets[int(i)] for i in chosen]

    @staticmethod
    def _dedup_times(
        samples: list[RawPositioningRecord],
        min_spacing: float = 0.5,
    ) -> list[RawPositioningRecord]:
        """Drop samples closer than ``min_spacing`` to the previous one.

        Walk/dwell seams can emit near-coincident samples whose tiny time
        delta turns an ordinary step into an apparent speed spike; thinning
        them keeps the ground truth consistent with the speed constraint.
        """
        out: list[RawPositioningRecord] = []
        for record in samples:
            if out and record.timestamp - out[-1].timestamp < min_spacing:
                continue
            out.append(record)
        if len(out) < 2 and samples:
            out = [samples[0], samples[-1]]
        return out
