"""A 3-floor office building, built via the ASCII floorplan parser.

The second demonstration scenario (offices are the paper's first motivating
environment: "office buildings, shopping malls, airports, and so on").
Using the ASCII path here deliberately exercises the semi-automatic import
pipeline end to end.
"""

from __future__ import annotations

from ..dsm import DigitalSpaceModel
from ..spacemodel import AsciiFloorplanParser, RoomLegend, TagLibrary, build_dsm

#: One floor of the office: reception/kitchen west, meeting rooms center,
#: open workspaces east; S = stairwell shared by all floors.
_FLOOR_GRID = [
    "########################",
    "#AAAAA#BBBBB#CCCCCCCCCC#",
    "#AAAAA#BBBBB#CCCCCCCCCC#",
    "#AAAAA#BBBBB#CCCCCCCCCC#",
    "#.D......D.....D.......#",
    "#...S..................#",
    "#.D......D.....D.......#",
    "#FFFFF#GGGGG#EEEEEEEEEE#",
    "#FFFFF#GGGGG#EEEEEEEEEE#",
    "#FFFFF#GGGGG#EEEEEEEEEE#",
    "########################",
]

#: Ground floor adds the entrance on the west corridor end.
_GROUND_GRID = [row for row in _FLOOR_GRID]
_GROUND_GRID[5] = "#@..S..................#"

_LEGENDS = {
    1: {
        "A": RoomLegend("Reception", "reception"),
        "B": RoomLegend("Mail Room", "workspace"),
        "C": RoomLegend("Open Space 1F", "workspace"),
        "E": RoomLegend("Cafeteria", "kitchen"),
        "F": RoomLegend("Print Room", "workspace"),
        "G": RoomLegend("Meeting Alpha", "meeting-room"),
    },
    2: {
        "A": RoomLegend("Kitchen 2F", "kitchen"),
        "B": RoomLegend("Meeting Beta", "meeting-room"),
        "C": RoomLegend("Open Space 2F", "workspace"),
        "E": RoomLegend("Engineering Bay", "workspace"),
        "F": RoomLegend("Quiet Room", "workspace"),
        "G": RoomLegend("Meeting Gamma", "meeting-room"),
    },
    3: {
        "A": RoomLegend("Kitchen 3F", "kitchen"),
        "B": RoomLegend("Meeting Delta", "meeting-room"),
        "C": RoomLegend("Open Space 3F", "workspace"),
        "E": RoomLegend("Sales Bay", "workspace"),
        "F": RoomLegend("Server Room", "workspace"),
        "G": RoomLegend("Board Room", "meeting-room"),
    },
}


def build_office(floors: int = 3, cell_size: float = 2.0) -> DigitalSpaceModel:
    """Build the office DSM by parsing one ASCII grid per floor."""
    parser = AsciiFloorplanParser(cell_size=cell_size)
    canvases = []
    for floor in range(1, floors + 1):
        grid = _GROUND_GRID if floor == 1 else _FLOOR_GRID
        legend = _LEGENDS.get(floor, _LEGENDS[1])
        parsed = parser.parse(grid, floor, legend)
        canvases.append(parsed.canvas)
    return build_dsm(
        canvases,
        name="three-floor-office",
        tags=TagLibrary.office_defaults(),
        description=f"{floors}-floor office via ASCII floorplan import",
    )
