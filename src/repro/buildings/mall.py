"""A 7-floor shopping mall: the stand-in for the paper's demo dataset venue.

The demonstration used "a Wi-Fi based positioning system in a 7-floor
shopping mall in Hangzhou, China" (paper §4).  This factory builds a
comparable venue entirely through the Space Modeler's drawing API: a
central corridor per floor, shop units on both sides, a Center Hall region,
cashier desks, staircase/elevator stacks, and ground-floor entrances.  The
shop catalog deliberately puts Adidas and Nike on floor 3 so Table 1's
walkthrough can be reproduced verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dsm import DigitalSpaceModel, EntityKind
from ..errors import DSMError
from ..spacemodel import DrawingCanvas, TagLibrary, build_dsm

#: Shop names per floor (front-of-catalog units are nearest the west end).
FLOOR_CATALOG: dict[int, tuple[str, list[str]]] = {
    1: ("fashion", ["Zara", "H&M", "Uniqlo", "Gap", "Levis", "Mango",
                    "Bershka", "Only", "Vero Moda", "Jack Jones", "Semir",
                    "Peacebird", "GXG", "Metersbonwe"]),
    2: ("beauty", ["Sephora", "Pandora", "Swatch", "Watsons", "Innisfree",
                   "The Body Shop", "L'Occitane", "MAC", "Fossil",
                   "Daniel Wellington", "Chow Tai Fook", "Luk Fook",
                   "Aptamil", "Mannings"]),
    3: ("sports", ["Adidas", "Nike", "Puma", "New Balance", "Asics",
                   "Under Armour", "Li-Ning", "Anta", "Skechers", "Fila",
                   "Converse", "Vans", "Columbia", "The North Face"]),
    4: ("electronics", ["Apple Store", "Samsung", "Huawei", "Xiaomi", "Sony",
                        "DJI", "Bose", "JBL", "Lenovo", "Dell", "Canon",
                        "Nikon", "Dyson", "Philips"]),
    5: ("kids", ["Lego", "Toys Castle", "Pop Mart", "Baby Care", "Balabala",
                 "Mothercare", "Gymboree", "Disney Store", "Bandai",
                 "Kidsland", "MiniPeace", "Paw Patrol", "Barbie",
                 "Hot Wheels"]),
    6: ("food", ["Starbucks", "KFC", "Pizza Hut", "Haidilao", "McDonald's",
                 "Burger King", "Grandma's Kitchen", "Green Tea", "Nayuki",
                 "HeyTea", "Saizeriya", "Yoshinoya", "Din Tai Fung",
                 "CoCo Tea"]),
    7: ("entertainment", ["Cinema", "Arcade Hall", "KTV Star",
                          "Fitness Club", "Kids Playground", "Book City",
                          "Board Games", "VR World", "Billiards", "Ice Rink",
                          "Art Space", "Photo Studio", "Music House",
                          "Dance Studio"]),
}

#: Tag applied to shop units per floor theme.
_THEME_TAGS = {
    "fashion": "shop",
    "beauty": "shop",
    "sports": "shop",
    "electronics": "shop",
    "kids": "shop",
    "food": "restaurant",
    "entertainment": "cinema",
}


@dataclass(frozen=True)
class MallConfig:
    """Dimensions of the generated mall."""

    floors: int = 7
    units_per_side: int = 7
    unit_width: float = 16.0
    unit_depth: float = 14.0
    corridor_width: float = 10.0

    def __post_init__(self) -> None:
        if not 1 <= self.floors <= 7:
            raise DSMError(f"mall supports 1..7 floors, got {self.floors}")
        if self.units_per_side < 2:
            raise DSMError("mall needs at least 2 units per side")
        if min(self.unit_width, self.unit_depth, self.corridor_width) <= 0:
            raise DSMError("mall dimensions must be positive")

    @property
    def length(self) -> float:
        """East-west extent of the building."""
        return self.units_per_side * self.unit_width

    @property
    def width(self) -> float:
        """North-south extent of the building."""
        return 2 * self.unit_depth + self.corridor_width


def build_mall(config: MallConfig | None = None) -> DigitalSpaceModel:
    """Build the 7-floor mall DSM through the Space Modeler."""
    config = config if config is not None else MallConfig()
    tags = TagLibrary.mall_defaults()
    canvases = [
        _draw_floor(floor, config) for floor in range(1, config.floors + 1)
    ]
    model = build_dsm(
        canvases,
        name="hangzhou-style-mall",
        tags=tags,
        description=(
            f"{config.floors}-floor shopping mall, "
            f"{config.units_per_side * 2} units per floor"
        ),
    )
    return model


def _draw_floor(floor: int, config: MallConfig) -> DrawingCanvas:
    canvas = DrawingCanvas(floor, name=f"{floor}F")
    canvas.import_floorplan(
        f"mall-floor-{floor}.png", config.length, config.width
    )
    corridor_min_y = config.unit_depth
    corridor_max_y = config.unit_depth + config.corridor_width
    # The corridor spine.
    corridor = canvas.draw_rectangle(
        0.0,
        corridor_min_y,
        config.length,
        corridor_max_y,
        kind=EntityKind.HALLWAY,
        name=f"Corridor {floor}F",
        layer="corridors",
    )
    canvas.assign_tag(corridor.shape_id, "hall", name=f"Corridor {floor}F")
    # The Center Hall: an explicit region over the corridor's middle third.
    center_min_x = config.length / 3.0
    center_max_x = 2.0 * config.length / 3.0
    center = canvas.draw_rectangle(
        center_min_x,
        corridor_min_y,
        center_max_x,
        corridor_max_y,
        kind=None,  # region-only drawing
        name=f"Center Hall {floor}F",
        layer="regions",
    )
    canvas.assign_tag(center.shape_id, "hall", name=f"Center Hall {floor}F")

    theme, names = FLOOR_CATALOG[((floor - 1) % 7) + 1]
    shop_tag = _THEME_TAGS[theme]
    name_iter = iter(names)
    # North side (above the corridor) and south side (below).
    for side in ("north", "south"):
        for unit in range(config.units_per_side):
            min_x = unit * config.unit_width
            max_x = min_x + config.unit_width
            # Door anchors sit 0.35 m inside the corridor so walking paths
            # between doors never run exactly on the shop boundary line.
            if side == "north":
                min_y, max_y = corridor_max_y, corridor_max_y + config.unit_depth
                door_y = corridor_max_y - 0.35
            else:
                min_y, max_y = 0.0, config.unit_depth
                door_y = config.unit_depth + 0.35
            is_cashier = side == "south" and unit == config.units_per_side - 1
            if is_cashier:
                unit_name = f"Cashier {floor}F"
                unit_tag = "cashier"
            else:
                unit_name = next(name_iter, f"Unit {floor}F-{side}-{unit}")
                unit_tag = shop_tag
            drawn = canvas.draw_rectangle(
                min_x, min_y, max_x, max_y,
                kind=EntityKind.ROOM, name=unit_name, layer="shops",
            )
            canvas.assign_tag(drawn.shape_id, unit_tag, name=unit_name)
            door_x = (min_x + max_x) / 2.0
            canvas.draw_door((door_x, door_y), name=f"door {unit_name}",
                             snap=False)

    # Vertical stacks: two staircases near the ends, one central elevator.
    # A single-floor mall has no stacks (a one-floor stack is invalid).
    corridor_mid_y = (corridor_min_y + corridor_max_y) / 2.0
    if config.floors > 1:
        canvas.draw_stack_connector(
            (config.unit_width * 0.5, corridor_mid_y), stack="stair-west"
        )
        canvas.draw_stack_connector(
            (config.length - config.unit_width * 0.5, corridor_mid_y),
            stack="stair-east",
        )
        canvas.draw_stack_connector(
            (config.length / 2.0, corridor_mid_y),
            stack="elevator-central",
            kind=EntityKind.ELEVATOR,
        )

    # Ground-floor entrances at both corridor ends.
    if floor == 1:
        canvas.draw_door((0.0, corridor_mid_y), name="west entrance",
                         entrance=True, snap=False)
        canvas.draw_door(
            (config.length, corridor_mid_y),
            name="east entrance",
            entrance=True,
            snap=False,
        )
    return canvas


def mall_region_id(model: DigitalSpaceModel, name: str) -> str:
    """Region id of the region whose display name is ``name``.

    Convenience for examples and tests ("Adidas" -> its region id).
    """
    for region in model.regions():
        if region.name == name:
            return region.region_id
    raise DSMError(f"no region named {name!r} in {model.name}")
