"""A 2-floor airport terminal, built through the drawing canvas.

The third demonstration scenario.  Departures (floor 2) has security,
duty-free retail, restaurants and a row of gates; arrivals (floor 1) has
baggage halls and the landside hall with entrances.  Gate regions make
'pass-by vs stay' semantics interesting: travelers dwell at their own gate
and pass the others.
"""

from __future__ import annotations

from ..dsm import DigitalSpaceModel, EntityKind
from ..spacemodel import DrawingCanvas, TagLibrary, build_dsm

#: Terminal footprint in metres.
_LENGTH = 180.0
_CONCOURSE_DEPTH = 16.0
_ROOM_DEPTH = 14.0


def build_airport(gate_count: int = 8) -> DigitalSpaceModel:
    """Build the airport DSM (floor 1 = arrivals, floor 2 = departures)."""
    canvases = [_draw_arrivals(), _draw_departures(gate_count)]
    return build_dsm(
        canvases,
        name="two-floor-airport",
        tags=TagLibrary.airport_defaults(),
        description=f"airport terminal with {gate_count} gates",
    )


def _draw_arrivals() -> DrawingCanvas:
    canvas = DrawingCanvas(1, name="Arrivals")
    canvas.import_floorplan("arrivals.png", _LENGTH, _CONCOURSE_DEPTH + _ROOM_DEPTH)
    hall = canvas.draw_rectangle(
        0.0, 0.0, _LENGTH, _CONCOURSE_DEPTH,
        kind=EntityKind.HALLWAY, name="Landside Hall", layer="halls",
    )
    canvas.assign_tag(hall.shape_id, "hall", name="Landside Hall")
    rooms = [
        ("Baggage Hall A", "hall", 0.0, 60.0),
        ("Baggage Hall B", "hall", 60.0, 120.0),
        ("Arrivals Cafe", "restaurant", 120.0, 150.0),
        ("Car Rental", "duty-free", 150.0, 180.0),
    ]
    for name, tag, min_x, max_x in rooms:
        drawn = canvas.draw_rectangle(
            min_x, _CONCOURSE_DEPTH, max_x, _CONCOURSE_DEPTH + _ROOM_DEPTH,
            kind=EntityKind.ROOM, name=name, layer="rooms",
        )
        canvas.assign_tag(drawn.shape_id, tag, name=name)
        canvas.draw_door(((min_x + max_x) / 2.0, _CONCOURSE_DEPTH - 0.35),
                         name=f"door {name}", snap=False)
    # Entrances from the curb.
    for x in (30.0, 90.0, 150.0):
        canvas.draw_door((x, 0.0), name="terminal entrance", entrance=True,
                         snap=False)
    _draw_stacks(canvas)
    return canvas


def _draw_departures(gate_count: int) -> DrawingCanvas:
    canvas = DrawingCanvas(2, name="Departures")
    canvas.import_floorplan(
        "departures.png", _LENGTH, _CONCOURSE_DEPTH + _ROOM_DEPTH
    )
    concourse = canvas.draw_rectangle(
        0.0, 0.0, _LENGTH, _CONCOURSE_DEPTH,
        kind=EntityKind.HALLWAY, name="Concourse", layer="halls",
    )
    canvas.assign_tag(concourse.shape_id, "hall", name="Concourse")
    # Security occupies the concourse's west end as an explicit region.
    security = canvas.draw_rectangle(
        0.0, 0.0, 25.0, _CONCOURSE_DEPTH,
        kind=None, name="Security", layer="regions",
    )
    canvas.assign_tag(security.shape_id, "security", name="Security")

    # Airside rooms: duty-free, restaurants, lounge, then the gate row.
    fixtures = [
        ("Duty Free", "duty-free", 0.0, 30.0),
        ("Food Court", "restaurant", 30.0, 55.0),
        ("Sky Lounge", "lounge", 55.0, 75.0),
    ]
    for name, tag, min_x, max_x in fixtures:
        drawn = canvas.draw_rectangle(
            min_x, _CONCOURSE_DEPTH, max_x, _CONCOURSE_DEPTH + _ROOM_DEPTH,
            kind=EntityKind.ROOM, name=name, layer="rooms",
        )
        canvas.assign_tag(drawn.shape_id, tag, name=name)
        canvas.draw_door(((min_x + max_x) / 2.0, _CONCOURSE_DEPTH - 0.35),
                         name=f"door {name}", snap=False)
    gate_zone_start = 80.0
    gate_width = (_LENGTH - gate_zone_start) / gate_count
    for index in range(gate_count):
        min_x = gate_zone_start + index * gate_width
        max_x = min_x + gate_width
        name = f"Gate B{index + 1}"
        drawn = canvas.draw_rectangle(
            min_x, _CONCOURSE_DEPTH, max_x, _CONCOURSE_DEPTH + _ROOM_DEPTH,
            kind=EntityKind.ROOM, name=name, layer="gates",
        )
        canvas.assign_tag(drawn.shape_id, "gate", name=name)
        canvas.draw_door(((min_x + max_x) / 2.0, _CONCOURSE_DEPTH - 0.35),
                         name=f"door {name}", snap=False)
    _draw_stacks(canvas)
    return canvas


def _draw_stacks(canvas: DrawingCanvas) -> None:
    canvas.draw_stack_connector((10.0, _CONCOURSE_DEPTH / 2.0),
                                stack="stair-west")
    canvas.draw_stack_connector((170.0, _CONCOURSE_DEPTH / 2.0),
                                stack="stair-east")
    canvas.draw_stack_connector(
        (90.0, _CONCOURSE_DEPTH / 2.0),
        stack="elevator-central",
        kind=EntityKind.ELEVATOR,
    )
