"""Prebuilt buildings (substrate S4), all constructed via the Space Modeler.

A 7-floor shopping mall (the paper's demo venue stand-in), a 3-floor office
imported from ASCII floorplans, and a 2-floor airport terminal.
"""

from .airport import build_airport
from .mall import FLOOR_CATALOG, MallConfig, build_mall, mall_region_id
from .office import build_office

__all__ = [
    "FLOOR_CATALOG",
    "MallConfig",
    "build_airport",
    "build_mall",
    "build_office",
    "mall_region_id",
]
