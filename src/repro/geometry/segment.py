"""Line segments and the planar predicates built on them.

These routines back point-in-polygon tests, wall-crossing checks in the
cleaning layer, and door placement validation in the DSM.  All computations
are planar: callers are responsible for comparing only same-floor geometry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import GeometryError
from .point import Point

_EPS = 1e-9


@dataclass(frozen=True)
class Segment:
    """A closed line segment between two points on the same floor."""

    a: Point
    b: Point

    def __post_init__(self) -> None:
        if self.a.floor != self.b.floor:
            raise GeometryError("segment endpoints must share a floor")

    @property
    def floor(self) -> int:
        """Floor both endpoints lie on."""
        return self.a.floor

    @property
    def length(self) -> float:
        """Euclidean length."""
        return self.a.planar_distance_to(self.b)

    @property
    def midpoint(self) -> Point:
        """The segment's midpoint."""
        return self.a.midpoint(self.b)

    def point_at(self, fraction: float) -> Point:
        """The point at parametric position ``fraction`` in [0, 1]."""
        return Point(
            self.a.x + (self.b.x - self.a.x) * fraction,
            self.a.y + (self.b.y - self.a.y) * fraction,
            self.a.floor,
        )

    def distance_to_point(self, point: Point) -> float:
        """Shortest distance from ``point`` to the closed segment."""
        return point.planar_distance_to(self.closest_point_to(point))

    def closest_point_to(self, point: Point) -> Point:
        """The segment point nearest to ``point``."""
        ax, ay = self.a.x, self.a.y
        bx, by = self.b.x, self.b.y
        dx, dy = bx - ax, by - ay
        norm_sq = dx * dx + dy * dy
        if norm_sq <= _EPS * _EPS:
            return self.a
        t = ((point.x - ax) * dx + (point.y - ay) * dy) / norm_sq
        t = max(0.0, min(1.0, t))
        return Point(ax + t * dx, ay + t * dy, self.a.floor)

    def contains_point(self, point: Point, tolerance: float = 1e-9) -> bool:
        """True if ``point`` lies on the segment within ``tolerance``."""
        if point.floor != self.a.floor:
            return False
        return self.distance_to_point(point) <= tolerance

    def intersects(self, other: "Segment") -> bool:
        """True if the closed segments share at least one point."""
        return self.intersection(other) is not None

    def intersection(self, other: "Segment") -> Point | None:
        """A shared point of the two segments, or None.

        For overlapping collinear segments an arbitrary shared point (the
        midpoint of the overlap) is returned.
        """
        if self.a.floor != other.a.floor:
            return None
        p, r = self.a, (self.b.x - self.a.x, self.b.y - self.a.y)
        q, s = other.a, (other.b.x - other.a.x, other.b.y - other.a.y)
        r_cross_s = r[0] * s[1] - r[1] * s[0]
        qp = (q.x - p.x, q.y - p.y)
        qp_cross_r = qp[0] * r[1] - qp[1] * r[0]

        if abs(r_cross_s) <= _EPS:
            if abs(qp_cross_r) > _EPS:
                return None  # parallel, non-collinear
            # Collinear: project onto the dominant axis and test overlap.
            r_norm_sq = r[0] * r[0] + r[1] * r[1]
            if r_norm_sq <= _EPS * _EPS:
                # Degenerate self; treat as a point.
                if other.contains_point(p):
                    return p
                return None
            t0 = (qp[0] * r[0] + qp[1] * r[1]) / r_norm_sq
            t1 = t0 + (s[0] * r[0] + s[1] * r[1]) / r_norm_sq
            lo, hi = min(t0, t1), max(t0, t1)
            overlap_lo, overlap_hi = max(0.0, lo), min(1.0, hi)
            if overlap_lo > overlap_hi + _EPS:
                return None
            mid = (overlap_lo + overlap_hi) / 2.0
            return self.point_at(mid)

        t = (qp[0] * s[1] - qp[1] * s[0]) / r_cross_s
        u = qp_cross_r / r_cross_s
        if -_EPS <= t <= 1.0 + _EPS and -_EPS <= u <= 1.0 + _EPS:
            return self.point_at(max(0.0, min(1.0, t)))
        return None

    def __str__(self) -> str:
        return f"[{self.a} -> {self.b}]"


def orientation(p: Point, q: Point, r: Point) -> int:
    """Orientation of the ordered triple: +1 CCW, -1 CW, 0 collinear."""
    cross = (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x)
    if cross > _EPS:
        return 1
    if cross < -_EPS:
        return -1
    return 0
