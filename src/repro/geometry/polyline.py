"""Polylines: walls and drawn path strokes in the Space Modeler.

A polyline is an open chain of vertices on one floor.  Walls in the DSM are
polylines; the cleaning layer checks whether a straight-line move crosses a
wall to decide if the indoor walking path must detour through doors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import GeometryError
from .bbox import BoundingBox
from .point import Point
from .segment import Segment


@dataclass(frozen=True)
class Polyline:
    """An open chain of two or more vertices on a single floor."""

    vertices: tuple[Point, ...]
    _bbox: BoundingBox = field(init=False, repr=False, compare=False)

    def __init__(self, vertices: list[Point] | tuple[Point, ...]):
        vertices = tuple(vertices)
        if len(vertices) < 2:
            raise GeometryError(f"polyline needs >= 2 vertices, got {len(vertices)}")
        floors = {v.floor for v in vertices}
        if len(floors) != 1:
            raise GeometryError(f"polyline vertices span floors {sorted(floors)}")
        object.__setattr__(self, "vertices", vertices)
        object.__setattr__(self, "_bbox", BoundingBox.around(list(vertices)))

    @property
    def floor(self) -> int:
        """Floor the polyline lies on."""
        return self.vertices[0].floor

    @property
    def bounds(self) -> BoundingBox:
        """Cached axis-aligned bounding box."""
        return self._bbox

    @property
    def length(self) -> float:
        """Total chain length."""
        return sum(seg.length for seg in self.segments())

    def segments(self) -> list[Segment]:
        """Consecutive vertex-to-vertex segments."""
        return [
            Segment(self.vertices[i], self.vertices[i + 1])
            for i in range(len(self.vertices) - 1)
        ]

    def point_at_fraction(self, fraction: float) -> Point:
        """The point at arc-length ``fraction`` in [0, 1] along the chain."""
        fraction = max(0.0, min(1.0, fraction))
        target = self.length * fraction
        walked = 0.0
        for seg in self.segments():
            if walked + seg.length >= target or seg is self.segments()[-1]:
                remaining = target - walked
                if seg.length == 0.0:
                    return seg.a
                return seg.point_at(min(1.0, remaining / seg.length))
            walked += seg.length
        return self.vertices[-1]

    def distance_to_point(self, point: Point) -> float:
        """Shortest distance from ``point`` to the chain."""
        return min(seg.distance_to_point(point) for seg in self.segments())

    def crosses_segment(self, other: Segment) -> bool:
        """True when any chain segment intersects ``other``.

        This is the wall-crossing test: a straight move whose segment
        crosses a wall polyline is infeasible indoors.
        """
        if other.a.floor != self.floor:
            return False
        if not self._bbox.expand(1e-9).intersects(
            BoundingBox.around([other.a, other.b])
        ):
            return False
        return any(seg.intersects(other) for seg in self.segments())

    def translate(self, dx: float, dy: float) -> "Polyline":
        """A copy shifted by ``(dx, dy)``."""
        return Polyline([v.translate(dx, dy) for v in self.vertices])

    def with_floor(self, floor: int) -> "Polyline":
        """A copy moved to another floor."""
        return Polyline([v.with_floor(floor) for v in self.vertices])

    def __str__(self) -> str:
        return f"Polyline({len(self.vertices)} vertices, floor {self.floor})"
