"""Indoor points: planar coordinates plus a discrete floor number.

The TRIPS data model locates an object as ``(x, y, floor)`` — see Table 1 of
the paper, e.g. ``(5.1, 12.7, 3F)``.  :class:`Point` is the immutable value
type used for positioning records, entity vertices and display points alike.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import GeometryError


@dataclass(frozen=True)
class Point:
    """A point at planar coordinates ``(x, y)`` on a given ``floor``.

    Coordinates are metres in the building's local frame.  Floors are small
    integers (``1`` = ground floor, matching the paper's ``3F`` notation).
    """

    x: float
    y: float
    floor: int = 1

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise GeometryError(f"non-finite point coordinates: ({self.x}, {self.y})")

    @property
    def xy(self) -> tuple[float, float]:
        """The planar coordinates as a tuple."""
        return (self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Planar Euclidean distance; raises when floors differ.

        Cross-floor distances have no planar meaning — use the DSM's
        walking-distance graph for those.
        """
        if self.floor != other.floor:
            raise GeometryError(
                f"planar distance undefined across floors {self.floor} and {other.floor}"
            )
        return math.hypot(self.x - other.x, self.y - other.y)

    def planar_distance_to(self, other: "Point") -> float:
        """Euclidean distance ignoring the floor dimension."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """Planar midpoint; keeps this point's floor."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0, self.floor)

    def translate(self, dx: float, dy: float) -> "Point":
        """A copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy, self.floor)

    def with_floor(self, floor: int) -> "Point":
        """A copy placed on a different floor."""
        return Point(self.x, self.y, floor)

    def lerp(self, other: "Point", fraction: float) -> "Point":
        """Linear interpolation towards ``other`` (0 → self, 1 → other).

        The floor snaps to whichever endpoint the fraction is closer to,
        since a point cannot be between floors in the indoor model.
        """
        floor = self.floor if fraction < 0.5 else other.floor
        return Point(
            self.x + (other.x - self.x) * fraction,
            self.y + (other.y - self.y) * fraction,
            floor,
        )

    def heading_to(self, other: "Point") -> float:
        """Planar heading (radians, CCW from +x axis) towards ``other``."""
        return math.atan2(other.y - self.y, other.x - self.x)

    def almost_equals(self, other: "Point", tolerance: float = 1e-9) -> bool:
        """Coordinate equality within ``tolerance`` on the same floor."""
        return (
            self.floor == other.floor
            and abs(self.x - other.x) <= tolerance
            and abs(self.y - other.y) <= tolerance
        )

    def __iter__(self):
        yield self.x
        yield self.y

    def __str__(self) -> str:  # paper style: (5.1, 12.7, 3F)
        return f"({self.x:g}, {self.y:g}, {self.floor}F)"


def centroid_of(points: list[Point]) -> Point:
    """Arithmetic mean of points; floor is the majority floor.

    Used for the spatially-central display-point policy and for region
    anchor points.
    """
    if not points:
        raise GeometryError("centroid of empty point list")
    sum_x = sum(p.x for p in points)
    sum_y = sum(p.y for p in points)
    floor_counts: dict[int, int] = {}
    for p in points:
        floor_counts[p.floor] = floor_counts.get(p.floor, 0) + 1
    majority_floor = max(floor_counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]
    count = len(points)
    return Point(sum_x / count, sum_y / count, majority_floor)
