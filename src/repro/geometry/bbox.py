"""Axis-aligned bounding boxes.

Used for spatial-range selection rules in the Data Selector, the covering-
range feature of the annotation layer, and viewport computation in the
viewer's map view.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import GeometryError
from .point import Point


@dataclass(frozen=True)
class BoundingBox:
    """A closed planar axis-aligned rectangle ``[min_x, max_x] × [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise GeometryError(
                f"inverted bounding box: ({self.min_x}, {self.min_y})"
                f"..({self.max_x}, {self.max_y})"
            )

    @classmethod
    def around(cls, points: list[Point]) -> "BoundingBox":
        """The tightest box containing every point (floors ignored)."""
        if not points:
            raise GeometryError("bounding box of empty point list")
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return cls(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Rectangle area."""
        return self.width * self.height

    @property
    def diagonal(self) -> float:
        """Corner-to-corner length — the paper's 'covering range' feature."""
        return math.hypot(self.width, self.height)

    @property
    def center(self) -> Point:
        """Geometric center on floor 1 (planar use only)."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains_point(self, point: Point) -> bool:
        """True if the planar coordinates fall inside the closed box."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """True if the two closed boxes overlap."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """The smallest box covering both."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expand(self, margin: float) -> "BoundingBox":
        """A copy grown by ``margin`` on every side (clamped to a point box)."""
        new_min_x = self.min_x - margin
        new_min_y = self.min_y - margin
        new_max_x = self.max_x + margin
        new_max_y = self.max_y + margin
        if new_max_x < new_min_x:
            new_min_x = new_max_x = (self.min_x + self.max_x) / 2.0
        if new_max_y < new_min_y:
            new_min_y = new_max_y = (self.min_y + self.max_y) / 2.0
        return BoundingBox(new_min_x, new_min_y, new_max_x, new_max_y)

    def corners(self, floor: int = 1) -> list[Point]:
        """CCW corner points starting at (min_x, min_y)."""
        return [
            Point(self.min_x, self.min_y, floor),
            Point(self.max_x, self.min_y, floor),
            Point(self.max_x, self.max_y, floor),
            Point(self.min_x, self.max_y, floor),
        ]
