"""Planar geometry engine for indoor spaces (substrate S1).

Implements, from scratch, the shape types and predicates the rest of the
library needs: points with floors, segments, polylines (walls), polygons
(rooms/regions), circles (kiosks), bounding boxes, and the trajectory
measurements behind the annotation layer's features.
"""

from .bbox import BoundingBox
from .circle import Circle
from .measure import (
    count_turns,
    covering_range,
    floor_changes,
    location_variance,
    max_speed,
    mean_speed,
    path_length,
    radius_of_gyration,
    speeds,
    straightness,
)
from .point import Point, centroid_of
from .polygon import Polygon
from .polyline import Polyline
from .predicates import (
    AreaShape,
    Shape,
    as_polygon,
    shape_anchor,
    shape_area,
    shape_bounds,
    shape_contains,
    shape_distance_to_point,
    shape_floor,
    shapes_intersect,
)
from .segment import Segment, orientation

__all__ = [
    "AreaShape",
    "BoundingBox",
    "Circle",
    "Point",
    "Polygon",
    "Polyline",
    "Segment",
    "Shape",
    "as_polygon",
    "centroid_of",
    "count_turns",
    "covering_range",
    "floor_changes",
    "location_variance",
    "max_speed",
    "mean_speed",
    "orientation",
    "path_length",
    "radius_of_gyration",
    "shape_anchor",
    "shape_area",
    "shape_bounds",
    "shape_contains",
    "shape_distance_to_point",
    "shape_floor",
    "shapes_intersect",
    "speeds",
    "straightness",
]
