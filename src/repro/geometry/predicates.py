"""Shape-generic predicates over the geometry value types.

The DSM stores entity footprints as polygons, polylines, circles or bare
points; these helpers dispatch on the shape type so DSM and annotation code
never needs per-type branching.
"""

from __future__ import annotations

from typing import Union

from ..errors import GeometryError
from .bbox import BoundingBox
from .circle import Circle
from .point import Point
from .polygon import Polygon
from .polyline import Polyline
from .segment import Segment

#: Any drawable footprint shape.
Shape = Union[Point, Segment, Polyline, Polygon, Circle]

#: Shapes that enclose area and can contain points.
AreaShape = Union[Polygon, Circle]


def shape_floor(shape: Shape) -> int:
    """The floor a shape lies on."""
    if isinstance(shape, Point):
        return shape.floor
    return shape.floor


def shape_bounds(shape: Shape) -> BoundingBox:
    """Axis-aligned bounding box of any shape."""
    if isinstance(shape, Point):
        return BoundingBox(shape.x, shape.y, shape.x, shape.y)
    if isinstance(shape, Segment):
        return BoundingBox.around([shape.a, shape.b])
    return shape.bounds


def shape_anchor(shape: Shape) -> Point:
    """A representative point: centroid for areas, midpoint for lines."""
    if isinstance(shape, Point):
        return shape
    if isinstance(shape, Segment):
        return shape.midpoint
    if isinstance(shape, Polyline):
        return shape.point_at_fraction(0.5)
    return shape.centroid


def shape_contains(shape: Shape, point: Point, tolerance: float = 1e-9) -> bool:
    """Membership test: interior for area shapes, proximity for lines/points."""
    if isinstance(shape, Point):
        return shape.almost_equals(point, tolerance)
    if isinstance(shape, Segment):
        return shape.contains_point(point, tolerance)
    if isinstance(shape, Polyline):
        return (
            point.floor == shape.floor and shape.distance_to_point(point) <= tolerance
        )
    return shape.contains_point(point)


def shape_distance_to_point(shape: Shape, point: Point) -> float:
    """Planar distance from a shape to a point (0 if contained)."""
    if point.floor != shape_floor(shape):
        raise GeometryError("shape-point distance undefined across floors")
    if isinstance(shape, Point):
        return shape.planar_distance_to(point)
    return shape.distance_to_point(point)


def shape_area(shape: Shape) -> float:
    """Enclosed area; 0 for points and line shapes."""
    if isinstance(shape, (Polygon, Circle)):
        return shape.area
    return 0.0


def as_polygon(shape: Shape, circle_sides: int = 24) -> Polygon:
    """A polygon view of an area shape (circles are approximated)."""
    if isinstance(shape, Polygon):
        return shape
    if isinstance(shape, Circle):
        return shape.to_polygon(circle_sides)
    raise GeometryError(f"shape {type(shape).__name__} has no polygon form")


def shapes_intersect(first: Shape, second: Shape) -> bool:
    """True when the two shapes share at least one point (same floor)."""
    if shape_floor(first) != shape_floor(second):
        return False
    if not shape_bounds(first).expand(1e-9).intersects(shape_bounds(second)):
        return False
    # Normalize ordering so we only implement each unordered pair once.
    rank = {Point: 0, Segment: 1, Polyline: 2, Circle: 3, Polygon: 4}
    if rank[type(first)] > rank[type(second)]:
        first, second = second, first
    if isinstance(first, Point):
        return shape_contains(second, first)
    if isinstance(first, Segment):
        return _segment_intersects(first, second)
    if isinstance(first, Polyline):
        return _polyline_intersects(first, second)
    if isinstance(first, Circle):
        if isinstance(second, Circle):
            return first.intersects_circle(second)
        return _circle_intersects_polygon(first, second)
    assert isinstance(first, Polygon) and isinstance(second, Polygon)
    return first.intersects(second)


def _segment_intersects(segment: Segment, other: Shape) -> bool:
    if isinstance(other, Segment):
        return segment.intersects(other)
    if isinstance(other, Polyline):
        return other.crosses_segment(segment)
    if isinstance(other, Circle):
        return other.intersects_segment(segment)
    assert isinstance(other, Polygon)
    if other.contains_point(segment.a) or other.contains_point(segment.b):
        return True
    return any(edge.intersects(segment) for edge in other.edges())


def _polyline_intersects(polyline: Polyline, other: Shape) -> bool:
    if isinstance(other, Polyline):
        return any(other.crosses_segment(seg) for seg in polyline.segments())
    if isinstance(other, Circle):
        return any(other.intersects_segment(seg) for seg in polyline.segments())
    assert isinstance(other, Polygon)
    if any(other.contains_point(v) for v in polyline.vertices):
        return True
    return any(
        edge.intersects(seg) for seg in polyline.segments() for edge in other.edges()
    )


def _circle_intersects_polygon(circle: Circle, polygon: Polygon) -> bool:
    if polygon.contains_point(circle.center):
        return True
    return any(circle.intersects_segment(edge) for edge in polygon.edges())
