"""Simple polygons: the footprint shape of rooms, hallways and regions.

The Space Modeler's drawing tool (paper Figure 2) produces polygons for
rooms and semantic regions; the DSM stores them and the annotation layer
tests cleaned positioning records against them.  Polygons here are simple
(non-self-intersecting), stored as an ordered vertex ring without a repeated
closing vertex, all on one floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import GeometryError
from .bbox import BoundingBox
from .point import Point
from .segment import Segment

_EPS = 1e-9


@dataclass(frozen=True)
class Polygon:
    """A simple polygon on a single floor.

    Vertices may be given in either winding; ``signed_area`` exposes the
    winding and ``normalized`` rewinds to counter-clockwise.
    """

    vertices: tuple[Point, ...]
    _bbox: BoundingBox = field(init=False, repr=False, compare=False)

    def __init__(self, vertices: list[Point] | tuple[Point, ...]):
        vertices = tuple(vertices)
        if len(vertices) < 3:
            raise GeometryError(f"polygon needs >= 3 vertices, got {len(vertices)}")
        floors = {v.floor for v in vertices}
        if len(floors) != 1:
            raise GeometryError(f"polygon vertices span floors {sorted(floors)}")
        # Drop an explicitly repeated closing vertex for canonical storage.
        if vertices[0].almost_equals(vertices[-1]) and len(vertices) > 3:
            vertices = vertices[:-1]
        object.__setattr__(self, "vertices", vertices)
        object.__setattr__(self, "_bbox", BoundingBox.around(list(vertices)))

    @classmethod
    def rectangle(
        cls, min_x: float, min_y: float, max_x: float, max_y: float, floor: int = 1
    ) -> "Polygon":
        """Axis-aligned rectangle, the most common room shape."""
        if max_x <= min_x or max_y <= min_y:
            raise GeometryError("rectangle needs positive width and height")
        return cls(
            [
                Point(min_x, min_y, floor),
                Point(max_x, min_y, floor),
                Point(max_x, max_y, floor),
                Point(min_x, max_y, floor),
            ]
        )

    @classmethod
    def regular(
        cls, center: Point, radius: float, sides: int, floor: int | None = None
    ) -> "Polygon":
        """Regular polygon approximation used when rasterizing circles."""
        if sides < 3:
            raise GeometryError("regular polygon needs >= 3 sides")
        if radius <= 0:
            raise GeometryError("regular polygon needs positive radius")
        if floor is None:
            floor = center.floor
        step = 2.0 * math.pi / sides
        return cls(
            [
                Point(
                    center.x + radius * math.cos(i * step),
                    center.y + radius * math.sin(i * step),
                    floor,
                )
                for i in range(sides)
            ]
        )

    @property
    def floor(self) -> int:
        """Floor the polygon lies on."""
        return self.vertices[0].floor

    @property
    def bounds(self) -> BoundingBox:
        """Cached axis-aligned bounding box."""
        return self._bbox

    @property
    def signed_area(self) -> float:
        """Shoelace area; positive for counter-clockwise winding."""
        total = 0.0
        verts = self.vertices
        for i, v in enumerate(verts):
            w = verts[(i + 1) % len(verts)]
            total += v.x * w.y - w.x * v.y
        return total / 2.0

    @property
    def area(self) -> float:
        """Unsigned polygon area."""
        return abs(self.signed_area)

    @property
    def perimeter(self) -> float:
        """Total edge length."""
        return sum(edge.length for edge in self.edges())

    @property
    def centroid(self) -> Point:
        """Area centroid (falls back to vertex mean when degenerate)."""
        signed = self.signed_area
        if abs(signed) <= _EPS:
            sum_x = sum(v.x for v in self.vertices)
            sum_y = sum(v.y for v in self.vertices)
            count = len(self.vertices)
            return Point(sum_x / count, sum_y / count, self.floor)
        cx = cy = 0.0
        verts = self.vertices
        for i, v in enumerate(verts):
            w = verts[(i + 1) % len(verts)]
            cross = v.x * w.y - w.x * v.y
            cx += (v.x + w.x) * cross
            cy += (v.y + w.y) * cross
        factor = 1.0 / (6.0 * signed)
        return Point(cx * factor, cy * factor, self.floor)

    def edges(self) -> list[Segment]:
        """The boundary segments in ring order."""
        verts = self.vertices
        return [
            Segment(verts[i], verts[(i + 1) % len(verts)]) for i in range(len(verts))
        ]

    def normalized(self) -> "Polygon":
        """A counter-clockwise copy (reverses clockwise rings)."""
        if self.signed_area < 0:
            return Polygon(tuple(reversed(self.vertices)))
        return self

    def is_simple(self) -> bool:
        """True when no two non-adjacent edges intersect."""
        edge_list = self.edges()
        count = len(edge_list)
        for i in range(count):
            for j in range(i + 1, count):
                if j == i + 1 or (i == 0 and j == count - 1):
                    continue  # adjacent edges legitimately share a vertex
                if edge_list[i].intersects(edge_list[j]):
                    return False
        return True

    def is_convex(self) -> bool:
        """True when every interior angle turns the same way."""
        verts = self.vertices
        count = len(verts)
        sign = 0
        for i in range(count):
            a, b, c = verts[i], verts[(i + 1) % count], verts[(i + 2) % count]
            cross = (b.x - a.x) * (c.y - b.y) - (b.y - a.y) * (c.x - b.x)
            if abs(cross) <= _EPS:
                continue
            current = 1 if cross > 0 else -1
            if sign == 0:
                sign = current
            elif sign != current:
                return False
        return True

    def contains_point(self, point: Point, include_boundary: bool = True) -> bool:
        """Ray-casting point-in-polygon with an explicit boundary rule."""
        if point.floor != self.floor:
            return False
        if not self._bbox.contains_point(point):
            return False
        on_boundary = any(
            edge.distance_to_point(point) <= 1e-9 for edge in self.edges()
        )
        if on_boundary:
            return include_boundary
        inside = False
        verts = self.vertices
        j = len(verts) - 1
        for i in range(len(verts)):
            vi, vj = verts[i], verts[j]
            if (vi.y > point.y) != (vj.y > point.y):
                x_cross = vj.x + (point.y - vj.y) * (vi.x - vj.x) / (vi.y - vj.y)
                if point.x < x_cross:
                    inside = not inside
            j = i
        return inside

    def distance_to_point(self, point: Point) -> float:
        """0 inside; otherwise the distance to the nearest boundary point."""
        if self.contains_point(point):
            return 0.0
        return min(edge.distance_to_point(point) for edge in self.edges())

    def boundary_distance(self, point: Point) -> float:
        """Distance from ``point`` to the boundary ring (inside or out)."""
        return min(edge.distance_to_point(point) for edge in self.edges())

    def intersects(self, other: "Polygon") -> bool:
        """True when the two polygons share interior or boundary points."""
        if self.floor != other.floor:
            return False
        if not self._bbox.intersects(other._bbox):
            return False
        for edge in self.edges():
            for other_edge in other.edges():
                if edge.intersects(other_edge):
                    return True
        return other.contains_point(self.vertices[0]) or self.contains_point(
            other.vertices[0]
        )

    def contains_polygon(self, other: "Polygon") -> bool:
        """True when every vertex of ``other`` lies inside and no edges cross."""
        if self.floor != other.floor:
            return False
        if not all(self.contains_point(v) for v in other.vertices):
            return False
        for edge in self.edges():
            for other_edge in other.edges():
                hit = edge.intersection(other_edge)
                if hit is not None:
                    # A shared boundary point is fine; a proper crossing is not.
                    if not (
                        edge.contains_point(hit, 1e-7)
                        and any(
                            hit.almost_equals(v, 1e-7)
                            for v in (edge.a, edge.b, other_edge.a, other_edge.b)
                        )
                    ):
                        if not edge.contains_point(hit, 1e-7):
                            continue
                        return False
        return True

    def shared_boundary_with(
        self, other: "Polygon", tolerance: float = 1e-6
    ) -> list[Segment]:
        """Edge pieces of ``self`` that lie on ``other``'s boundary.

        The DSM topology builder uses this to decide whether two partitions
        are wall-adjacent (and hence whether a door between them is valid).
        """
        if self.floor != other.floor:
            return []
        shared: list[Segment] = []
        for edge in self.edges():
            samples = 8
            on_count = 0
            for i in range(samples + 1):
                pt = edge.point_at(i / samples)
                if other.boundary_distance(pt) <= tolerance:
                    on_count += 1
            if on_count == samples + 1 and edge.length > tolerance:
                shared.append(edge)
            elif on_count >= 2:
                # Partial overlap: keep the longest run of on-boundary samples.
                run = self._longest_on_boundary_run(edge, other, samples, tolerance)
                if run is not None:
                    shared.append(run)
        return shared

    def _longest_on_boundary_run(
        self, edge: Segment, other: "Polygon", samples: int, tolerance: float
    ) -> Segment | None:
        flags = [
            other.boundary_distance(edge.point_at(i / samples)) <= tolerance
            for i in range(samples + 1)
        ]
        best_len, best_range = 0, None
        start = None
        for i, flag in enumerate(flags + [False]):
            if flag and start is None:
                start = i
            elif not flag and start is not None:
                if i - start > best_len:
                    best_len, best_range = i - start, (start, i - 1)
                start = None
        if best_range is None or best_len < 2:
            return None
        a = edge.point_at(best_range[0] / samples)
        b = edge.point_at(best_range[1] / samples)
        seg = Segment(a, b)
        if seg.length <= tolerance:
            return None
        return seg

    def translate(self, dx: float, dy: float) -> "Polygon":
        """A copy shifted by ``(dx, dy)``."""
        return Polygon([v.translate(dx, dy) for v in self.vertices])

    def with_floor(self, floor: int) -> "Polygon":
        """A copy moved to another floor (same footprint)."""
        return Polygon([v.with_floor(floor) for v in self.vertices])

    def sample_interior_point(self) -> Point:
        """Some point strictly inside the polygon.

        Prefers the centroid; for non-convex shapes where the centroid falls
        outside, probes midpoints between the centroid and each vertex.
        """
        candidate = self.centroid
        if self.contains_point(candidate, include_boundary=False):
            return candidate
        for vertex in self.vertices:
            for fraction in (0.5, 0.25, 0.75):
                probe = candidate.lerp(vertex, fraction)
                if self.contains_point(probe, include_boundary=False):
                    return probe
        raise GeometryError("could not find interior point; polygon degenerate?")

    def __str__(self) -> str:
        return f"Polygon({len(self.vertices)} vertices, floor {self.floor})"
