"""Circles: kiosks, pillars and round semantic regions in floorplans.

The Space Modeler's drawing tool supports circles (paper §3, Figure 2); the
DSM keeps them as first-class shapes and converts to polygon approximations
only where ring topology is required.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import GeometryError
from .bbox import BoundingBox
from .point import Point
from .polygon import Polygon
from .segment import Segment


@dataclass(frozen=True)
class Circle:
    """A circle with center and radius on the center's floor."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.radius) or self.radius <= 0:
            raise GeometryError(f"circle needs positive finite radius, got {self.radius}")

    @property
    def floor(self) -> int:
        """Floor of the circle's center."""
        return self.center.floor

    @property
    def area(self) -> float:
        """Disc area."""
        return math.pi * self.radius * self.radius

    @property
    def perimeter(self) -> float:
        """Circumference."""
        return 2.0 * math.pi * self.radius

    @property
    def bounds(self) -> BoundingBox:
        """Axis-aligned bounding box."""
        return BoundingBox(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    @property
    def centroid(self) -> Point:
        """The center (mirrors the Polygon interface)."""
        return self.center

    def contains_point(self, point: Point, include_boundary: bool = True) -> bool:
        """Disc membership with an explicit boundary rule."""
        if point.floor != self.floor:
            return False
        dist = self.center.planar_distance_to(point)
        if include_boundary:
            return dist <= self.radius + 1e-9
        return dist < self.radius - 1e-9

    def distance_to_point(self, point: Point) -> float:
        """0 inside the disc; otherwise distance to the rim."""
        dist = self.center.planar_distance_to(point)
        return max(0.0, dist - self.radius)

    def intersects_circle(self, other: "Circle") -> bool:
        """True when the discs overlap."""
        if self.floor != other.floor:
            return False
        return (
            self.center.planar_distance_to(other.center)
            <= self.radius + other.radius + 1e-9
        )

    def intersects_segment(self, segment: Segment) -> bool:
        """True when the segment touches the disc."""
        if segment.a.floor != self.floor:
            return False
        return segment.distance_to_point(self.center) <= self.radius + 1e-9

    def to_polygon(self, sides: int = 24) -> Polygon:
        """A regular-polygon approximation for topology computations."""
        return Polygon.regular(self.center, self.radius, sides)

    def translate(self, dx: float, dy: float) -> "Circle":
        """A copy shifted by ``(dx, dy)``."""
        return Circle(self.center.translate(dx, dy), self.radius)

    def with_floor(self, floor: int) -> "Circle":
        """A copy moved to another floor."""
        return Circle(self.center.with_floor(floor), self.radius)

    def __str__(self) -> str:
        return f"Circle(center={self.center}, r={self.radius:g})"
