"""Trajectory measurements shared by the annotation feature extractor.

The TRIPS annotation layer extracts, per data snippet, "positioning location
variance, traveling distance and speed, covering range, number of turns,
etc." (paper §3).  The primitives live here so both the feature extractor
and the assessment metrics use identical definitions.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import GeometryError
from .bbox import BoundingBox
from .point import Point


def path_length(points: list[Point]) -> float:
    """Total planar length of the chain through ``points`` in order.

    Cross-floor steps contribute only their planar component; the floor
    change itself is measured separately (see :func:`floor_changes`).
    """
    if len(points) < 2:
        return 0.0
    total = 0.0
    for a, b in zip(points, points[1:]):
        total += a.planar_distance_to(b)
    return total


def location_variance(points: list[Point]) -> float:
    """Mean squared planar deviation from the centroid (m²)."""
    if not points:
        raise GeometryError("location variance of empty point list")
    xs = np.array([p.x for p in points])
    ys = np.array([p.y for p in points])
    return float(np.var(xs) + np.var(ys))


def radius_of_gyration(points: list[Point]) -> float:
    """Root-mean-square distance from the centroid (m)."""
    return math.sqrt(location_variance(points))


def covering_range(points: list[Point]) -> float:
    """Diagonal of the bounding box — the paper's covering-range feature."""
    if not points:
        raise GeometryError("covering range of empty point list")
    if len(points) == 1:
        return 0.0
    return BoundingBox.around(points).diagonal


def count_turns(points: list[Point], angle_threshold: float = math.pi / 4) -> int:
    """Number of heading changes sharper than ``angle_threshold`` radians.

    Zero-length steps are skipped so jittery stationary clouds do not count
    every sample as a turn.
    """
    headings: list[float] = []
    for a, b in zip(points, points[1:]):
        if a.planar_distance_to(b) > 1e-9:
            headings.append(a.heading_to(b))
    turns = 0
    for h1, h2 in zip(headings, headings[1:]):
        delta = abs(_wrap_angle(h2 - h1))
        if delta >= angle_threshold:
            turns += 1
    return turns


def floor_changes(floors: list[int]) -> int:
    """Number of consecutive floor transitions in the sequence."""
    return sum(1 for a, b in zip(floors, floors[1:]) if a != b)


def straightness(points: list[Point]) -> float:
    """End-to-end displacement over path length, in [0, 1].

    1 means a perfectly straight walk (pass-by-like); values near 0 mean
    wandering or stationary jitter (stay-like).
    """
    length = path_length(points)
    if length <= 1e-12:
        return 0.0
    displacement = points[0].planar_distance_to(points[-1])
    return min(1.0, displacement / length)


def speeds(points: list[Point], timestamps: list[float]) -> list[float]:
    """Per-step planar speeds (m/s); zero-duration steps are skipped."""
    if len(points) != len(timestamps):
        raise GeometryError("points and timestamps must align")
    values: list[float] = []
    for (a, b), (t1, t2) in zip(
        zip(points, points[1:]), zip(timestamps, timestamps[1:])
    ):
        dt = t2 - t1
        if dt > 1e-12:
            values.append(a.planar_distance_to(b) / dt)
    return values


def mean_speed(points: list[Point], timestamps: list[float]) -> float:
    """Path length over elapsed time (m/s); 0 for instantaneous snippets."""
    if len(points) < 2:
        return 0.0
    elapsed = timestamps[-1] - timestamps[0]
    if elapsed <= 1e-12:
        return 0.0
    return path_length(points) / elapsed


def max_speed(points: list[Point], timestamps: list[float]) -> float:
    """Largest per-step speed (m/s); 0 when undefined."""
    step_speeds = speeds(points, timestamps)
    return max(step_speeds) if step_speeds else 0.0


def _wrap_angle(angle: float) -> float:
    """Wrap an angle to (-pi, pi]."""
    while angle <= -math.pi:
        angle += 2.0 * math.pi
    while angle > math.pi:
        angle -= 2.0 * math.pi
    return angle
