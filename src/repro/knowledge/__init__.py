"""Epoch-based knowledge lifecycle: stores + pluggable retention.

Long-running venues used to fold mobility evidence forever, so the prior
drifted away from current behaviour — semester vs. break, weekday vs.
weekend.  This subsystem owns knowledge lifetime instead of leaving it
implicit in the engine and live service:

- :class:`KnowledgeStore` wraps one venue's live
  :class:`~repro.core.complementing.MobilityKnowledge` plus a ring of
  per-epoch :class:`~repro.core.complementing.PartialKnowledge`
  snapshots (one epoch per ingestion window in the live service);
- a :class:`RetentionPolicy` decides what the prior remembers:
  :class:`Unbounded` (everything — the default, bit-for-bit the old
  behaviour), :class:`SlidingWindow` (exact subtraction of expired
  epochs via the shard algebra's inverse), or :class:`ExponentialDecay`
  (recency-weighted counts, no ring at all);
- :func:`parse_retention` turns the ``"unbounded"`` / ``"window:N"`` /
  ``"window:Ns"`` / ``"decay:H"`` spec strings used by
  ``EngineConfig.retention``, task configs and ``trips serve
  --retention`` into policies, with validation.

Retirement is exact, not approximate: retiring an epoch leaves knowledge
bit-for-bit identical to never having folded it (see
:meth:`~repro.core.complementing.MobilityKnowledge.unfold`), so a
sliding-window prior is *the* prior over the retained windows.
"""

from .retention import (
    DECAY_PRUNE_BELOW,
    ExponentialDecay,
    RetentionPolicy,
    SlidingWindow,
    Unbounded,
    parse_retention,
)
from .store import Epoch, KnowledgeStore

__all__ = [
    "DECAY_PRUNE_BELOW",
    "Epoch",
    "ExponentialDecay",
    "KnowledgeStore",
    "RetentionPolicy",
    "SlidingWindow",
    "Unbounded",
    "parse_retention",
]
