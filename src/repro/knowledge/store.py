"""The knowledge store: epoch-ringed ownership of mobility knowledge.

Before this subsystem existed, knowledge lifetime was implicit: the
engine's incremental path mutated a bare
:class:`~repro.core.complementing.MobilityKnowledge` and the live service
folded every window into it forever.  :class:`KnowledgeStore` makes the
lifecycle explicit and pluggable:

- **Folding** still goes through the exact shard algebra — every
  :meth:`fold` adds a :class:`~repro.core.complementing.PartialKnowledge`
  into the live knowledge, bit-for-bit identical to the pre-store path.
- **Epochs** group folds in time: :meth:`roll` closes the current epoch
  (the live service rolls once per ingestion window) and snapshots its
  shard onto a ring when the retention policy needs it.
- **Retention** (:mod:`repro.knowledge.retention`) decides what the live
  knowledge remembers: everything (:class:`~repro.knowledge.Unbounded`),
  the newest epochs with exact subtraction of the rest
  (:class:`~repro.knowledge.SlidingWindow`), or a recency-weighted decay
  (:class:`~repro.knowledge.ExponentialDecay`).

Stores speak the same algebra as shards, so two stores' retained state
can merge (:meth:`to_partial` + fold) with the bit-for-bit guarantees of
the engine's sharded barrier — the hook distributed ingestion needs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..core.complementing import MobilityKnowledge, PartialKnowledge
from ..errors import InferenceError
from ..telemetry import get_registry
from .retention import RetentionPolicy, parse_retention


@dataclass
class Epoch:
    """One closed epoch: a shard of folds plus its data-time span.

    ``start``/``end`` are *data* timestamps (earliest / latest record in
    the folded windows), not wall clocks — TTL retention must behave the
    same on a replayed feed as on a live one.
    """

    index: int
    partial: PartialKnowledge
    start: float | None = None
    end: float | None = None

    @property
    def sequences(self) -> int:
        """Sequences folded during this epoch."""
        return self.partial.sequences_seen


class KnowledgeStore:
    """Owns one venue's live knowledge and its epoch lifecycle.

    Construct from a region vocabulary (plus smoothing and a retention
    policy or spec string), or adopt an existing knowledge object with
    :meth:`wrap` — the legacy engine path does the latter so folding
    through a store mutates the very same
    :class:`~repro.core.complementing.MobilityKnowledge` callers already
    hold.  ``fold`` accumulates into the open epoch; ``roll`` closes it
    and lets the retention policy retire or discount old evidence.
    """

    def __init__(
        self,
        regions: list[str] | None = None,
        *,
        smoothing: float = 1.0,
        retention: "str | RetentionPolicy | None" = None,
        knowledge: MobilityKnowledge | None = None,
    ):
        if knowledge is None:
            if regions is None:
                raise InferenceError(
                    "a knowledge store needs a region vocabulary or an "
                    "existing knowledge object"
                )
            knowledge = MobilityKnowledge(
                regions=list(regions), smoothing=smoothing
            )
        self.knowledge = knowledge
        self.retention = parse_retention(retention)
        #: Closed, still-retained epochs, oldest first (subtractive
        #: policies only; unbounded/decay stores keep this empty).
        self.epochs: "deque[Epoch]" = deque()
        self.epochs_rolled = 0
        self.epochs_retired = 0
        #: Accumulate the open epoch's shard even when the retention
        #: policy keeps no ring, so :attr:`last_epoch` always carries the
        #: window's exact delta — the durability layer's WAL payload.
        self.track_deltas = False
        #: The most recently closed epoch (``None`` before the first
        #: roll; its ``partial`` is empty unless the ring or
        #: :attr:`track_deltas` accumulated the open epoch).
        self.last_epoch: "Epoch | None" = None
        self._current: PartialKnowledge | None = None
        self._current_start: float | None = None
        self._current_end: float | None = None
        # Monotone data-time watermark: the newest timestamp ever folded.
        # Deliberately not derived from the ring — retention may retire
        # the newest timestamped epoch (e.g. the count bound of a
        # combined window:N+Ts policy), and the TTL "present" must never
        # move backwards because evidence aged out.
        self._newest_folded: float | None = None

    @classmethod
    def wrap(
        cls,
        knowledge: MobilityKnowledge,
        retention: "str | RetentionPolicy | None" = None,
    ) -> "KnowledgeStore":
        """Adopt an existing knowledge object (default: unbounded).

        Folding through the wrapping store mutates ``knowledge`` in
        place, which is what keeps the legacy
        ``Engine.translate_increment(sequences, knowledge)`` signature
        exact: the caller's object *is* the store's live knowledge.
        """
        return cls(knowledge=knowledge, retention=retention)

    # ------------------------------------------------------------------
    # Folding and rolling
    # ------------------------------------------------------------------
    def fold(
        self,
        partial: PartialKnowledge,
        start: float | None = None,
        end: float | None = None,
    ) -> None:
        """Fold one shard into the live knowledge and the open epoch.

        ``start``/``end`` bound the folded records in data time; the open
        epoch's span widens to cover them (TTL retention reads the span
        at roll time).  The shard itself is never mutated or retained —
        subtractive policies accumulate a store-owned copy.
        """
        self.knowledge.fold(partial)
        if self.retention.keeps_epochs or self.track_deltas:
            if self._current is None:
                self._current = PartialKnowledge(
                    regions=list(self.knowledge.regions)
                )
            self._current.add(partial)
        if start is not None and (
            self._current_start is None or start < self._current_start
        ):
            self._current_start = start
        if end is not None and (
            self._current_end is None or end > self._current_end
        ):
            self._current_end = end
        if end is not None and (
            self._newest_folded is None or end > self._newest_folded
        ):
            self._newest_folded = end

    def roll(self, now: float | None = None) -> list[Epoch]:
        """Close the open epoch and apply retention; returns retirals.

        ``now`` is the data-time "present" the TTL bound measures
        against; it defaults to the newest timestamp this store has
        folded, so replaying a recorded feed retires exactly what a live
        run would have.  Rolling with nothing folded still closes a
        (zero-count) epoch: ``window:N`` deterministically means "the
        last N rolls", whether or not every roll carried evidence.
        """
        current = self._current
        if current is None:
            current = PartialKnowledge(
                regions=list(self.knowledge.regions)
            )
        closed = Epoch(
            index=self.epochs_rolled,
            partial=current,
            start=self._current_start,
            end=self._current_end,
        )
        if self.retention.keeps_epochs:
            self.epochs.append(closed)
        self.last_epoch = closed
        self.epochs_rolled += 1
        self._current = None
        self._current_start = None
        self._current_end = None
        if now is None:
            now = self.newest_timestamp
        retired = list(self.retention.on_roll(self, now))
        self.epochs_retired += len(retired)
        registry = get_registry()
        if registry.enabled:
            registry.counter("trips_knowledge_rolls_total").inc()
            if retired:
                registry.counter("trips_knowledge_retired_total").inc(
                    len(retired)
                )
        return retired

    def retire(self, epoch: Epoch) -> Epoch:
        """Unfold one retained epoch out of the live knowledge.

        Exact: the post-retire knowledge equals — bit for bit — knowledge
        that never folded the epoch.  Normally driven by the retention
        policy from :meth:`roll`, but callable directly.
        """
        if epoch not in self.epochs:
            raise InferenceError("epoch is not retained by this store")
        self.knowledge.unfold(epoch.partial)
        self.epochs.remove(epoch)
        return epoch

    # ------------------------------------------------------------------
    # Introspection and merging
    # ------------------------------------------------------------------
    @property
    def retained_epochs(self) -> int:
        """Closed epochs still contributing to the live knowledge.

        For subtractive policies this is the ring length; unbounded and
        decay stores retain (at full or decayed weight) every epoch ever
        rolled.
        """
        if self.retention.keeps_epochs:
            return len(self.epochs)
        return self.epochs_rolled

    @property
    def newest_timestamp(self) -> float | None:
        """The newest data timestamp *ever* folded (open epoch included).

        A monotone watermark, not a scan of the retained ring: under a
        combined ``window:N+Ts`` policy the count bound can retire the
        newest timestamped epoch, and the data-time "present" that
        :meth:`roll` measures TTL against must not regress (or vanish
        once only quiet epochs remain) just because evidence aged out.
        """
        return self._newest_folded

    def to_partial(self) -> PartialKnowledge:
        """The retained counts as one independent shard (deep copy).

        Two stores' exports merge through the ordinary shard algebra —
        the basis for merging per-instance knowledge under distributed
        ingestion.
        """
        return self.knowledge.to_partial()

    def export_delta(
        self, baseline: PartialKnowledge | None = None
    ) -> PartialKnowledge:
        """The counts folded since ``baseline``, as one shard.

        ``baseline`` is a previous :meth:`to_partial` snapshot of this
        store; the delta is the current export with the baseline
        subtracted through the shard algebra's exact inverse, so it is
        bit-for-bit the epochs folded in between.  With no baseline the
        delta is the full export.  This is the distributed exchange's
        per-epoch-roll export (:mod:`repro.distributed`): under additive
        (unbounded) retention, folding every shard's deltas reproduces
        the single-instance fold exactly.  A store that has *retired or
        rescaled* evidence since the baseline cannot express the change
        as an additive delta — the subtraction raises
        :class:`~repro.errors.InferenceError` — which is why the
        exchange requires unbounded retention.
        """
        delta = self.to_partial()
        if baseline is not None:
            delta.subtract(baseline)
        return delta

    def __str__(self) -> str:
        return (
            f"KnowledgeStore({self.retention.name}, "
            f"{self.retained_epochs} retained epochs, {self.knowledge})"
        )
