"""Pluggable retention policies for the epoch-based knowledge lifecycle.

A :class:`~repro.knowledge.KnowledgeStore` closes one *epoch* — one
:class:`~repro.core.complementing.PartialKnowledge` snapshot of recently
folded mobility — per roll (the live service rolls once per ingestion
window) and hands the store to its retention policy.  The policy decides
what the live knowledge remembers:

- :class:`Unbounded` — remember everything, forever; today's behaviour
  and the default.  No epoch ring is materialized, so a store under
  unbounded retention is exactly a bare
  :class:`~repro.core.complementing.MobilityKnowledge` plus bookkeeping.
- :class:`SlidingWindow` — remember the last ``max_epochs`` epochs and/or
  the epochs younger than ``ttl_seconds`` of *data time*.  Expired epochs
  are retired by **subtracting** their shard
  (:meth:`~repro.core.complementing.MobilityKnowledge.unfold`) — an exact
  inverse, so the surviving knowledge is bit-for-bit what it would have
  been had the expired epochs never been folded.
- :class:`ExponentialDecay` — remember everything, but discount it:
  every roll multiplies the aggregates by ``0.5 ** (1 / half_life)``, so
  an epoch's evidence halves after ``half_life`` rolls and the prior
  tracks recent mobility without storing any epoch ring at all.

Policies are addressable by spec string — ``"unbounded"``,
``"window:N"`` (count), ``"window:Ns"`` (data-time TTL seconds),
``"decay:H"`` (half-life in rolls) — parsed by :func:`parse_retention`,
which is what ``EngineConfig.retention``, the task-config
``knowledge_retention`` field and ``trips serve --retention`` validate
against.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from .store import Epoch, KnowledgeStore

#: Decayed entries below this weight are pruned from the aggregates so an
#: eternally-decaying venue's memory stays bounded by recent support.
DECAY_PRUNE_BELOW = 1e-9


@runtime_checkable
class RetentionPolicy(Protocol):
    """What a :class:`~repro.knowledge.KnowledgeStore` asks of retention.

    ``keeps_epochs`` tells the store whether to materialize the closed
    epochs' shards in its ring (subtractive policies need them; unbounded
    and decay do not, keeping per-epoch memory at zero).  ``on_roll``
    runs after every epoch roll and may retire epochs
    (:meth:`KnowledgeStore.retire`) or rescale the live knowledge; it
    returns the epochs it retired, oldest first.
    """

    #: Short spec-style name, e.g. ``"window:4"``; used in stats/CLI echo.
    name: str
    #: Whether the store must keep closed epochs' shards in its ring.
    keeps_epochs: bool

    def on_roll(
        self, store: "KnowledgeStore", now: float | None
    ) -> "list[Epoch]":
        """Apply retention after one epoch roll; returns retired epochs."""
        ...  # pragma: no cover


class Unbounded:
    """Fold forever — the default, and the pre-lifecycle behaviour.

    The store keeps no epoch ring and never retires anything, so its live
    knowledge is bit-for-bit the plain cumulative fold: the PR 3
    invariant (``finalize()`` == one-shot ``Engine.translate_batch``)
    holds unchanged under this policy.
    """

    name = "unbounded"
    keeps_epochs = False

    def on_roll(
        self, store: "KnowledgeStore", now: float | None
    ) -> "list[Epoch]":
        return []

    def __repr__(self) -> str:
        return "Unbounded()"


class SlidingWindow:
    """Keep the newest epochs; retire the rest by exact subtraction.

    ``max_epochs`` bounds the ring by count; ``ttl_seconds`` bounds it by
    *data time* — an epoch whose newest folded record is older than
    ``now - ttl_seconds`` at roll time expires.  Either bound may be used
    alone or both together (whichever expires an epoch first wins).
    Retiring is :meth:`MobilityKnowledge.unfold`, the exact inverse of
    the fold, so the surviving prior equals one built from only the
    retained epochs — not an approximation of it.
    """

    keeps_epochs = True

    def __init__(
        self,
        max_epochs: int | None = None,
        ttl_seconds: float | None = None,
    ):
        if max_epochs is None and ttl_seconds is None:
            raise ConfigError(
                "sliding-window retention needs max_epochs and/or "
                "ttl_seconds"
            )
        if max_epochs is not None and max_epochs < 1:
            raise ConfigError(
                f"max_epochs must be >= 1, got {max_epochs}"
            )
        if ttl_seconds is not None and not (
            math.isfinite(ttl_seconds) and ttl_seconds > 0
        ):
            raise ConfigError(
                f"ttl_seconds must be finite and positive, got {ttl_seconds}"
            )
        self.max_epochs = max_epochs
        self.ttl_seconds = ttl_seconds
        if max_epochs is not None and ttl_seconds is not None:
            self.name = f"window:{max_epochs}+{ttl_seconds:g}s"
        elif max_epochs is not None:
            self.name = f"window:{max_epochs}"
        else:
            self.name = f"window:{ttl_seconds:g}s"

    def on_roll(
        self, store: "KnowledgeStore", now: float | None
    ) -> "list[Epoch]":
        retired = []
        if self.max_epochs is not None:
            while len(store.epochs) > self.max_epochs:
                retired.append(store.retire(store.epochs[0]))
        if self.ttl_seconds is not None and now is not None:
            horizon = now - self.ttl_seconds
            while store.epochs and (
                store.epochs[0].end is None or store.epochs[0].end < horizon
            ):
                retired.append(store.retire(store.epochs[0]))
        return retired

    def __repr__(self) -> str:
        return (
            f"SlidingWindow(max_epochs={self.max_epochs}, "
            f"ttl_seconds={self.ttl_seconds})"
        )


class ExponentialDecay:
    """Discount old mobility instead of forgetting it outright.

    Every epoch roll multiplies the live knowledge's aggregates by
    ``0.5 ** (1 / half_life)``; after ``half_life`` rolls an epoch's
    evidence weighs half, after ``2 * half_life`` a quarter, and so on —
    the counts become a recency-weighted sum over all history.  No epoch
    ring is kept; decayed weights below :data:`DECAY_PRUNE_BELOW` are
    pruned so memory stays bounded by recent support.
    """

    keeps_epochs = False

    def __init__(self, half_life: float):
        if not (math.isfinite(half_life) and half_life > 0):
            raise ConfigError(
                f"decay half-life must be finite and positive, got "
                f"{half_life}"
            )
        self.half_life = half_life
        self.factor = 0.5 ** (1.0 / half_life)
        self.name = f"decay:{half_life:g}"

    def on_roll(
        self, store: "KnowledgeStore", now: float | None
    ) -> "list[Epoch]":
        if store.knowledge is not None:
            store.knowledge.scale(self.factor, prune_below=DECAY_PRUNE_BELOW)
        return []

    def __repr__(self) -> str:
        return f"ExponentialDecay(half_life={self.half_life!r})"


def parse_retention(
    spec: "str | RetentionPolicy | None",
) -> RetentionPolicy:
    """Materialize a retention policy from its spec string.

    Accepts an already-built policy (returned as-is), ``None``
    (unbounded), or one of::

        unbounded          fold forever (default)
        window:N           keep the newest N epochs
        window:Ns          keep epochs newer than N seconds of data time
        decay:H            halve old evidence every H epoch rolls

    Anything else raises :class:`~repro.errors.ConfigError` — this is the
    single validation point shared by ``EngineConfig.retention``, the
    task-config ``knowledge_retention`` field and ``trips serve
    --retention``.
    """
    if spec is None:
        return Unbounded()
    if isinstance(spec, RetentionPolicy) and not isinstance(spec, str):
        return spec
    if not isinstance(spec, str):
        raise ConfigError(
            f"retention must be a spec string or RetentionPolicy, got "
            f"{type(spec).__name__}"
        )
    text = spec.strip().lower()
    if text in ("", "unbounded", "none"):
        return Unbounded()
    kind, separator, argument = text.partition(":")
    if not separator or not argument:
        raise ConfigError(
            f"unknown retention spec {spec!r} (expected 'unbounded', "
            "'window:N', 'window:Ns' or 'decay:H')"
        )
    # ``int``/``float`` accept Python numeric-literal syntax ("1_0"
    # parses as 10, " 10" parses too) — a config surface must not:
    # only canonical digit strings round-trip through policy names and
    # the durable wire format.
    if "_" in argument or argument != argument.strip():
        raise ConfigError(
            f"malformed retention spec {spec!r}: {argument!r} is not a "
            "canonical number (underscores and whitespace are not "
            "accepted)"
        )
    if kind == "window":
        try:
            if argument.endswith("s"):
                return SlidingWindow(ttl_seconds=float(argument[:-1]))
            return SlidingWindow(max_epochs=int(argument))
        except ValueError as exc:
            raise ConfigError(
                f"malformed window retention {spec!r}: {exc}"
            ) from exc
    if kind == "decay":
        try:
            return ExponentialDecay(half_life=float(argument))
        except ValueError as exc:
            raise ConfigError(
                f"malformed decay retention {spec!r}: {exc}"
            ) from exc
    raise ConfigError(
        f"unknown retention spec {spec!r} (expected 'unbounded', "
        "'window:N', 'window:Ns' or 'decay:H')"
    )
