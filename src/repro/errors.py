"""Exception hierarchy for the TRIPS reproduction.

Every error raised by this library derives from :class:`TripsError`, so
callers can guard an entire translation pipeline with a single ``except``
clause while still being able to discriminate failure classes.
"""

from __future__ import annotations


class TripsError(Exception):
    """Base class for all errors raised by this library."""


class GeometryError(TripsError):
    """Invalid geometric construction or degenerate shape."""


class DSMError(TripsError):
    """Digital Space Model construction or consistency failure."""


class DSMValidationError(DSMError):
    """A DSM failed structural validation.

    Carries the list of human-readable problems found so tools can report
    all of them at once instead of failing on the first.
    """

    def __init__(self, problems: list[str]):
        self.problems = list(problems)
        summary = "; ".join(self.problems[:5])
        if len(self.problems) > 5:
            summary += f" (+{len(self.problems) - 5} more)"
        super().__init__(f"DSM validation failed: {summary}")


class ConfigError(TripsError, ValueError):
    """Malformed or inconsistent configuration.

    Also a :class:`ValueError`: a malformed spec string (retention,
    backend name, shard count) is a plain bad value, so callers outside
    this library — argparse handlers, config loaders — can catch the
    builtin without importing the TRIPS hierarchy.
    """


class DataSourceError(TripsError):
    """A positioning data source could not be read or parsed."""


class SelectorError(TripsError):
    """Invalid Data Selector rule or rule combination."""


class CleaningError(TripsError):
    """The cleaning layer could not repair a positioning sequence."""


class AnnotationError(TripsError):
    """The annotation layer failed to produce mobility semantics."""


class ModelNotFittedError(TripsError):
    """A learning model was used before being fitted."""


class LearningError(TripsError):
    """Invalid training data or hyper-parameters for a learning model."""


class InferenceError(TripsError):
    """The complementing layer could not infer missing semantics."""


class PersistenceError(TripsError):
    """Durable state could not be encoded, decoded or replayed.

    Raised by :mod:`repro.durability` for unreadable or corrupt wire
    payloads, unsupported format versions, and snapshot/WAL replays
    that diverge from what the log recorded.
    """


class DispatchError(TripsError):
    """The live service could not route a record to a venue."""


class ViewerError(TripsError):
    """The viewer could not build or render a view."""


class SimulationError(TripsError):
    """The mobility simulator was configured inconsistently."""
