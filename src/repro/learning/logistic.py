"""Multinomial (softmax) logistic regression trained by gradient descent.

The default event-identification model: linear, calibrated probabilities
(useful for the annotator's confidence field), fast on the small designated
training sets the Event Editor produces.
"""

from __future__ import annotations

import numpy as np

from ..errors import LearningError
from .base import Classifier


class SoftmaxRegression(Classifier):
    """L2-regularized multinomial logistic regression.

    Full-batch gradient descent is plenty for Event Editor-scale training
    sets (tens to a few thousand designated segments).
    """

    def __init__(
        self,
        learning_rate: float = 0.1,
        epochs: int = 400,
        l2: float = 1e-3,
        seed: int = 0,
    ):
        super().__init__()
        if learning_rate <= 0:
            raise LearningError(f"learning_rate must be positive, got {learning_rate}")
        if epochs < 1:
            raise LearningError(f"epochs must be >= 1, got {epochs}")
        if l2 < 0:
            raise LearningError(f"l2 must be >= 0, got {l2}")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.seed = seed
        self.weights_: np.ndarray | None = None  # (n_features + 1, n_classes)

    def _fit_encoded(
        self, features: np.ndarray, codes: np.ndarray, n_classes: int
    ) -> None:
        n_samples, n_features = features.shape
        design = np.hstack([features, np.ones((n_samples, 1))])
        rng = np.random.default_rng(self.seed)
        weights = rng.normal(0.0, 0.01, size=(n_features + 1, n_classes))
        one_hot = np.zeros((n_samples, n_classes))
        one_hot[np.arange(n_samples), codes] = 1.0
        for _ in range(self.epochs):
            probabilities = _softmax(design @ weights)
            gradient = design.T @ (probabilities - one_hot) / n_samples
            gradient[:-1] += self.l2 * weights[:-1]  # don't regularize bias
            weights -= self.learning_rate * gradient
        self.weights_ = weights

    def _predict_proba_encoded(self, features: np.ndarray) -> np.ndarray:
        assert self.weights_ is not None
        if features.shape[1] != self.weights_.shape[0] - 1:
            raise LearningError(
                f"model fitted on {self.weights_.shape[0] - 1} features, "
                f"got {features.shape[1]}"
            )
        design = np.hstack([features, np.ones((features.shape[0], 1))])
        return _softmax(design @ self.weights_)


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=1, keepdims=True)
