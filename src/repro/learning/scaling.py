"""Feature standardization.

Snippet features mix scales wildly (variance in m² next to turn counts), so
distance- and gradient-based models need standardization.  The scaler is
fit on training data only and applied to everything downstream.
"""

from __future__ import annotations

import numpy as np

from ..errors import LearningError, ModelNotFittedError


class StandardScaler:
    """Removes the mean and scales to unit variance, column-wise.

    Constant columns (zero variance) are left centered but unscaled, so
    degenerate features cannot produce NaNs.
    """

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and standard deviation."""
        matrix = np.asarray(features, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise LearningError(
                f"scaler needs a non-empty 2-D matrix, got shape {matrix.shape}"
            )
        self.mean_ = matrix.mean(axis=0)
        deviation = matrix.std(axis=0)
        deviation[deviation == 0.0] = 1.0
        self.scale_ = deviation
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Standardize a matrix with the fitted statistics."""
        if self.mean_ is None or self.scale_ is None:
            raise ModelNotFittedError("StandardScaler used before fit()")
        matrix = np.asarray(features, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.shape[1] != self.mean_.shape[0]:
            raise LearningError(
                f"scaler fitted on {self.mean_.shape[0]} features, "
                f"got {matrix.shape[1]}"
            )
        return (matrix - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(features).transform(features)
