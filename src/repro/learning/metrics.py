"""Classification metrics for the event-identification experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import LearningError


def accuracy(truth: list[str], predicted: list[str]) -> float:
    """Fraction of exact label matches."""
    _check_aligned(truth, predicted)
    if not truth:
        return 0.0
    return sum(1 for t, p in zip(truth, predicted) if t == p) / len(truth)


@dataclass(frozen=True)
class ClassReport:
    """Precision / recall / F1 and support for one class."""

    label: str
    precision: float
    recall: float
    f1: float
    support: int


def confusion_matrix(
    truth: list[str], predicted: list[str], labels: list[str] | None = None
) -> tuple[np.ndarray, list[str]]:
    """Counts matrix ``[true, predicted]`` plus its label order."""
    _check_aligned(truth, predicted)
    if labels is None:
        labels = sorted(set(truth) | set(predicted))
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(truth, predicted):
        matrix[index[t], index[p]] += 1
    return matrix, labels


def per_class_report(
    truth: list[str], predicted: list[str], labels: list[str] | None = None
) -> list[ClassReport]:
    """Precision/recall/F1 per class, in label order."""
    matrix, ordered = confusion_matrix(truth, predicted, labels)
    reports: list[ClassReport] = []
    for i, label in enumerate(ordered):
        true_positive = float(matrix[i, i])
        predicted_positive = float(matrix[:, i].sum())
        actual_positive = float(matrix[i, :].sum())
        precision = true_positive / predicted_positive if predicted_positive else 0.0
        recall = true_positive / actual_positive if actual_positive else 0.0
        f1 = (
            2.0 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        reports.append(
            ClassReport(label, precision, recall, f1, int(actual_positive))
        )
    return reports


def macro_f1(truth: list[str], predicted: list[str]) -> float:
    """Unweighted mean F1 across classes present in the truth."""
    reports = [r for r in per_class_report(truth, predicted) if r.support > 0]
    if not reports:
        return 0.0
    return sum(r.f1 for r in reports) / len(reports)


def weighted_f1(truth: list[str], predicted: list[str]) -> float:
    """Support-weighted mean F1."""
    reports = per_class_report(truth, predicted)
    total = sum(r.support for r in reports)
    if total == 0:
        return 0.0
    return sum(r.f1 * r.support for r in reports) / total


def _check_aligned(truth: list[str], predicted: list[str]) -> None:
    if len(truth) != len(predicted):
        raise LearningError(
            f"{len(truth)} truth labels but {len(predicted)} predictions"
        )
