"""Common classifier interface and label handling.

The annotation layer's event identifier is "a learning-based identification
model" (paper §3) trained on Event Editor designations.  The paper does not
fix a model family, so this package ships several; they all implement the
:class:`Classifier` interface below and work on dense numpy feature
matrices with string labels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import LearningError, ModelNotFittedError


class LabelEncoder:
    """Maps string class labels to contiguous integer codes and back."""

    def __init__(self):
        self.classes_: list[str] = []
        self._index: dict[str, int] = {}

    def fit(self, labels: list[str]) -> "LabelEncoder":
        """Learn the label vocabulary (sorted for determinism)."""
        self.classes_ = sorted(set(labels))
        self._index = {label: i for i, label in enumerate(self.classes_)}
        return self

    def transform(self, labels: list[str]) -> np.ndarray:
        """Encode labels to integer codes."""
        try:
            return np.array([self._index[label] for label in labels], dtype=np.int64)
        except KeyError as exc:
            raise LearningError(f"unseen label {exc} at transform time") from exc

    def inverse_transform(self, codes: np.ndarray) -> list[str]:
        """Decode integer codes back to labels."""
        return [self.classes_[int(code)] for code in codes]

    @property
    def n_classes(self) -> int:
        """Number of distinct labels."""
        return len(self.classes_)


class Classifier(ABC):
    """Interface shared by every model in :mod:`repro.learning`."""

    def __init__(self):
        self._encoder: LabelEncoder | None = None

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has completed."""
        return self._encoder is not None

    @property
    def classes(self) -> list[str]:
        """The label vocabulary seen at fit time."""
        self._require_fitted()
        assert self._encoder is not None
        return list(self._encoder.classes_)

    def fit(self, features: np.ndarray, labels: list[str]) -> "Classifier":
        """Train on an ``(n_samples, n_features)`` matrix and labels."""
        features = _as_matrix(features)
        if features.shape[0] != len(labels):
            raise LearningError(
                f"{features.shape[0]} samples but {len(labels)} labels"
            )
        if features.shape[0] == 0:
            raise LearningError("cannot fit on an empty training set")
        encoder = LabelEncoder().fit(list(labels))
        if encoder.n_classes < 2:
            raise LearningError(
                f"training set has {encoder.n_classes} class(es); need >= 2"
            )
        codes = encoder.transform(list(labels))
        self._encoder = encoder
        self._fit_encoded(features, codes, encoder.n_classes)
        return self

    def predict(self, features: np.ndarray) -> list[str]:
        """Predicted labels for an ``(n_samples, n_features)`` matrix."""
        probabilities = self.predict_proba(features)
        codes = np.argmax(probabilities, axis=1)
        assert self._encoder is not None
        return self._encoder.inverse_transform(codes)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Per-class probabilities, shape ``(n_samples, n_classes)``."""
        self._require_fitted()
        features = _as_matrix(features)
        return self._predict_proba_encoded(features)

    def predict_one(self, feature_vector: np.ndarray) -> str:
        """Predicted label for a single feature vector."""
        return self.predict(np.asarray(feature_vector).reshape(1, -1))[0]

    @abstractmethod
    def _fit_encoded(
        self, features: np.ndarray, codes: np.ndarray, n_classes: int
    ) -> None:
        """Model-specific training on encoded labels."""

    @abstractmethod
    def _predict_proba_encoded(self, features: np.ndarray) -> np.ndarray:
        """Model-specific probability prediction."""

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ModelNotFittedError(
                f"{type(self).__name__} used before fit()"
            )


def _as_matrix(features: np.ndarray) -> np.ndarray:
    matrix = np.asarray(features, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix.reshape(1, -1)
    if matrix.ndim != 2:
        raise LearningError(f"feature matrix must be 2-D, got shape {matrix.shape}")
    if not np.all(np.isfinite(matrix)):
        raise LearningError("feature matrix contains NaN or infinite values")
    return matrix
