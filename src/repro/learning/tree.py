"""CART decision tree classifier (Gini impurity, binary splits).

Trees handle the snippet features' mixed scales without standardization and
give the random forest its base learner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import LearningError
from .base import Classifier


@dataclass
class _Node:
    """One tree node; leaves carry a class distribution."""

    distribution: np.ndarray  # normalized class frequencies at this node
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeClassifier(Classifier):
    """Greedy CART with Gini impurity and exhaustive threshold search."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        seed: int = 0,
    ):
        super().__init__()
        if max_depth < 1:
            raise LearningError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise LearningError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        if min_samples_leaf < 1:
            raise LearningError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self._n_classes = 0
        self._rng = np.random.default_rng(seed)

    def _fit_encoded(
        self, features: np.ndarray, codes: np.ndarray, n_classes: int
    ) -> None:
        self._n_classes = n_classes
        self._rng = np.random.default_rng(self.seed)
        self._root = self._grow(features, codes, depth=0)

    def _predict_proba_encoded(self, features: np.ndarray) -> np.ndarray:
        assert self._root is not None
        output = np.empty((features.shape[0], self._n_classes))
        for i, row in enumerate(features):
            node = self._root
            while not node.is_leaf:
                assert node.left is not None and node.right is not None
                node = node.left if row[node.feature] <= node.threshold else node.right
            output[i] = node.distribution
        return output

    # ------------------------------------------------------------------
    # Tree growth
    # ------------------------------------------------------------------
    def _grow(self, features: np.ndarray, codes: np.ndarray, depth: int) -> _Node:
        distribution = self._distribution(codes)
        node = _Node(distribution=distribution)
        if (
            depth >= self.max_depth
            or codes.shape[0] < self.min_samples_split
            or np.unique(codes).shape[0] == 1
        ):
            return node
        split = self._best_split(features, codes)
        if split is None:
            return node
        feature, threshold = split
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[mask], codes[mask], depth + 1)
        node.right = self._grow(features[~mask], codes[~mask], depth + 1)
        return node

    def _best_split(
        self, features: np.ndarray, codes: np.ndarray
    ) -> tuple[int, float] | None:
        n_samples, n_features = features.shape
        parent_gini = _gini(codes, self._n_classes)
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        if self.max_features is not None and self.max_features < n_features:
            candidates = self._rng.choice(
                n_features, size=self.max_features, replace=False
            )
        else:
            candidates = np.arange(n_features)
        for feature in candidates:
            order = np.argsort(features[:, feature], kind="stable")
            values = features[order, feature]
            ordered_codes = codes[order]
            left_counts = np.zeros(self._n_classes)
            right_counts = np.bincount(ordered_codes, minlength=self._n_classes).astype(
                float
            )
            for i in range(n_samples - 1):
                code = ordered_codes[i]
                left_counts[code] += 1.0
                right_counts[code] -= 1.0
                if values[i] == values[i + 1]:
                    continue
                left_n = i + 1
                right_n = n_samples - left_n
                if left_n < self.min_samples_leaf or right_n < self.min_samples_leaf:
                    continue
                gini_split = (
                    left_n * _gini_from_counts(left_counts, left_n)
                    + right_n * _gini_from_counts(right_counts, right_n)
                ) / n_samples
                gain = parent_gini - gini_split
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float((values[i] + values[i + 1]) / 2.0))
        return best

    def _distribution(self, codes: np.ndarray) -> np.ndarray:
        counts = np.bincount(codes, minlength=self._n_classes).astype(np.float64)
        return counts / counts.sum()


def _gini(codes: np.ndarray, n_classes: int) -> float:
    counts = np.bincount(codes, minlength=n_classes).astype(np.float64)
    return _gini_from_counts(counts, codes.shape[0])


def _gini_from_counts(counts: np.ndarray, total: int) -> float:
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - np.sum(proportions * proportions))
