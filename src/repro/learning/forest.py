"""Random forest over the CART trees: bagging + feature subsampling."""

from __future__ import annotations

import math

import numpy as np

from ..errors import LearningError
from .base import Classifier
from .tree import DecisionTreeClassifier


class RandomForestClassifier(Classifier):
    """Averaged ensemble of bootstrapped decision trees.

    The strongest model in the ablation (E-F3b) once the Event Editor has
    designated a few hundred segments.
    """

    def __init__(
        self,
        n_trees: int = 25,
        max_depth: int = 12,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        seed: int = 0,
    ):
        super().__init__()
        if n_trees < 1:
            raise LearningError(f"n_trees must be >= 1, got {n_trees}")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: list[DecisionTreeClassifier] = []

    def _fit_encoded(
        self, features: np.ndarray, codes: np.ndarray, n_classes: int
    ) -> None:
        rng = np.random.default_rng(self.seed)
        n_samples, n_features = features.shape
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(math.sqrt(n_features)))
        self._trees = []
        labels = codes  # already encoded; trees re-encode internally via fit
        for tree_index in range(self.n_trees):
            sample_indexes = rng.integers(0, n_samples, size=n_samples)
            # Guarantee every class appears in the bootstrap so each tree's
            # label encoder matches the ensemble's vocabulary.
            present = set(np.unique(labels[sample_indexes]).tolist())
            missing = [c for c in range(n_classes) if c not in present]
            if missing:
                extras = []
                for code in missing:
                    owners = np.flatnonzero(labels == code)
                    extras.append(int(owners[rng.integers(0, owners.shape[0])]))
                sample_indexes = np.concatenate(
                    [sample_indexes, np.array(extras, dtype=np.int64)]
                )
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=self.seed + 7919 * tree_index,
            )
            tree.fit(
                features[sample_indexes],
                [str(int(c)) for c in labels[sample_indexes]],
            )
            self._trees.append(tree)
        self._tree_class_order = [
            [int(c) for c in tree.classes] for tree in self._trees
        ]
        self._n_classes = n_classes

    def _predict_proba_encoded(self, features: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise LearningError("forest has no trees (fit not run?)")
        total = np.zeros((features.shape[0], self._n_classes))
        for tree, class_order in zip(self._trees, self._tree_class_order):
            tree_probabilities = tree.predict_proba(features)
            for column, code in enumerate(class_order):
                total[:, code] += tree_probabilities[:, column]
        return total / len(self._trees)
