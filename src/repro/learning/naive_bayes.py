"""Gaussian naive Bayes classifier.

The cheapest model in the ablation: closed-form fit, robust on tiny
designated training sets where gradient and tree methods overfit.
"""

from __future__ import annotations

import numpy as np

from ..errors import LearningError
from .base import Classifier

_VARIANCE_FLOOR = 1e-9


class GaussianNB(Classifier):
    """Per-class independent Gaussians with shared variance smoothing."""

    def __init__(self, var_smoothing: float = 1e-9):
        super().__init__()
        if var_smoothing < 0:
            raise LearningError(
                f"var_smoothing must be >= 0, got {var_smoothing}"
            )
        self.var_smoothing = var_smoothing
        self._means: np.ndarray | None = None  # (n_classes, n_features)
        self._variances: np.ndarray | None = None
        self._log_priors: np.ndarray | None = None

    def _fit_encoded(
        self, features: np.ndarray, codes: np.ndarray, n_classes: int
    ) -> None:
        n_features = features.shape[1]
        means = np.zeros((n_classes, n_features))
        variances = np.zeros((n_classes, n_features))
        priors = np.zeros(n_classes)
        global_variance = features.var(axis=0).max() if features.size else 1.0
        smoothing = self.var_smoothing * max(global_variance, 1.0)
        for code in range(n_classes):
            rows = features[codes == code]
            priors[code] = rows.shape[0] / features.shape[0]
            if rows.shape[0] == 0:
                continue
            means[code] = rows.mean(axis=0)
            variances[code] = rows.var(axis=0) + smoothing + _VARIANCE_FLOOR
        self._means = means
        self._variances = variances
        self._log_priors = np.log(np.maximum(priors, 1e-12))

    def _predict_proba_encoded(self, features: np.ndarray) -> np.ndarray:
        assert (
            self._means is not None
            and self._variances is not None
            and self._log_priors is not None
        )
        if features.shape[1] != self._means.shape[1]:
            raise LearningError(
                f"model fitted on {self._means.shape[1]} features, "
                f"got {features.shape[1]}"
            )
        n_samples = features.shape[0]
        n_classes = self._means.shape[0]
        log_likelihood = np.empty((n_samples, n_classes))
        for code in range(n_classes):
            diff = features - self._means[code]
            log_likelihood[:, code] = self._log_priors[code] - 0.5 * np.sum(
                np.log(2.0 * np.pi * self._variances[code])
                + diff * diff / self._variances[code],
                axis=1,
            )
        shifted = log_likelihood - log_likelihood.max(axis=1, keepdims=True)
        probabilities = np.exp(shifted)
        return probabilities / probabilities.sum(axis=1, keepdims=True)
