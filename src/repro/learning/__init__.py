"""Learning library (substrate S8).

From-scratch classifiers for the annotation layer's event identification
model: softmax regression, CART tree, random forest, k-NN and Gaussian
naive Bayes, plus scaling, metrics and cross-validation.  All models share
the :class:`Classifier` interface.
"""

from .base import Classifier, LabelEncoder
from .forest import RandomForestClassifier
from .knn import KNeighborsClassifier
from .logistic import SoftmaxRegression
from .metrics import (
    ClassReport,
    accuracy,
    confusion_matrix,
    macro_f1,
    per_class_report,
    weighted_f1,
)
from .model_selection import cross_val_score, k_fold_indexes, train_test_split
from .naive_bayes import GaussianNB
from .scaling import StandardScaler
from .tree import DecisionTreeClassifier

#: Model registry used by the Configurator's ``event_model`` knob.
MODEL_FACTORIES = {
    "logistic": SoftmaxRegression,
    "tree": DecisionTreeClassifier,
    "forest": RandomForestClassifier,
    "knn": KNeighborsClassifier,
    "naive-bayes": GaussianNB,
}

__all__ = [
    "MODEL_FACTORIES",
    "ClassReport",
    "Classifier",
    "DecisionTreeClassifier",
    "GaussianNB",
    "KNeighborsClassifier",
    "LabelEncoder",
    "RandomForestClassifier",
    "SoftmaxRegression",
    "StandardScaler",
    "accuracy",
    "confusion_matrix",
    "cross_val_score",
    "k_fold_indexes",
    "macro_f1",
    "per_class_report",
    "train_test_split",
    "weighted_f1",
]
