"""k-nearest-neighbors classifier (brute force, Euclidean).

A zero-training baseline for the event-model ablation; pairs naturally with
:class:`repro.learning.scaling.StandardScaler`.
"""

from __future__ import annotations

import numpy as np

from ..errors import LearningError
from .base import Classifier


class KNeighborsClassifier(Classifier):
    """Majority vote over the ``k`` nearest training samples.

    Votes can be distance-weighted (``weighted=True``), which breaks ties
    smoothly and improves small-training-set accuracy.
    """

    def __init__(self, k: int = 5, weighted: bool = True):
        super().__init__()
        if k < 1:
            raise LearningError(f"k must be >= 1, got {k}")
        self.k = k
        self.weighted = weighted
        self._train_features: np.ndarray | None = None
        self._train_codes: np.ndarray | None = None
        self._n_classes = 0

    def _fit_encoded(
        self, features: np.ndarray, codes: np.ndarray, n_classes: int
    ) -> None:
        self._train_features = features
        self._train_codes = codes
        self._n_classes = n_classes

    def _predict_proba_encoded(self, features: np.ndarray) -> np.ndarray:
        assert self._train_features is not None and self._train_codes is not None
        if features.shape[1] != self._train_features.shape[1]:
            raise LearningError(
                f"model fitted on {self._train_features.shape[1]} features, "
                f"got {features.shape[1]}"
            )
        k = min(self.k, self._train_features.shape[0])
        # (n_query, n_train) squared distances via the expansion trick.
        cross = features @ self._train_features.T
        query_sq = np.sum(features**2, axis=1, keepdims=True)
        train_sq = np.sum(self._train_features**2, axis=1)
        distances_sq = np.maximum(query_sq - 2.0 * cross + train_sq, 0.0)
        neighbor_indexes = np.argpartition(distances_sq, k - 1, axis=1)[:, :k]
        probabilities = np.zeros((features.shape[0], self._n_classes))
        for row in range(features.shape[0]):
            neighbors = neighbor_indexes[row]
            if self.weighted:
                weights = 1.0 / (np.sqrt(distances_sq[row, neighbors]) + 1e-9)
            else:
                weights = np.ones(neighbors.shape[0])
            for neighbor, weight in zip(neighbors, weights):
                probabilities[row, self._train_codes[neighbor]] += weight
            probabilities[row] /= probabilities[row].sum()
        return probabilities
