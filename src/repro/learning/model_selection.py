"""Data splitting and cross-validation for the event model experiments."""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..errors import LearningError
from .base import Classifier
from .metrics import accuracy


def train_test_split(
    features: np.ndarray,
    labels: list[str],
    test_fraction: float = 0.25,
    stratified: bool = True,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, list[str], list[str]]:
    """Split into train/test, stratified by label by default.

    Stratification guarantees every class appears in the training part, so
    a classifier's label vocabulary always covers the test set.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.shape[0] != len(labels):
        raise LearningError(
            f"{features.shape[0]} samples but {len(labels)} labels"
        )
    if not 0.0 < test_fraction < 1.0:
        raise LearningError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    n_samples = features.shape[0]
    test_mask = np.zeros(n_samples, dtype=bool)
    if stratified:
        labels_array = np.array(labels)
        for label in np.unique(labels_array):
            members = np.flatnonzero(labels_array == label)
            rng.shuffle(members)
            n_test = int(round(len(members) * test_fraction))
            n_test = min(n_test, len(members) - 1)  # keep >= 1 in train
            test_mask[members[:n_test]] = True
    else:
        order = rng.permutation(n_samples)
        n_test = max(1, int(round(n_samples * test_fraction)))
        test_mask[order[:n_test]] = True
    train_idx = np.flatnonzero(~test_mask)
    test_idx = np.flatnonzero(test_mask)
    return (
        features[train_idx],
        features[test_idx],
        [labels[i] for i in train_idx],
        [labels[i] for i in test_idx],
    )


def k_fold_indexes(
    n_samples: int, k: int = 5, seed: int = 0
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_indexes, test_indexes)`` for each of ``k`` folds."""
    if k < 2:
        raise LearningError(f"k must be >= 2, got {k}")
    if n_samples < k:
        raise LearningError(f"cannot make {k} folds from {n_samples} samples")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_samples)
    folds = np.array_split(order, k)
    for fold_index in range(k):
        test_idx = folds[fold_index]
        train_idx = np.concatenate(
            [folds[j] for j in range(k) if j != fold_index]
        )
        yield train_idx, test_idx


def cross_val_score(
    make_model: Callable[[], Classifier],
    features: np.ndarray,
    labels: list[str],
    k: int = 5,
    seed: int = 0,
    score: Callable[[list[str], list[str]], float] = accuracy,
) -> list[float]:
    """Per-fold scores of a freshly constructed model on each split.

    Folds where the training part collapses to a single class are skipped
    (possible with tiny designated sets); at least one fold must survive.
    """
    features = np.asarray(features, dtype=np.float64)
    scores: list[float] = []
    for train_idx, test_idx in k_fold_indexes(features.shape[0], k, seed):
        train_labels = [labels[i] for i in train_idx]
        if len(set(train_labels)) < 2:
            continue
        model = make_model()
        model.fit(features[train_idx], train_labels)
        predicted = model.predict(features[test_idx])
        scores.append(score([labels[i] for i in test_idx], predicted))
    if not scores:
        raise LearningError("every fold had a single-class training part")
    return scores
