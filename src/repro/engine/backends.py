"""Pluggable execution backends for the batch engine.

A backend owns the worker pool and exposes one operation: map a pure
worker function ``fn(context, payload) -> result`` over an iterable of
payloads, yielding results **in submission order**.  The context is the
shared read-only state (the :class:`~repro.core.Translator`); how it
reaches each worker is the backend's business:

- ``serial``     — no pool; runs inline on the caller's thread.
- ``threads``    — a :class:`~concurrent.futures.ThreadPoolExecutor`
  sharing the context directly.  Best when phase work releases the GIL
  (numpy-heavy identifiers) or the workload is I/O bound.
- ``processes``  — a :class:`~concurrent.futures.ProcessPoolExecutor`;
  the context is pickled once and installed per worker process via the
  pool initializer, so per-task payloads stay small.  Best for the
  pure-Python CPU-bound phases, which is most TRIPS workloads.

Mapping is windowed: at most ``workers * window_factor`` tasks are in
flight at once, so a streaming input iterator is consumed incrementally
instead of being drained eagerly into the pool queue.

Results travel back whole: whatever the worker function returns is
yielded to the caller unchanged, which is how the engine's sharded
knowledge build ships each chunk's ``PhaseOneChunk`` — per-sequence
results *plus* the chunk's ``PartialKnowledge`` shard — back to the
barrier.  On the ``processes`` backend both the submitted callable (a
module-level function, possibly wrapped in ``functools.partial``) and the
returned values must be picklable; ``PartialKnowledge`` is a plain
dataclass of counts for exactly that reason.
"""

from __future__ import annotations

import os
import pickle
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Any, Callable, Iterable, Iterator, TypeVar

from ..errors import ConfigError

P = TypeVar("P")
R = TypeVar("R")

#: In-flight task window per worker; bounds memory on streaming inputs
#: while keeping every worker saturated.
WINDOW_FACTOR = 4


def default_worker_count() -> int:
    """One worker per available CPU (at least one)."""
    return max(os.cpu_count() or 1, 1)


class ExecutionBackend(ABC):
    """A bounded pool that maps worker functions over payloads in order."""

    name: str = "abstract"

    def __init__(self, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ConfigError(f"worker count must be >= 1, got {workers}")
        self.workers = workers if workers is not None else default_worker_count()
        self._context: Any = None

    # -- lifecycle ------------------------------------------------------
    def open(self, context: Any) -> None:
        """Bind the shared context and start the pool."""
        self._context = context

    def rebind(self, context: Any) -> None:
        """Replace the shared context between mapping phases.

        Cheap for in-memory backends; the process backend re-ships the
        context to its workers (once per worker, not once per task).
        """
        self._context = context

    def close(self) -> None:
        """Shut the pool down; the backend may be re-opened afterwards."""
        self._context = None

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- mapping --------------------------------------------------------
    @abstractmethod
    def map(
        self, fn: Callable[[Any, P], R], payloads: Iterable[P]
    ) -> Iterator[R]:
        """Apply ``fn(context, payload)`` to every payload, in order."""


class SerialBackend(ExecutionBackend):
    """Inline execution — the reference backend, zero dispatch overhead.

    Always one worker: a requested pool size is validated but ignored,
    and the reported ``workers`` stays 1 so stats never misattribute
    serial timings to a pool.
    """

    name = "serial"

    def __init__(self, workers: int | None = None):
        super().__init__(workers=workers)
        self.workers = 1

    def map(
        self, fn: Callable[[Any, P], R], payloads: Iterable[P]
    ) -> Iterator[R]:
        for payload in payloads:
            yield fn(self._context, payload)


class _PoolBackend(ExecutionBackend):
    """Shared windowed-submission logic over a ``concurrent.futures`` pool."""

    _pool: Executor | None = None

    @abstractmethod
    def _make_pool(self) -> Executor:
        """Create the executor for this backend."""

    def _submit_callable(
        self, fn: Callable[[Any, P], R]
    ) -> Callable[[P], R]:
        """The single-argument callable actually submitted to the pool."""
        context = self._context
        return lambda payload: fn(context, payload)

    def open(self, context: Any) -> None:
        super().open(context)
        if self._pool is None:
            self._pool = self._make_pool()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()

    def map(
        self, fn: Callable[[Any, P], R], payloads: Iterable[P]
    ) -> Iterator[R]:
        if self._pool is None:
            raise ConfigError(
                f"backend {self.name!r} is not open; call open() first"
            )
        call = self._submit_callable(fn)
        window = self.workers * WINDOW_FACTOR
        pending: deque = deque()
        iterator = iter(payloads)
        try:
            for payload in iterator:
                pending.append(self._pool.submit(call, payload))
                if len(pending) >= window:
                    yield pending.popleft().result()
            while pending:
                yield pending.popleft().result()
        finally:
            for future in pending:
                future.cancel()


class ThreadBackend(_PoolBackend):
    """Thread-pool execution sharing the context in memory."""

    name = "threads"

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="trips-engine"
        )


# -- process backend plumbing ------------------------------------------
# The submitted callable must be picklable, so it is a module-level
# function; the context travels once per worker through the initializer
# and lands in this per-process global.
_PROCESS_CONTEXT: Any = None


def _install_process_context(blob: bytes) -> None:
    global _PROCESS_CONTEXT
    _PROCESS_CONTEXT = pickle.loads(blob)


def _call_in_process(fn: Callable[[Any, P], R], payload: P) -> R:
    return fn(_PROCESS_CONTEXT, payload)


class ProcessBackend(_PoolBackend):
    """Process-pool execution; sidesteps the GIL for CPU-bound phases."""

    name = "processes"

    def _make_pool(self) -> Executor:
        try:
            blob = pickle.dumps(self._context)
        except Exception as exc:  # pragma: no cover - context-dependent
            raise ConfigError(
                "the 'processes' backend requires a picklable translator "
                f"(model + event model + config): {exc}"
            ) from exc
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_install_process_context,
            initargs=(blob,),
        )

    def _submit_callable(
        self, fn: Callable[[Any, P], R]
    ) -> Callable[[P], R]:
        return partial(_call_in_process, fn)

    def rebind(self, context: Any) -> None:
        """Workers hold a pickled copy of the context, so rebinding
        restarts the pool: one initializer transfer per worker, keeping
        per-task payloads small."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().rebind(context)
        self._pool = self._make_pool()


BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def create_backend(name: str, workers: int | None = None) -> ExecutionBackend:
    """Instantiate a backend by registry name."""
    try:
        backend_cls = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ConfigError(
            f"unknown execution backend {name!r} (known: {known})"
        ) from None
    return backend_cls(workers=workers)
