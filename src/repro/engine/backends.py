"""Pluggable execution backends for the batch engine.

A backend owns the worker pool and exposes one operation: map a pure
worker function ``fn(context, payload) -> result`` over an iterable of
payloads, yielding results **in submission order**.  The context is the
shared read-only state (the :class:`~repro.core.Translator`); how it
reaches each worker is the backend's business:

- ``serial``     — no pool; runs inline on the caller's thread.
- ``threads``    — a :class:`~concurrent.futures.ThreadPoolExecutor`
  sharing the context directly.  Best when phase work releases the GIL
  (numpy-heavy identifiers) or the workload is I/O bound.
- ``processes``  — a :class:`~concurrent.futures.ProcessPoolExecutor`;
  the context is pickled once and installed per worker process via the
  pool initializer, so per-task payloads stay small.  Best for the
  pure-Python CPU-bound phases, which is most TRIPS workloads.

Mapping is windowed: at most ``workers * window_factor`` tasks are in
flight at once, so a streaming input iterator is consumed incrementally
instead of being drained eagerly into the pool queue.

Results travel back whole: whatever the worker function returns is
yielded to the caller unchanged, which is how the engine's sharded
knowledge build ships each chunk's ``PhaseOneChunk`` — per-sequence
results *plus* the chunk's ``PartialKnowledge`` shard — back to the
barrier.  On the ``processes`` backend both the submitted callable (a
module-level function, possibly wrapped in ``functools.partial``) and the
returned values must be picklable; ``PartialKnowledge`` is a plain
dataclass of counts for exactly that reason.

Warm pools and shared per-phase values
--------------------------------------

Pools stay warm across phases: the context installed by :meth:`open`
(the translator, or a venue map of translators) is shipped to each worker
exactly once, at pool startup.  Phase-specific state that only exists
*after* a barrier — the batch's mobility knowledge — travels through
:meth:`ExecutionBackend.share` instead: the caller publishes the value
and embeds the returned :class:`SharedValue` token in its task payloads;
workers resolve it with :func:`resolve_shared`.  On in-process backends
the token is a registry key (nothing is copied); on the process backend
the value is pickled **once**, keyed by a generation id, and each worker
unpickles it at most once per generation (a small per-process cache).
This replaces the old ``rebind`` protocol, which restarted the process
pool at the phase-two barrier and re-pickled the translator the
discarded workers already held.
"""

from __future__ import annotations

import itertools
import os
import pickle
from abc import ABC, abstractmethod
from collections import OrderedDict, deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterable, Iterator, TypeVar

from ..errors import ConfigError

P = TypeVar("P")
R = TypeVar("R")

#: In-flight task window per worker; bounds memory on streaming inputs
#: while keeping every worker saturated.
WINDOW_FACTOR = 4


# -- shared per-phase values -------------------------------------------
#: Generation ids for shared values; allocated caller-side, unique for
#: the process lifetime so a worker's cache can never confuse two values.
_SHARE_KEYS = itertools.count(1)

#: In-process registry backing "inproc" tokens (serial/thread backends).
_INPROC_SHARED: dict[int, Any] = {}

#: Worker-side cache of unpickled "pickled" tokens, keyed by generation.
#: Bounded so interleaved phases (e.g. several venues complementing on
#: one shared pool) at most re-unpickle, never grow without limit.
_PICKLED_CACHE: "OrderedDict[int, Any]" = OrderedDict()
_PICKLED_CACHE_LIMIT = 16


@dataclass(frozen=True)
class SharedValue:
    """A handle to a value published to every worker for one phase.

    Embed the token in task payloads and call :func:`resolve_shared` in
    the worker function.  ``inproc`` tokens reference the caller's own
    registry (serial/thread backends); ``pickled`` tokens carry the
    pickled bytes, produced once, which each worker process unpickles at
    most once per generation ``key``.
    """

    kind: str  # "inproc" | "pickled"
    key: int
    blob: bytes | None = field(default=None, repr=False)


def resolve_shared(token: SharedValue) -> Any:
    """Worker-side lookup of a value published via ``backend.share``."""
    if token.kind == "inproc":
        try:
            return _INPROC_SHARED[token.key]
        except KeyError:
            raise ConfigError(
                f"shared value {token.key} was released before use"
            ) from None
    try:
        value = _PICKLED_CACHE[token.key]
        _PICKLED_CACHE.move_to_end(token.key)
    except KeyError:
        value = pickle.loads(token.blob)
        _PICKLED_CACHE[token.key] = value
        while len(_PICKLED_CACHE) > _PICKLED_CACHE_LIMIT:
            _PICKLED_CACHE.popitem(last=False)
    return value


def default_worker_count() -> int:
    """One worker per available CPU (at least one)."""
    return max(os.cpu_count() or 1, 1)


class ExecutionBackend(ABC):
    """A bounded pool that maps worker functions over payloads in order."""

    name: str = "abstract"

    def __init__(self, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ConfigError(f"worker count must be >= 1, got {workers}")
        self.workers = workers if workers is not None else default_worker_count()
        self._context: Any = None
        self._issued_tokens: set[int] = set()

    # -- lifecycle ------------------------------------------------------
    def open(self, context: Any) -> None:
        """Bind the shared context and start the pool."""
        self._context = context

    def close(self) -> None:
        """Shut the pool down; the backend may be re-opened afterwards."""
        for key in self._issued_tokens:
            _INPROC_SHARED.pop(key, None)
        self._issued_tokens.clear()
        self._context = None

    # -- shared per-phase values ---------------------------------------
    def share(self, value: Any) -> SharedValue:
        """Publish a per-phase value without restarting the pool.

        The returned token travels inside task payloads; the worker
        function resolves it with :func:`resolve_shared`.  Release the
        token after the phase (``close`` releases any stragglers).
        """
        token = SharedValue("inproc", next(_SHARE_KEYS))
        _INPROC_SHARED[token.key] = value
        self._issued_tokens.add(token.key)
        return token

    def release(self, token: SharedValue) -> None:
        """Drop a shared value once its phase is done."""
        _INPROC_SHARED.pop(token.key, None)
        self._issued_tokens.discard(token.key)

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- mapping --------------------------------------------------------
    @abstractmethod
    def map(
        self, fn: Callable[[Any, P], R], payloads: Iterable[P]
    ) -> Iterator[R]:
        """Apply ``fn(context, payload)`` to every payload, in order."""


class SerialBackend(ExecutionBackend):
    """Inline execution — the reference backend, zero dispatch overhead.

    Always one worker: a requested pool size is validated but ignored,
    and the reported ``workers`` stays 1 so stats never misattribute
    serial timings to a pool.
    """

    name = "serial"

    def __init__(self, workers: int | None = None):
        super().__init__(workers=workers)
        self.workers = 1

    def map(
        self, fn: Callable[[Any, P], R], payloads: Iterable[P]
    ) -> Iterator[R]:
        for payload in payloads:
            yield fn(self._context, payload)


class _PoolBackend(ExecutionBackend):
    """Shared windowed-submission logic over a ``concurrent.futures`` pool."""

    _pool: Executor | None = None

    @abstractmethod
    def _make_pool(self) -> Executor:
        """Create the executor for this backend."""

    def _submit_callable(
        self, fn: Callable[[Any, P], R]
    ) -> Callable[[P], R]:
        """The single-argument callable actually submitted to the pool."""
        context = self._context
        return lambda payload: fn(context, payload)

    def open(self, context: Any) -> None:
        super().open(context)
        if self._pool is None:
            self._pool = self._make_pool()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()

    def map(
        self, fn: Callable[[Any, P], R], payloads: Iterable[P]
    ) -> Iterator[R]:
        if self._pool is None:
            raise ConfigError(
                f"backend {self.name!r} is not open; call open() first"
            )
        call = self._submit_callable(fn)
        window = self.workers * WINDOW_FACTOR
        pending: deque = deque()
        iterator = iter(payloads)
        try:
            for payload in iterator:
                pending.append(self._pool.submit(call, payload))
                if len(pending) >= window:
                    yield pending.popleft().result()
            while pending:
                yield pending.popleft().result()
        finally:
            for future in pending:
                future.cancel()


class ThreadBackend(_PoolBackend):
    """Thread-pool execution sharing the context in memory."""

    name = "threads"

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="trips-engine"
        )


# -- process backend plumbing ------------------------------------------
# The submitted callable must be picklable, so it is a module-level
# function; the context travels once per worker through the initializer
# and lands in this per-process global.
_PROCESS_CONTEXT: Any = None


def _install_process_context(blob: bytes) -> None:
    global _PROCESS_CONTEXT
    _PROCESS_CONTEXT = pickle.loads(blob)


def _call_in_process(fn: Callable[[Any, P], R], payload: P) -> R:
    return fn(_PROCESS_CONTEXT, payload)


class ProcessBackend(_PoolBackend):
    """Process-pool execution; sidesteps the GIL for CPU-bound phases."""

    name = "processes"

    def _make_pool(self) -> Executor:
        try:
            blob = pickle.dumps(self._context)
        except Exception as exc:  # pragma: no cover - context-dependent
            raise ConfigError(
                "the 'processes' backend requires a picklable translator "
                f"(model + event model + config): {exc}"
            ) from exc
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_install_process_context,
            initargs=(blob,),
        )

    def _submit_callable(
        self, fn: Callable[[Any, P], R]
    ) -> Callable[[P], R]:
        return partial(_call_in_process, fn)

    def share(self, value: Any) -> SharedValue:
        """Pickle the value once; workers unpickle it once per generation.

        The pool keeps running — the static context installed at
        :meth:`open` (the expensive part) is never re-shipped.  The blob
        rides along inside each task payload, but pickling happened
        exactly once here and each worker caches the unpickled value by
        generation key, so per-task cost is a bytes copy.

        The per-task transfer is a deliberate trade-off:
        ``ProcessPoolExecutor`` offers no way to target each worker once
        (the old protocol managed it only by restarting the pool, paying
        a full pool spin-up plus a translator re-pickle at every
        barrier), and shared values are small per-phase state — count
        aggregates, not the model-laden translator — so copying the
        bytes per chunk is far cheaper than either restart or rebuild.
        """
        try:
            blob = pickle.dumps(value)
        except Exception as exc:  # pragma: no cover - context-dependent
            raise ConfigError(
                f"the 'processes' backend requires picklable shared "
                f"values: {exc}"
            ) from exc
        return SharedValue("pickled", next(_SHARE_KEYS), blob)

    def release(self, token: SharedValue) -> None:
        """Nothing held caller-side; worker caches evict by generation."""


BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def create_backend(name: str, workers: int | None = None) -> ExecutionBackend:
    """Instantiate a backend by registry name."""
    try:
        backend_cls = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ConfigError(
            f"unknown execution backend {name!r} (known: {known})"
        ) from None
    return backend_cls(workers=workers)
