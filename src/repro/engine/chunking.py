"""Chunk partitioning for the batch engine.

Chunks are the engine's unit of work: coarse enough to amortize task
dispatch (and, for the process backend, payload pickling), fine enough to
keep every worker busy.  Both helpers preserve input order, which is what
lets the engine merge results back deterministically.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TypeVar

from ..errors import ConfigError

T = TypeVar("T")


def partition(items: list[T], chunk_size: int) -> list[list[T]]:
    """Split ``items`` into consecutive chunks of ``chunk_size``.

    The final chunk may be shorter; an empty input yields no chunks.
    """
    return list(iter_chunks(items, chunk_size))


def iter_chunks(items: Iterable[T], chunk_size: int) -> Iterator[list[T]]:
    """Lazily chunk any iterable, consuming it only as chunks are pulled.

    This is the streaming-ingestion path: the engine can translate an
    unbounded iterator of sequences without materializing the full batch
    up front.
    """
    if chunk_size < 1:
        raise ConfigError(f"chunk size must be >= 1, got {chunk_size}")
    chunk: list[T] = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
