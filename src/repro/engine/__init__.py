"""Parallel batch-translation engine (scale-out layer over the Translator).

Partitions a batch of positioning sequences into chunks, fans the
per-sequence phases out across a pluggable worker pool, runs the global
mobility-knowledge build as the barrier phase, and merges results
deterministically in input order — semantically identical results and
knowledge to the serial ``Translator.translate_batch`` (only the timing
stats differ), but bounded by the hardware instead of a single core.

By default the barrier itself is sharded too: phase-one workers emit
per-chunk ``PartialKnowledge`` aggregates and the caller only merges them
(``EngineConfig.knowledge_build="sharded"``; see the strategy notes in
:mod:`repro.engine.engine`).
"""

from .backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    SharedValue,
    ThreadBackend,
    create_backend,
    default_worker_count,
    resolve_shared,
)
from .chunking import iter_chunks, partition
from .engine import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_CONTEXT_KEY,
    KNOWLEDGE_BUILDS,
    RECORD_LAYOUTS,
    Engine,
    EngineConfig,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_CONTEXT_KEY",
    "KNOWLEDGE_BUILDS",
    "RECORD_LAYOUTS",
    "Engine",
    "EngineConfig",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "SharedValue",
    "ThreadBackend",
    "create_backend",
    "default_worker_count",
    "iter_chunks",
    "partition",
    "resolve_shared",
]
