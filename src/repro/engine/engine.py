"""The parallel batch-translation engine.

``Translator.translate_batch`` is two-phase, and phase one (clean +
annotate) is embarrassingly parallel per sequence; only the mobility
knowledge build genuinely needs the whole batch ("referring to other
generated mobility semantics sequences", paper §3).  The :class:`Engine`
exploits exactly that structure:

1. partition the batch into chunks and fan phase one out across an
   :class:`~repro.engine.backends.ExecutionBackend` worker pool;
2. run the global knowledge build as the barrier phase on the caller;
3. fan phase two (complementing) back out over the same pool;
4. merge everything **in input order**, so the output is identical to the
   serial ``Translator.translate_batch`` — same results, same knowledge,
   just faster.

:meth:`Engine.translate_stream` accepts any iterator of sequences and
chunks it lazily, so a live feed (see
:func:`repro.positioning.stream.sequence_stream`) can be translated
without materializing the full batch before phase one starts.

Knowledge build strategies
--------------------------

The barrier in step 2 supports two strategies
(``EngineConfig.knowledge_build``), both producing byte-identical
knowledge and results:

- ``"sharded"`` (default) — each phase-one worker also aggregates its
  chunk's :class:`~repro.core.complementing.PartialKnowledge` shard (raw
  transition counts, outgoing totals, per-region stats); the barrier then
  merges the shards in O(#regions + #edges) per chunk.  The knowledge
  build scales out with phase one instead of re-observing every sequence
  on one core, so the ``knowledge`` phase in :class:`BatchStats` reports
  pure merge time.
- ``"rebuild"`` — the pre-sharding behaviour: the caller re-observes every
  annotated sequence serially at the barrier.  Kept as the reference path
  and for A/B benchmarks (``benchmarks/bench_knowledge_shard.py``).

Sharding is exact, not approximate: dwell totals accumulate through
:class:`~repro.core.complementing.ExactSum`, so the merged aggregates are
bit-for-bit independent of the chunking.  The same shard type powers
incremental updates — a long-running engine can fold a new stream
window's :class:`~repro.core.complementing.PartialKnowledge` into existing
knowledge via :meth:`MobilityKnowledge.fold` without a rebuild.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial as _bind
from typing import Iterable, Iterator

from ..core.complementing import ComplementResult, MobilityKnowledge
from ..core.translator import (
    BatchStats,
    BatchTranslationResult,
    PhaseStats,
    Translator,
    assemble_results,
    build_batch_knowledge,
    run_phase_one_chunk,
    run_phase_two_chunk,
)
from ..errors import ConfigError
from ..positioning import PositioningSequence
from .backends import BACKENDS, create_backend
from .chunking import iter_chunks, partition

#: Default sequences per chunk: coarse enough to amortize dispatch,
#: fine enough to load-balance uneven sequence lengths.
DEFAULT_CHUNK_SIZE = 8

#: The two barrier strategies; both yield byte-identical knowledge.
KNOWLEDGE_BUILDS = ("rebuild", "sharded")


def _phase_two_with_knowledge(
    context: tuple[Translator, MobilityKnowledge],
    chunk: list,
) -> list[ComplementResult]:
    """Phase-two worker bound to a (translator, knowledge) context.

    The knowledge travels inside the context — installed once per worker
    by the backend — so per-chunk payloads stay small on the process
    backend instead of re-pickling the full knowledge for every task.
    """
    translator, knowledge = context
    return run_phase_two_chunk(translator, (knowledge, chunk))


@dataclass(frozen=True)
class EngineConfig:
    """How the engine partitions and executes a batch."""

    backend: str = "serial"
    workers: int | None = None
    chunk_size: int = DEFAULT_CHUNK_SIZE
    knowledge_build: str = "sharded"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            known = ", ".join(sorted(BACKENDS))
            raise ConfigError(
                f"unknown execution backend {self.backend!r} (known: {known})"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigError(f"worker count must be >= 1, got {self.workers}")
        if self.chunk_size < 1:
            raise ConfigError(
                f"chunk size must be >= 1, got {self.chunk_size}"
            )
        if self.knowledge_build not in KNOWLEDGE_BUILDS:
            known = ", ".join(KNOWLEDGE_BUILDS)
            raise ConfigError(
                f"unknown knowledge build strategy "
                f"{self.knowledge_build!r} (known: {known})"
            )


class Engine:
    """Parallel drop-in for ``Translator.translate_batch``."""

    def __init__(
        self, translator: Translator, config: EngineConfig | None = None
    ):
        self.translator = translator
        self.config = config if config is not None else EngineConfig()

    def translate_batch(
        self, sequences: Iterable[PositioningSequence]
    ) -> BatchTranslationResult:
        """Translate a batch; output is identical to the serial path."""
        return self._run(partition(list(sequences), self.config.chunk_size))

    def translate_stream(
        self, sequences: Iterable[PositioningSequence]
    ) -> BatchTranslationResult:
        """Translate a sequence iterator with lazy, chunked ingestion.

        The input is consumed one chunk at a time as worker capacity frees
        up (the backends keep a bounded submission window), so phase one
        overlaps ingestion instead of waiting for the full batch.  The
        knowledge barrier still needs every phase-one result, so results
        accumulate until the input ends — the feed must be finite.
        """
        return self._run(iter_chunks(sequences, self.config.chunk_size))

    # ------------------------------------------------------------------
    def _run(
        self, chunks: Iterator[list[PositioningSequence]]
    ) -> BatchTranslationResult:
        started = time.perf_counter()
        sharded = self.config.knowledge_build == "sharded"
        backend = create_backend(self.config.backend, self.config.workers)
        # Captured up front: stats must not depend on reading the backend
        # after close() has torn the pool down.
        backend_name, backend_workers = backend.name, backend.workers
        backend.open(self.translator)
        try:
            # Phase one: fan out clean + annotate.  The payload generator
            # records every chunk it hands to the pool; map() yields chunk
            # results in the same submission order, keeping the two lists
            # aligned for the deterministic input-order merge below.
            consumed: list[list[PositioningSequence]] = []

            def payloads() -> Iterator[list[PositioningSequence]]:
                for chunk in chunks:
                    consumed.append(chunk)
                    yield chunk

            phase_one_fn = (
                _bind(run_phase_one_chunk, emit_partial=True)
                if sharded
                else run_phase_one_chunk
            )
            phase_one_chunks = list(backend.map(phase_one_fn, payloads()))
            phase_one_done = time.perf_counter()

            sequences = [s for chunk in consumed for s in chunk]
            phase_one = [
                pair for chunk in phase_one_chunks for pair in chunk.pairs
            ]
            annotated = [
                sequence
                for chunk in phase_one_chunks
                for sequence in chunk.annotated
            ]

            # Barrier: sharded mode merges the per-chunk shards the
            # workers already aggregated — O(#regions + #edges) per chunk;
            # rebuild mode re-observes every annotated sequence on the
            # caller.  Both produce byte-identical knowledge.
            if sharded:
                knowledge = build_batch_knowledge(
                    self.translator,
                    partials=[
                        chunk.partial
                        for chunk in phase_one_chunks
                        if chunk.partial is not None
                    ],
                )
            else:
                knowledge = build_batch_knowledge(self.translator, annotated)
            knowledge_done = time.perf_counter()

            # Phase two: fan out complementing with the shared knowledge.
            complements: list[ComplementResult] | None = None
            if knowledge is not None:
                complements = []
                phase_two_chunks = partition(
                    annotated, self.config.chunk_size
                )
                if phase_two_chunks:
                    backend.rebind((self.translator, knowledge))
                    for chunk_result in backend.map(
                        _phase_two_with_knowledge, phase_two_chunks
                    ):
                        complements.extend(chunk_result)
            finished = time.perf_counter()
        finally:
            backend.close()

        results = assemble_results(sequences, phase_one, complements)
        count = len(sequences)
        stats = BatchStats(
            backend=backend_name,
            workers=backend_workers,
            chunk_size=self.config.chunk_size,
            chunk_count=len(consumed),
            phases=(
                PhaseStats("clean+annotate", phase_one_done - started, count),
                PhaseStats(
                    "knowledge", knowledge_done - phase_one_done, count
                ),
                PhaseStats("complement", finished - knowledge_done, count),
            ),
        )
        return BatchTranslationResult(
            results, knowledge, finished - started, stats
        )
