"""The parallel batch-translation engine.

``Translator.translate_batch`` is two-phase, and phase one (clean +
annotate) is embarrassingly parallel per sequence; only the mobility
knowledge build genuinely needs the whole batch ("referring to other
generated mobility semantics sequences", paper §3).  The :class:`Engine`
exploits exactly that structure:

1. partition the batch into chunks and fan phase one out across an
   :class:`~repro.engine.backends.ExecutionBackend` worker pool;
2. run the global knowledge build as the barrier phase on the caller;
3. fan phase two (complementing) back out over the same pool;
4. merge everything **in input order**, so the output is identical to the
   serial ``Translator.translate_batch`` — same results, same knowledge,
   just faster.

:meth:`Engine.translate_stream` accepts any iterator of sequences and
chunks it lazily, so a live feed (see
:func:`repro.positioning.stream.sequence_stream`) can be translated
without materializing the full batch before phase one starts.
:meth:`Engine.translate_increment` is the truly-online shape: it
translates one bounded stream window and **folds** the window's
:class:`~repro.core.complementing.PartialKnowledge` into long-running
knowledge instead of rebuilding — the unit of work of the live streaming
service in :mod:`repro.live`.  That long-running knowledge is owned by a
:class:`~repro.knowledge.KnowledgeStore` (see :meth:`Engine.make_store`
and ``EngineConfig.retention``): folds go through the store, and the
store's retention policy — unbounded, sliding-window, or exponential
decay — decides at each epoch roll what the prior keeps remembering.

Knowledge build strategies
--------------------------

The barrier in step 2 supports two strategies
(``EngineConfig.knowledge_build``), both producing byte-identical
knowledge and results:

- ``"sharded"`` (default) — each phase-one worker also aggregates its
  chunk's :class:`~repro.core.complementing.PartialKnowledge` shard (raw
  transition counts, outgoing totals, per-region stats); the barrier then
  merges the shards in O(#regions + #edges) per chunk.  The knowledge
  build scales out with phase one instead of re-observing every sequence
  on one core, so the ``knowledge`` phase in :class:`BatchStats` reports
  pure merge time.
- ``"rebuild"`` — the pre-sharding behaviour: the caller re-observes every
  annotated sequence serially at the barrier.  Kept as the reference path
  and for A/B benchmarks (``benchmarks/bench_knowledge_shard.py``).

Sharding is exact, not approximate: dwell totals accumulate through
:class:`~repro.core.complementing.ExactSum`, so the merged aggregates are
bit-for-bit independent of the chunking.

Warm pools and shared backends
------------------------------

Worker pools stay warm across phases: the backend context installed at
``open`` is a **venue map** ``{context_key: translator}``, shipped to each
worker once at pool startup, and the phase-two knowledge travels through
the backend's generation-keyed :meth:`~ExecutionBackend.share` channel —
pickled once, cached per worker — instead of restarting the pool at the
barrier.  Because the context is a map, several engines (one per venue,
each with its own ``context_key``) can share a single externally-managed
backend: pass ``backend=`` to the constructor and the engine maps its
phases onto that pool without opening or closing it.  This is how the
live service in :mod:`repro.live` serves heterogeneous multi-building
traffic from one worker pool.

Phase-one caching
-----------------

``EngineConfig.phase_one_cache`` (off by default) memoizes clean+annotate
per ``(device id, records)`` in a small engine-owned LRU.  Re-translating
the same sequences — overlapping stream windows, or a re-run after
tweaking the complementing config — then skips phase one entirely for the
cached sequences while still producing the exact batch output (phase one
is deterministic per sequence).
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from functools import partial as _bind
from typing import Iterable, Iterator, Mapping

from ..columnar import run_phase_one_chunk_columnar
from ..core.complementing import (
    ComplementResult,
    MobilityKnowledge,
    PartialKnowledge,
)
from ..core.semantics import MobilitySemanticsSequence
from ..core.translator import (
    BatchStats,
    BatchTranslationResult,
    PhaseOneChunk,
    PhaseStats,
    Translator,
    assemble_results,
    build_batch_knowledge,
    build_partial_knowledge,
    run_phase_one_chunk,
    run_phase_two_chunk,
)
from ..errors import ConfigError
from ..knowledge import KnowledgeStore, parse_retention
from ..positioning import PositioningSequence
from ..telemetry import get_registry
from .backends import (
    BACKENDS,
    ExecutionBackend,
    create_backend,
    resolve_shared,
)
from .chunking import iter_chunks, partition

#: Default sequences per chunk: coarse enough to amortize dispatch,
#: fine enough to load-balance uneven sequence lengths.
DEFAULT_CHUNK_SIZE = 8

#: The two barrier strategies; both yield byte-identical knowledge.
KNOWLEDGE_BUILDS = ("rebuild", "sharded")

#: Phase-one record layouts; both produce bit-for-bit identical output
#: (``tests/test_columnar_equivalence.py`` is the proof).
RECORD_LAYOUTS = ("objects", "columnar")


def _default_record_layout() -> str:
    """Engine default layout, overridable via ``TRIPS_RECORD_LAYOUT``.

    The environment override is what makes CI's ``layout=columnar``
    matrix leg honest: the whole tier-1 suite runs its engines on the
    columnar path without every test naming the layout explicitly.
    """
    return os.environ.get("TRIPS_RECORD_LAYOUT", "objects")

#: Context key of a stand-alone engine in its single-entry venue map.
DEFAULT_CONTEXT_KEY = "default"


def _phase_one_task(
    venues: Mapping[str, Translator],
    payload: tuple[str, list[PositioningSequence]],
    emit_partial: bool = False,
    record_layout: str = "objects",
) -> PhaseOneChunk:
    """Phase-one worker task: resolve the venue translator, run the chunk.

    The context is a venue map so one pool can serve several translators;
    a stand-alone engine opens the map with a single entry.
    ``record_layout`` picks the per-record object pipeline or the
    columnar kernels — both produce identical chunks, so the choice is
    invisible to everything past this dispatch.
    """
    key, chunk = payload
    started = time.perf_counter()
    if record_layout == "columnar":
        result = run_phase_one_chunk_columnar(
            venues[key], chunk, emit_partial=emit_partial
        )
    else:
        result = run_phase_one_chunk(
            venues[key], chunk, emit_partial=emit_partial
        )
    # Worker-side timing rides home on the chunk itself: with the
    # ``processes`` backend there is no shared registry, so the float on
    # the result is how per-chunk telemetry crosses the process boundary.
    return replace(result, seconds=time.perf_counter() - started)


def _phase_two_task(
    venues: Mapping[str, Translator],
    payload: "tuple[str, object, list[MobilitySemanticsSequence]]",
) -> "tuple[float, list[ComplementResult]]":
    """Phase-two worker task bound to shared knowledge.

    The knowledge travels as a :class:`~repro.engine.backends.SharedValue`
    token — published once by the caller, resolved (and cached) per
    worker — so the translator installed at pool startup is never
    re-shipped at the barrier.  Because the resolved knowledge object is
    cached per worker, the compiled transition model the chunk runner
    attaches to it (``run_phase_two_chunk`` → ``prime()``) is cached
    right alongside: a process worker compiles once on its first chunk
    and every later chunk of the same generation reuses the tables.
    In-process backends share one knowledge object, so they share one
    compiled model the same way.  Returns ``(worker seconds,
    complements)``; like phase one, the timing crosses the process
    boundary on the result because workers have no shared registry.
    """
    key, token, chunk = payload
    started = time.perf_counter()
    knowledge = resolve_shared(token)
    results = run_phase_two_chunk(venues[key], (knowledge, chunk))
    return time.perf_counter() - started, results


@dataclass(frozen=True)
class EngineConfig:
    """How the engine partitions and executes a batch.

    ``retention`` is the knowledge-lifecycle spec consumed by
    :meth:`Engine.make_store` — ``"unbounded"`` (default, fold forever),
    ``"window:N"`` / ``"window:Ns"`` (sliding window by epoch count /
    data-time TTL) or ``"decay:H"`` (exponential decay, half-life in
    epoch rolls); see :func:`repro.knowledge.parse_retention`.  It only
    shapes store-based incremental translation (the live service rolls
    one epoch per ingestion window); one-shot batch translation always
    builds the full-batch knowledge.
    """

    backend: str = "serial"
    workers: int | None = None
    chunk_size: int = DEFAULT_CHUNK_SIZE
    knowledge_build: str = "sharded"
    phase_one_cache: int = 0
    retention: str = "unbounded"
    #: Phase-one record layout: ``"objects"`` (per-record pipeline) or
    #: ``"columnar"`` (flat-array kernels, bit-for-bit identical output).
    #: Defaults from ``TRIPS_RECORD_LAYOUT`` when set.
    record_layout: str = field(default_factory=_default_record_layout)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            known = ", ".join(sorted(BACKENDS))
            raise ConfigError(
                f"unknown execution backend {self.backend!r} (known: {known})"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigError(f"worker count must be >= 1, got {self.workers}")
        if self.chunk_size < 1:
            raise ConfigError(
                f"chunk size must be >= 1, got {self.chunk_size}"
            )
        if self.knowledge_build not in KNOWLEDGE_BUILDS:
            known = ", ".join(KNOWLEDGE_BUILDS)
            raise ConfigError(
                f"unknown knowledge build strategy "
                f"{self.knowledge_build!r} (known: {known})"
            )
        if self.phase_one_cache < 0:
            raise ConfigError(
                f"phase-one cache size must be >= 0, got "
                f"{self.phase_one_cache}"
            )
        if self.record_layout not in RECORD_LAYOUTS:
            known = ", ".join(RECORD_LAYOUTS)
            raise ConfigError(
                f"unknown record layout {self.record_layout!r} "
                f"(known: {known})"
            )
        parse_retention(self.retention)  # validate the spec eagerly


def _phase_one_cache_key(sequence: PositioningSequence) -> tuple:
    """Exact memoization key: device id plus every record's coordinates.

    The full coordinate tuple (not a hash digest) is used so lookups can
    never collide; the LRU is small, so holding the key tuples is cheap.
    The key is deliberately layout-independent: both record layouts
    produce identical phase-one results, so a pair cached under one
    layout is byte-valid under the other.
    """
    return (
        sequence.device_id,
        tuple(
            (r.timestamp, r.location.x, r.location.y, r.location.floor)
            for r in sequence.records
        ),
    )


def _window_span(
    sequences: list[PositioningSequence],
) -> tuple[float | None, float | None]:
    """Earliest and latest record timestamps across a window's sequences.

    Data time, not wall time: the knowledge store's TTL retention must
    expire the same epochs on a replayed feed as on a live one.  Records
    within a sequence are time-ordered, so first/last suffice.
    """
    start: float | None = None
    end: float | None = None
    for sequence in sequences:
        if not sequence.records:
            continue
        first = sequence.records[0].timestamp
        last = sequence.records[-1].timestamp
        if start is None or first < start:
            start = first
        if end is None or last > end:
            end = last
    return start, end


class Engine:
    """Parallel drop-in for ``Translator.translate_batch``.

    ``backend`` attaches an externally-managed (already open) pool whose
    context is a venue map containing ``context_key``; the engine then
    never opens or closes it, which lets several engines — one per venue —
    interleave phases on a single warm pool.  Without ``backend`` the
    engine creates, opens and closes its own pool per call, registering
    itself under ``context_key`` (default ``"default"``).
    """

    def __init__(
        self,
        translator: Translator,
        config: EngineConfig | None = None,
        *,
        backend: ExecutionBackend | None = None,
        context_key: str = DEFAULT_CONTEXT_KEY,
    ):
        self.translator = translator
        self.config = config if config is not None else EngineConfig()
        self.context_key = context_key
        self._attached = backend
        self._phase_one_cache: "OrderedDict[tuple, tuple]" | None = (
            OrderedDict() if self.config.phase_one_cache > 0 else None
        )

    def translate_batch(
        self, sequences: Iterable[PositioningSequence]
    ) -> BatchTranslationResult:
        """Translate a batch; output is identical to the serial path."""
        return self._run(partition(list(sequences), self.config.chunk_size))

    def translate_stream(
        self, sequences: Iterable[PositioningSequence]
    ) -> BatchTranslationResult:
        """Translate a sequence iterator with lazy, chunked ingestion.

        The input is consumed one chunk at a time as worker capacity frees
        up (the backends keep a bounded submission window), so phase one
        overlaps ingestion instead of waiting for the full batch.  The
        knowledge barrier still needs every phase-one result, so results
        accumulate until the input ends — the feed must be finite.  For
        unbounded feeds, cut windows and call
        :meth:`translate_increment` per window (or use
        :class:`repro.live.LiveTranslationService`).
        """
        return self._run(iter_chunks(sequences, self.config.chunk_size))

    def translate_increment(
        self,
        sequences: Iterable[PositioningSequence],
        knowledge: MobilityKnowledge | None = None,
        *,
        store: KnowledgeStore | None = None,
    ) -> tuple[BatchTranslationResult, MobilityKnowledge | None]:
        """Translate one stream window, folding its shard into ``knowledge``.

        The incremental path of the live streaming service: phase one
        runs as usual, but instead of building fresh batch knowledge at
        the barrier, the window's :class:`PartialKnowledge` is **folded**
        into the given long-running ``knowledge`` (created on first call
        when ``None``), and phase two complements the window against the
        folded cumulative state.  Returns ``(window result, knowledge)``;
        the returned knowledge is the same evolving object — pass it back
        in for the next window.

        Knowledge ownership lives in a
        :class:`~repro.knowledge.KnowledgeStore`: pass ``store=`` (see
        :meth:`make_store`) to fold into a store whose retention policy
        may retire or discount old epochs at the caller's epoch rolls —
        the live service holds one store per venue and rolls once per
        ingestion window.  Without ``store``, a bare ``knowledge`` object
        is wrapped in a transient unbounded store, which preserves the
        legacy fold-forever behaviour exactly (the caller's object is
        mutated in place, as before).

        Folding is exact (see :class:`~repro.core.complementing.ExactSum`),
        so under unbounded retention the cumulative knowledge after the
        final window is bit-for-bit identical to a one-shot batch build
        over all windows' sequences.  Note the *per-window* complements
        are computed against the knowledge as of that window; re-complement
        at end of stream (see ``LiveTranslationService.finalize``) to
        reproduce the one-shot batch output exactly.
        """
        if store is not None and knowledge is not None:
            raise ConfigError(
                "pass either a knowledge object or a store, not both"
            )
        result = self._run(
            partition(list(sequences), self.config.chunk_size),
            fold_into=knowledge,
            incremental=True,
            store=store,
        )
        return result, result.knowledge

    def make_store(
        self,
        retention: "str | None" = None,
        *,
        knowledge: MobilityKnowledge | None = None,
    ) -> KnowledgeStore | None:
        """A fresh knowledge store for this engine's venue.

        Vocabulary and smoothing come from the translator; the retention
        policy from ``retention`` (spec string) or, when ``None``, from
        ``EngineConfig.retention``.  Returns ``None`` when the venue
        builds no knowledge at all (complementing disabled or no semantic
        regions) — the same gate every knowledge build shares.

        ``knowledge`` attaches an *external* knowledge object instead of
        creating a fresh one: the store adopts it and every fold through
        :meth:`translate_increment` mutates it in place.  This is how a
        caller that owns knowledge outside the engine — a distributed
        coordinator rebasing a shard on merged cluster state, or a warm
        restart from a serialized prior — plugs it into the incremental
        path without losing the store's epoch lifecycle.  The venue gate
        still applies: a venue that builds no knowledge returns ``None``
        even when ``knowledge`` is given.
        """
        regions = self.translator.knowledge_regions()
        if regions is None:
            return None
        if knowledge is not None:
            return KnowledgeStore(
                knowledge=knowledge,
                retention=(
                    retention
                    if retention is not None
                    else self.config.retention
                ),
            )
        return KnowledgeStore(
            regions,
            smoothing=self.translator.config.knowledge_smoothing,
            retention=(
                retention if retention is not None else self.config.retention
            ),
        )

    def phase_one(
        self, sequences: Iterable[PositioningSequence]
    ) -> list:
        """Run clean + annotate alone, fanned out over the pool.

        Returns the per-sequence ``(cleaning, annotation)`` pairs in
        input order, with no knowledge build and no complementing —
        phase one is deterministic per sequence, which is what makes
        this the durable-state recovery path: replaying journaled
        record batches through it rebuilds exactly the phase-one output
        the crashed run computed, ready for a ``finalize()``-style
        re-complement against the recovered knowledge.
        """
        backend, owns = self._backend()
        if owns:
            backend.open({self.context_key: self.translator})
        try:
            _, pairs, _ = self._map_phase_one(
                backend,
                partition(list(sequences), self.config.chunk_size),
                emit_partial=False,
            )
            return pairs
        finally:
            if owns:
                backend.close()

    def complement(
        self,
        annotated: list[MobilitySemanticsSequence],
        knowledge: MobilityKnowledge,
    ) -> list[ComplementResult]:
        """Run the complementing phase alone, fanned out over the pool.

        Reusable phase plumbing: given already-annotated sequences and a
        knowledge object, produce the per-sequence complements exactly as
        the batch path would.  The live service uses this to re-complement
        every retained window against the final cumulative knowledge,
        which is what makes a replayed finite stream reproduce the
        one-shot batch output.
        """
        backend, owns = self._backend()
        if owns:
            backend.open({self.context_key: self.translator})
        try:
            return self._map_phase_two(backend, annotated, knowledge)
        finally:
            if owns:
                backend.close()

    # ------------------------------------------------------------------
    def _backend(self) -> tuple[ExecutionBackend, bool]:
        """The backend to run on, and whether this engine owns it."""
        if self._attached is not None:
            return self._attached, False
        return create_backend(self.config.backend, self.config.workers), True

    def _map_phase_two(
        self,
        backend: ExecutionBackend,
        annotated: list[MobilitySemanticsSequence],
        knowledge: MobilityKnowledge,
    ) -> list[ComplementResult]:
        """Fan complementing out over the pool via a shared-knowledge token.

        One share per barrier: every chunk task resolves the same token,
        so per-worker knowledge caches (and the compiled transition model
        attached to the cached knowledge) stay warm across all chunks of
        the phase.
        """
        complements: list[ComplementResult] = []
        chunks = partition(annotated, self.config.chunk_size)
        if not chunks:
            return complements
        registry = get_registry()
        token = backend.share(knowledge)
        try:
            key = self.context_key
            for seconds, chunk_result in backend.map(
                _phase_two_task, [(key, token, chunk) for chunk in chunks]
            ):
                if registry.enabled:
                    registry.histogram(
                        "trips_engine_chunk_seconds",
                        phase="two",
                        layout=self.config.record_layout,
                    ).observe(seconds)
                complements.extend(chunk_result)
        finally:
            backend.release(token)
        return complements

    def _map_phase_one(
        self,
        backend: ExecutionBackend,
        chunks: Iterator[list[PositioningSequence]],
        emit_partial: bool,
    ) -> tuple[list[list[PositioningSequence]], list, list[PartialKnowledge]]:
        """Fan phase one out; returns (consumed chunks, pairs, partials).

        The payload generator records every chunk it hands to the pool;
        ``map()`` yields chunk results in the same submission order,
        keeping the lists aligned for the deterministic input-order merge.
        """
        if self._phase_one_cache is not None:
            return self._map_phase_one_cached(backend, chunks, emit_partial)
        consumed: list[list[PositioningSequence]] = []
        key = self.context_key

        def payloads() -> Iterator[tuple[str, list[PositioningSequence]]]:
            for chunk in chunks:
                consumed.append(chunk)
                yield (key, chunk)

        fn = _bind(
            _phase_one_task,
            emit_partial=emit_partial,
            record_layout=self.config.record_layout,
        )
        phase_one_chunks = list(backend.map(fn, payloads()))
        self._observe_phase_one_chunks(phase_one_chunks)
        pairs = [pair for chunk in phase_one_chunks for pair in chunk.pairs]
        partials = [
            chunk.partial
            for chunk in phase_one_chunks
            if chunk.partial is not None
        ]
        return consumed, pairs, partials

    def _observe_phase_one_chunks(self, chunks: "list[PhaseOneChunk]") -> None:
        """Feed the workers' ride-along chunk timings into the registry."""
        registry = get_registry()
        if not registry.enabled or not chunks:
            return
        layout = self.config.record_layout
        histogram = registry.histogram(
            "trips_engine_chunk_seconds", phase="one", layout=layout
        )
        for chunk in chunks:
            if chunk.seconds is not None:
                histogram.observe(chunk.seconds)
        if layout == "columnar":
            registry.counter("trips_columnar_chunks_total").inc(len(chunks))

    def _map_phase_one_cached(
        self,
        backend: ExecutionBackend,
        chunks: Iterator[list[PositioningSequence]],
        emit_partial: bool,
    ) -> tuple[list[list[PositioningSequence]], list, list[PartialKnowledge]]:
        """Phase one with the engine-owned clean+annotate LRU consulted.

        Cache misses are re-grouped into pure-miss payloads (so worker
        shards cover exactly the sequences they annotated); the cached
        sequences contribute one caller-built shard instead.  Shard
        merging is exact and order-independent, so the regrouping cannot
        change the knowledge.
        """
        cache = self._phase_one_cache
        assert cache is not None
        limit = self.config.phase_one_cache
        consumed: list[list[PositioningSequence]] = []
        slots: list[list] = []
        hit_pairs: list = []
        miss_positions: list[tuple[int, list[int]]] = []
        miss_keys: list[list[tuple]] = []

        def payloads() -> Iterator[tuple[str, list[PositioningSequence]]]:
            # Generated lazily, like the uncached path: the cache is
            # consulted chunk by chunk as the input iterator is pulled,
            # so streaming ingestion still overlaps phase one.
            for chunk in chunks:
                chunk_index = len(consumed)
                consumed.append(chunk)
                row: list = []
                misses: list[int] = []
                keys: list[tuple] = []
                for position, sequence in enumerate(chunk):
                    cache_key = _phase_one_cache_key(sequence)
                    hit = cache.get(cache_key)
                    if hit is not None:
                        cache.move_to_end(cache_key)
                        hit_pairs.append(hit)
                    else:
                        misses.append(position)
                        keys.append(cache_key)
                    row.append(hit)
                slots.append(row)
                if misses:
                    miss_positions.append((chunk_index, misses))
                    miss_keys.append(keys)
                    yield (self.context_key, [chunk[p] for p in misses])

        fn = _bind(
            _phase_one_task,
            emit_partial=emit_partial,
            record_layout=self.config.record_layout,
        )
        mapped = list(backend.map(fn, payloads()))
        self._observe_phase_one_chunks(mapped)

        partials: list[PartialKnowledge] = []
        for (chunk_index, misses), keys, chunk_result in zip(
            miss_positions, miss_keys, mapped
        ):
            for position, cache_key, pair in zip(
                misses, keys, chunk_result.pairs
            ):
                slots[chunk_index][position] = pair
                cache[cache_key] = pair
                cache.move_to_end(cache_key)
                while len(cache) > limit:
                    cache.popitem(last=False)
            if chunk_result.partial is not None:
                partials.append(chunk_result.partial)

        if emit_partial and hit_pairs:
            hit_shard = build_partial_knowledge(
                self.translator,
                [annotation.sequence for _, annotation in hit_pairs],
            )
            if hit_shard is not None:
                partials.append(hit_shard)

        pairs = [pair for row in slots for pair in row]
        return consumed, pairs, partials

    # ------------------------------------------------------------------
    def _run(
        self,
        chunks: Iterator[list[PositioningSequence]],
        fold_into: MobilityKnowledge | None = None,
        incremental: bool = False,
        store: KnowledgeStore | None = None,
    ) -> BatchTranslationResult:
        registry = get_registry()
        mode = "incremental" if incremental else "batch"
        layout = self.config.record_layout
        with registry.trace("engine_run", mode=mode, layout=layout):
            result = self._run_phases(chunks, fold_into, incremental, store)
        if registry.enabled:
            for phase in result.stats.phases:
                registry.histogram(
                    "trips_engine_phase_seconds",
                    phase=phase.name,
                    layout=layout,
                ).observe(phase.seconds)
            registry.counter(
                "trips_engine_runs_total", mode=mode, layout=layout
            ).inc()
            registry.counter("trips_engine_sequences_total").inc(
                len(result.results)
            )
        return result

    def _run_phases(
        self,
        chunks: Iterator[list[PositioningSequence]],
        fold_into: MobilityKnowledge | None = None,
        incremental: bool = False,
        store: KnowledgeStore | None = None,
    ) -> BatchTranslationResult:
        started = time.perf_counter()
        sharded = self.config.knowledge_build == "sharded"
        backend, owns = self._backend()
        # Captured up front: stats must not depend on reading the backend
        # after close() has torn the pool down.
        backend_name, backend_workers = backend.name, backend.workers
        if owns:
            backend.open({self.context_key: self.translator})
        try:
            consumed, phase_one, partials = self._map_phase_one(
                backend, chunks, emit_partial=sharded
            )
            phase_one_done = time.perf_counter()

            sequences = [s for chunk in consumed for s in chunk]
            annotated = [
                annotation.sequence for _, annotation in phase_one
            ]

            # Barrier: sharded mode merges the per-chunk shards the
            # workers already aggregated — O(#regions + #edges) per chunk;
            # rebuild mode re-observes every annotated sequence on the
            # caller.  Both produce byte-identical knowledge.  Incremental
            # mode folds the window's shard into the long-running
            # knowledge instead of building from scratch.
            if incremental:
                knowledge = self._fold_window(
                    fold_into, annotated, partials, sequences, store
                )
            elif sharded:
                knowledge = build_batch_knowledge(
                    self.translator, partials=partials
                )
            else:
                knowledge = build_batch_knowledge(self.translator, annotated)
            knowledge_done = time.perf_counter()

            # Phase two: fan out complementing with the shared knowledge.
            complements: list[ComplementResult] | None = None
            if knowledge is not None:
                complements = self._map_phase_two(
                    backend, annotated, knowledge
                )
            finished = time.perf_counter()
        finally:
            if owns:
                backend.close()

        results = assemble_results(sequences, phase_one, complements)
        count = len(sequences)
        stats = BatchStats(
            backend=backend_name,
            workers=backend_workers,
            chunk_size=self.config.chunk_size,
            chunk_count=len(consumed),
            phases=(
                PhaseStats("clean+annotate", phase_one_done - started, count),
                PhaseStats(
                    "knowledge", knowledge_done - phase_one_done, count
                ),
                PhaseStats("complement", finished - knowledge_done, count),
            ),
        )
        return BatchTranslationResult(
            results, knowledge, finished - started, stats
        )

    def _fold_window(
        self,
        fold_into: MobilityKnowledge | None,
        annotated: list[MobilitySemanticsSequence],
        partials: list[PartialKnowledge],
        sequences: list[PositioningSequence],
        store: KnowledgeStore | None = None,
    ) -> MobilityKnowledge | None:
        """The incremental barrier: fold the window into its store.

        Knowledge ownership is delegated to a
        :class:`~repro.knowledge.KnowledgeStore`: the caller's store when
        given, otherwise a transient unbounded wrap of the bare
        ``fold_into`` knowledge (created on first window), so the legacy
        path mutates the same object with identical, fold-forever
        semantics.  Under the ``rebuild`` strategy the workers did not
        aggregate shards, so the window's shard is built on the caller;
        either way the fold applies exactly the same counting rules as a
        batch build, so replaying all windows under unbounded retention
        reproduces the one-shot batch knowledge bit for bit.  The
        window's data-time span travels into the store's open epoch for
        TTL retention to measure against.
        """
        regions = self.translator.knowledge_regions()
        if regions is None:
            return fold_into
        if not partials:
            window = build_partial_knowledge(self.translator, annotated)
            partials = [window] if window is not None else []
        if store is None:
            knowledge = fold_into
            if knowledge is None:
                knowledge = MobilityKnowledge(
                    regions=regions,
                    smoothing=self.translator.config.knowledge_smoothing,
                )
            store = KnowledgeStore.wrap(knowledge)
        start, end = _window_span(sequences)
        for partial in partials:
            store.fold(partial, start=start, end=end)
        return store.knowledge
