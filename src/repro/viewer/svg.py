"""A minimal SVG document builder.

The Viewer's map view renders to SVG text — the headless stand-in for the
paper's browser canvas.  Only the handful of primitives the map view needs
are implemented; the builder keeps elements in insertion order (SVG paints
back-to-front) and supports named groups for layer visibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from xml.sax.saxutils import escape, quoteattr

from ..errors import ViewerError


@dataclass
class SvgDocument:
    """An SVG scene graph flattened to ordered element strings."""

    width: float
    height: float
    view_box: tuple[float, float, float, float] | None = None
    background: str | None = "#ffffff"
    _elements: list[str] = field(default_factory=list)
    _open_groups: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ViewerError("SVG document needs positive dimensions")

    # ------------------------------------------------------------------
    # Groups (map-view layers)
    # ------------------------------------------------------------------
    def open_group(self, group_id: str, opacity: float = 1.0) -> None:
        """Start a named group; elements until close_group nest inside."""
        self._elements.append(
            f'<g id={quoteattr(group_id)} opacity="{opacity:g}">'
        )
        self._open_groups.append(group_id)

    def close_group(self) -> None:
        """Close the innermost open group."""
        if not self._open_groups:
            raise ViewerError("close_group with no open group")
        self._open_groups.pop()
        self._elements.append("</g>")

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def polygon(
        self,
        points: list[tuple[float, float]],
        fill: str = "none",
        stroke: str = "#000000",
        stroke_width: float = 0.1,
        opacity: float = 1.0,
        title: str | None = None,
    ) -> None:
        """A closed polygon."""
        if len(points) < 3:
            raise ViewerError("polygon needs >= 3 points")
        coordinates = " ".join(f"{x:.3f},{y:.3f}" for x, y in points)
        body = self._title(title)
        closing = f">{body}</polygon>" if body else " />"
        self._elements.append(
            f'<polygon points="{coordinates}" fill={quoteattr(fill)} '
            f'stroke={quoteattr(stroke)} stroke-width="{stroke_width:g}" '
            f'opacity="{opacity:g}"{closing}'
        )

    def polyline(
        self,
        points: list[tuple[float, float]],
        stroke: str = "#000000",
        stroke_width: float = 0.15,
        opacity: float = 1.0,
        dashed: bool = False,
    ) -> None:
        """An open polyline."""
        if len(points) < 2:
            raise ViewerError("polyline needs >= 2 points")
        coordinates = " ".join(f"{x:.3f},{y:.3f}" for x, y in points)
        dash = ' stroke-dasharray="0.8,0.5"' if dashed else ""
        self._elements.append(
            f'<polyline points="{coordinates}" fill="none" '
            f'stroke={quoteattr(stroke)} stroke-width="{stroke_width:g}" '
            f'opacity="{opacity:g}"{dash} />'
        )

    def circle(
        self,
        center: tuple[float, float],
        radius: float,
        fill: str = "#000000",
        stroke: str = "none",
        stroke_width: float = 0.0,
        opacity: float = 1.0,
        title: str | None = None,
    ) -> None:
        """A circle marker."""
        if radius <= 0:
            raise ViewerError("circle needs positive radius")
        body = self._title(title)
        closing = f">{body}</circle>" if body else " />"
        self._elements.append(
            f'<circle cx="{center[0]:.3f}" cy="{center[1]:.3f}" '
            f'r="{radius:g}" fill={quoteattr(fill)} stroke={quoteattr(stroke)} '
            f'stroke-width="{stroke_width:g}" opacity="{opacity:g}"{closing}'
        )

    def line(
        self,
        start: tuple[float, float],
        end: tuple[float, float],
        stroke: str = "#000000",
        stroke_width: float = 0.1,
        opacity: float = 1.0,
    ) -> None:
        """A line segment."""
        self._elements.append(
            f'<line x1="{start[0]:.3f}" y1="{start[1]:.3f}" '
            f'x2="{end[0]:.3f}" y2="{end[1]:.3f}" stroke={quoteattr(stroke)} '
            f'stroke-width="{stroke_width:g}" opacity="{opacity:g}" />'
        )

    def text(
        self,
        at: tuple[float, float],
        content: str,
        size: float = 1.6,
        fill: str = "#202020",
        anchor: str = "middle",
    ) -> None:
        """A text label."""
        self._elements.append(
            f'<text x="{at[0]:.3f}" y="{at[1]:.3f}" font-size="{size:g}" '
            f'fill={quoteattr(fill)} text-anchor={quoteattr(anchor)} '
            f'font-family="sans-serif">{escape(content)}</text>'
        )

    def rect(
        self,
        min_x: float,
        min_y: float,
        width: float,
        height: float,
        fill: str = "none",
        stroke: str = "#000000",
        stroke_width: float = 0.1,
        opacity: float = 1.0,
    ) -> None:
        """An axis-aligned rectangle."""
        self._elements.append(
            f'<rect x="{min_x:.3f}" y="{min_y:.3f}" width="{width:.3f}" '
            f'height="{height:.3f}" fill={quoteattr(fill)} '
            f'stroke={quoteattr(stroke)} stroke-width="{stroke_width:g}" '
            f'opacity="{opacity:g}" />'
        )

    @staticmethod
    def _title(title: str | None) -> str:
        # <title> renders as a hover tooltip — the map view's "necessary
        # tooltips" from the paper.
        if title is None:
            return ""
        return f"<title>{escape(title)}</title>"

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def to_string(self) -> str:
        """The complete SVG document."""
        if self._open_groups:
            raise ViewerError(
                f"unclosed SVG groups: {self._open_groups}"
            )
        if self.view_box is not None:
            min_x, min_y, width, height = self.view_box
            box = f'viewBox="{min_x:g} {min_y:g} {width:g} {height:g}" '
        else:
            box = f'viewBox="0 0 {self.width:g} {self.height:g}" '
        parts = [
            '<?xml version="1.0" encoding="UTF-8"?>',
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width:g}" height="{self.height:g}" {box}>',
        ]
        if self.background is not None:
            parts.append(
                f'<rect x="-1e6" y="-1e6" width="2e6" height="2e6" '
                f'fill={quoteattr(self.background)} />'
            )
        parts.extend(self._elements)
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path) -> None:
        """Write the document to a file."""
        from pathlib import Path

        Path(path).write_text(self.to_string(), encoding="utf-8")
