"""Viewer engine (substrate S9).

The headless counterpart of the paper's Viewer: the timeline-of-entries
abstraction with display-point policies, the SVG map view with per-source
overlays and visibility toggles, synchronized selection, floor switching,
ASCII rendering and animated playback.
"""

from .ascii_map import render_ascii
from .mapview import SOURCE_COLORS, LegendPanel, MapView
from .session import AnimationFrame, ViewerSession
from .svg import SvgDocument
from .timeline import (
    DataSourceKind,
    DisplayPointPolicy,
    Timeline,
    TimelineEntry,
    build_timelines,
    timeline_from_positioning,
    timeline_from_semantics,
)

__all__ = [
    "SOURCE_COLORS",
    "AnimationFrame",
    "DataSourceKind",
    "DisplayPointPolicy",
    "LegendPanel",
    "MapView",
    "SvgDocument",
    "Timeline",
    "TimelineEntry",
    "ViewerSession",
    "build_timelines",
    "render_ascii",
    "timeline_from_positioning",
    "timeline_from_semantics",
]
