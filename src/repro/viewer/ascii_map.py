"""ASCII rendering of a floor: the terminal-friendly map view.

Useful in tests and examples where inspecting SVG text is awkward: rooms
print as letter blocks, corridors as dots, doors as ``+``, stairs as ``S``,
and overlay points as ``*``.
"""

from __future__ import annotations

from ..dsm import DigitalSpaceModel, EntityKind
from ..errors import ViewerError
from ..geometry import Point


def render_ascii(
    model: DigitalSpaceModel,
    floor: int,
    cell_size: float = 2.0,
    overlay: list[Point] | None = None,
) -> str:
    """A character-grid rendering of one floor."""
    if cell_size <= 0:
        raise ViewerError(f"cell_size must be positive, got {cell_size}")
    bounds = model.floor_bounds(floor)
    n_cols = max(1, int(bounds.width / cell_size + 0.5))
    n_rows = max(1, int(bounds.height / cell_size + 0.5))
    grid = [["#"] * n_cols for _ in range(n_rows)]

    def cell_of(point: Point) -> tuple[int, int] | None:
        col = int((point.x - bounds.min_x) / cell_size)
        row = int((bounds.max_y - point.y) / cell_size)
        if 0 <= row < n_rows and 0 <= col < n_cols:
            return row, col
        return None

    room_letters = _room_letters(model, floor)
    for row in range(n_rows):
        for col in range(n_cols):
            x = bounds.min_x + (col + 0.5) * cell_size
            y = bounds.max_y - (row + 0.5) * cell_size
            partition = model.partition_at(Point(x, y, floor))
            if partition is None:
                continue
            if partition.kind is EntityKind.HALLWAY:
                grid[row][col] = "."
            else:
                grid[row][col] = room_letters.get(partition.entity_id, "o")

    for connector in model.vertical_connectors(floor):
        cell = cell_of(connector.anchor)
        if cell is not None:
            grid[cell[0]][cell[1]] = (
                "S" if connector.kind is EntityKind.STAIRCASE else "V"
            )
    for door in model.doors(floor):
        cell = cell_of(door.anchor)
        if cell is not None:
            grid[cell[0]][cell[1]] = "@" if door.is_entrance else "+"
    for point in overlay or []:
        if point.floor != floor:
            continue
        cell = cell_of(point)
        if cell is not None:
            grid[cell[0]][cell[1]] = "*"
    return "\n".join("".join(row) for row in grid)


def _room_letters(model: DigitalSpaceModel, floor: int) -> dict[str, str]:
    letters = {}
    alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
    index = 0
    for entity in model.partitions(floor):
        if entity.kind is EntityKind.ROOM:
            letters[entity.entity_id] = alphabet[index % len(alphabet)]
            index += 1
    return letters
