"""The Viewer's timeline abstraction over heterogeneous mobility data.

"We abstract each data sequence as a timeline of entries, each consists of
a display point and a time range" (paper §3).  Positioning records map to
(location, instant); mobility semantics map to (a display point selected
from their corresponding cleaned records, their temporal annotation) with
the temporally-middle / spatially-central policy switch of footnote 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..core.semantics import MobilitySemantic, MobilitySemanticsSequence
from ..dsm import DigitalSpaceModel
from ..errors import ViewerError
from ..geometry import Point, centroid_of
from ..positioning import PositioningSequence
from ..timeutil import TimeRange


class DataSourceKind(Enum):
    """The mobility data sources the paper's Figure 4 renders together."""

    RAW = "raw"
    CLEANED = "cleaned"
    SEMANTICS = "semantics"
    GROUND_TRUTH = "ground-truth"


class DisplayPointPolicy(Enum):
    """Footnote 1: how a semantics entry picks its display point."""

    TEMPORALLY_MIDDLE = "temporally-middle"
    SPATIALLY_CENTRAL = "spatially-central"


@dataclass(frozen=True)
class TimelineEntry:
    """One renderable entry: a display point plus a time range."""

    source: DataSourceKind
    display_point: Point
    time_range: TimeRange
    label: str = ""
    #: Index into the underlying sequence (record index or semantics index).
    index: int = -1

    @property
    def is_instant(self) -> bool:
        """True for point-in-time entries (positioning records)."""
        return self.time_range.duration == 0.0


@dataclass(frozen=True)
class Timeline:
    """An ordered list of entries from one data source."""

    source: DataSourceKind
    entries: tuple[TimelineEntry, ...]

    def __init__(self, source: DataSourceKind, entries) -> None:
        ordered = tuple(sorted(entries, key=lambda e: e.time_range))
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "entries", ordered)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, index: int) -> TimelineEntry:
        return self.entries[index]

    @property
    def time_range(self) -> TimeRange:
        """Span covered by all entries."""
        if not self.entries:
            raise ViewerError("empty timeline has no time range")
        return TimeRange(
            self.entries[0].time_range.start, self.entries[-1].time_range.end
        )

    def covered_by(self, window: TimeRange) -> list[TimelineEntry]:
        """Entries overlapping ``window`` — the synchronized-selection query.

        "When clicking a mobility semantics entry on the timeline, all
        relevant data entries covered by its time range will be displayed
        on map view synchronously."
        """
        return [e for e in self.entries if e.time_range.overlaps(window)]

    def at_time(self, moment: float) -> TimelineEntry | None:
        """The entry active at ``moment`` (latest starting at or before it)."""
        active = None
        for entry in self.entries:
            if entry.time_range.start <= moment:
                if entry.time_range.contains(moment) or entry.is_instant:
                    active = entry
            else:
                break
        return active

    def on_floor(self, floor: int) -> list[TimelineEntry]:
        """Entries whose display point is on ``floor`` (floor switching)."""
        return [e for e in self.entries if e.display_point.floor == floor]


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def timeline_from_positioning(
    sequence: PositioningSequence, source: DataSourceKind
) -> Timeline:
    """Each record becomes an instant entry at its own location."""
    entries = [
        TimelineEntry(
            source=source,
            display_point=record.location,
            time_range=TimeRange(record.timestamp, record.timestamp),
            label=f"{source.value} fix",
            index=index,
        )
        for index, record in enumerate(sequence)
    ]
    return Timeline(source, entries)


def timeline_from_semantics(
    semantics: MobilitySemanticsSequence,
    cleaned: PositioningSequence | None = None,
    policy: DisplayPointPolicy = DisplayPointPolicy.TEMPORALLY_MIDDLE,
    model: DigitalSpaceModel | None = None,
) -> Timeline:
    """Each triplet becomes an entry with a policy-selected display point.

    Backed triplets pick from their corresponding cleaned records; inferred
    triplets (no backing records) fall back to the region anchor, which
    requires ``model``.
    """
    entries = []
    for index, triplet in enumerate(semantics):
        point = _semantic_display_point(triplet, cleaned, policy, model)
        if point is None:
            continue
        entries.append(
            TimelineEntry(
                source=DataSourceKind.SEMANTICS,
                display_point=point,
                time_range=triplet.time_range,
                label=triplet.format(),
                index=index,
            )
        )
    return Timeline(DataSourceKind.SEMANTICS, entries)


def _semantic_display_point(
    triplet: MobilitySemantic,
    cleaned: PositioningSequence | None,
    policy: DisplayPointPolicy,
    model: DigitalSpaceModel | None,
) -> Point | None:
    records = []
    if cleaned is not None and triplet.record_indexes:
        records = [
            cleaned[i] for i in triplet.record_indexes if 0 <= i < len(cleaned)
        ]
    if records:
        if policy is DisplayPointPolicy.TEMPORALLY_MIDDLE:
            middle_time = triplet.time_range.middle
            best = min(records, key=lambda r: abs(r.timestamp - middle_time))
            return best.location
        return centroid_of([r.location for r in records])
    if model is not None and model.has_region(triplet.region_id):
        return model.region_anchor(triplet.region_id)
    return None


def build_timelines(
    raw: PositioningSequence | None = None,
    cleaned: PositioningSequence | None = None,
    semantics: MobilitySemanticsSequence | None = None,
    ground_truth: PositioningSequence | None = None,
    policy: DisplayPointPolicy = DisplayPointPolicy.TEMPORALLY_MIDDLE,
    model: DigitalSpaceModel | None = None,
) -> dict[DataSourceKind, Timeline]:
    """All available sources as timelines, keyed by kind."""
    timelines: dict[DataSourceKind, Timeline] = {}
    if raw is not None:
        timelines[DataSourceKind.RAW] = timeline_from_positioning(
            raw, DataSourceKind.RAW
        )
    if cleaned is not None:
        timelines[DataSourceKind.CLEANED] = timeline_from_positioning(
            cleaned, DataSourceKind.CLEANED
        )
    if ground_truth is not None:
        timelines[DataSourceKind.GROUND_TRUTH] = timeline_from_positioning(
            ground_truth, DataSourceKind.GROUND_TRUTH
        )
    if semantics is not None:
        timelines[DataSourceKind.SEMANTICS] = timeline_from_semantics(
            semantics, cleaned, policy, model
        )
    return timelines
