"""The Indoor Map Visualizer and Mobility Data Visualizer.

Renders one floor of the DSM plus any subset of the four mobility data
sources onto an SVG map view (paper Figure 4): entities and semantic
regions with tooltips, per-source trajectory overlays, semantics markers at
their display points, and the legend panel's visibility toggles.  Floor
switching is a parameter of ``render``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dsm import DigitalSpaceModel, EntityKind
from ..errors import ViewerError
from ..geometry import Circle, Point, Polygon, Polyline, Segment
from .svg import SvgDocument
from .timeline import DataSourceKind, Timeline, TimelineEntry

#: Per-source overlay colors (raw red, cleaned blue, truth green,
#: semantics amber) — one color per legend row.
SOURCE_COLORS = {
    DataSourceKind.RAW: "#d62728",
    DataSourceKind.CLEANED: "#1f77b4",
    DataSourceKind.GROUND_TRUTH: "#2ca02c",
    DataSourceKind.SEMANTICS: "#ff9900",
}

_KIND_FILL = {
    EntityKind.ROOM: "#f2ede4",
    EntityKind.HALLWAY: "#e8eef2",
    EntityKind.OBSTACLE: "#b0a89e",
    EntityKind.STAIRCASE: "#c9d8c9",
    EntityKind.ELEVATOR: "#c9cfe0",
}


@dataclass
class LegendPanel:
    """Visibility toggles per data source (the left panel in Figure 4)."""

    _visible: dict[DataSourceKind, bool] = field(
        default_factory=lambda: {kind: True for kind in DataSourceKind}
    )

    def toggle(self, source: DataSourceKind) -> bool:
        """Flip a source's visibility; returns the new state."""
        self._visible[source] = not self._visible[source]
        return self._visible[source]

    def set_visible(self, source: DataSourceKind, visible: bool) -> None:
        """Set a source's visibility explicitly."""
        self._visible[source] = visible

    def is_visible(self, source: DataSourceKind) -> bool:
        """Current visibility of a source."""
        return self._visible.get(source, True)

    def visible_sources(self) -> list[DataSourceKind]:
        """Sources currently shown, in enum order."""
        return [k for k in DataSourceKind if self._visible.get(k, True)]


class MapView:
    """Renders floors of one DSM with mobility-data overlays."""

    def __init__(
        self,
        model: DigitalSpaceModel,
        scale: float = 6.0,
        margin: float = 2.0,
    ):
        if scale <= 0:
            raise ViewerError(f"scale must be positive, got {scale}")
        self.model = model
        self.scale = scale
        self.margin = margin
        self.legend = LegendPanel()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(
        self,
        floor: int,
        timelines: dict[DataSourceKind, Timeline] | None = None,
        selection: list[TimelineEntry] | None = None,
        show_labels: bool = True,
    ) -> SvgDocument:
        """One floor as an SVG document with the visible overlays.

        ``selection`` (from a synchronized timeline click) is rendered
        highlighted on top of everything else.
        """
        if floor not in self.model.floor_numbers:
            raise ViewerError(f"model has no floor {floor}")
        bounds = self.model.floor_bounds(floor).expand(self.margin)
        width = bounds.width * self.scale
        height = bounds.height * self.scale
        doc = SvgDocument(width=width, height=height)
        transform = _Transform(bounds, self.scale)

        self._draw_entities(doc, transform, floor, show_labels)
        self._draw_regions(doc, transform, floor, show_labels)
        if timelines:
            for source in self.legend.visible_sources():
                timeline = timelines.get(source)
                if timeline is not None:
                    self._draw_timeline(doc, transform, timeline, floor)
        if selection:
            self._draw_selection(doc, transform, selection, floor)
        return doc

    # ------------------------------------------------------------------
    # Layers
    # ------------------------------------------------------------------
    def _draw_entities(
        self, doc: SvgDocument, tf: "_Transform", floor: int, labels: bool
    ) -> None:
        doc.open_group("entities")
        for entity in self.model.partitions(floor):
            self._draw_shape(
                doc, tf, entity.shape,
                fill=_KIND_FILL.get(entity.kind, "#eeeeee"),
                stroke="#555555",
                title=entity.name or entity.entity_id,
            )
        for entity in self.model.vertical_connectors(floor):
            self._draw_shape(
                doc, tf, entity.shape,
                fill=_KIND_FILL.get(entity.kind, "#cccccc"),
                stroke="#336633",
                title=entity.name or entity.entity_id,
            )
        for wall in self.model.walls(floor):
            if isinstance(wall.shape, Polyline):
                doc.polyline(
                    [tf.to_px(v) for v in wall.shape.vertices],
                    stroke="#222222",
                    stroke_width=0.3 * self.scale / 6.0,
                )
        for door in self.model.doors(floor):
            anchor = door.anchor
            doc.circle(
                tf.to_px(anchor),
                radius=0.35 * self.scale,
                fill="#8b5a2b" if not door.is_entrance else "#b22222",
                title=door.name or door.entity_id,
            )
        doc.close_group()

    def _draw_regions(
        self, doc: SvgDocument, tf: "_Transform", floor: int, labels: bool
    ) -> None:
        doc.open_group("regions", opacity=0.55)
        for region in self.model.regions(floor=floor):
            shape = region.shape
            if shape is None:
                # Member-mapped region: outline its first member entity.
                if not region.entity_ids:
                    continue
                shape = self.model.entity(region.entity_ids[0]).shape
            fill = _category_color(region.category)
            self._draw_shape(doc, tf, shape, fill=fill, stroke="#885511")
            if labels:
                anchor = self.model.region_anchor(region.region_id)
                doc.text(
                    tf.to_px(anchor), region.name, size=0.28 * self.scale * 6.0 / 6.0
                )
        doc.close_group()

    def _draw_timeline(
        self, doc: SvgDocument, tf: "_Transform", timeline: Timeline, floor: int
    ) -> None:
        entries = timeline.on_floor(floor)
        if not entries:
            return
        color = SOURCE_COLORS[timeline.source]
        doc.open_group(f"overlay-{timeline.source.value}")
        if timeline.source is DataSourceKind.SEMANTICS:
            for entry in entries:
                center = tf.to_px(entry.display_point)
                doc.circle(
                    center,
                    radius=0.8 * self.scale,
                    fill=color,
                    stroke="#663300",
                    stroke_width=0.1 * self.scale,
                    opacity=0.9,
                    title=entry.label,
                )
        else:
            points = [tf.to_px(e.display_point) for e in entries]
            if len(points) >= 2:
                doc.polyline(
                    points,
                    stroke=color,
                    stroke_width=0.18 * self.scale,
                    opacity=0.8,
                    dashed=timeline.source is DataSourceKind.RAW,
                )
            for point in points:
                doc.circle(point, radius=0.2 * self.scale, fill=color,
                           opacity=0.85)
        doc.close_group()

    def _draw_selection(
        self,
        doc: SvgDocument,
        tf: "_Transform",
        selection: list[TimelineEntry],
        floor: int,
    ) -> None:
        doc.open_group("selection")
        for entry in selection:
            if entry.display_point.floor != floor:
                continue
            doc.circle(
                tf.to_px(entry.display_point),
                radius=1.1 * self.scale,
                fill="none",
                stroke="#ff00ff",
                stroke_width=0.22 * self.scale,
                title=entry.label,
            )
        doc.close_group()

    def _draw_shape(
        self,
        doc: SvgDocument,
        tf: "_Transform",
        shape,
        fill: str,
        stroke: str,
        title: str | None = None,
    ) -> None:
        if isinstance(shape, Polygon):
            doc.polygon(
                [tf.to_px(v) for v in shape.vertices],
                fill=fill,
                stroke=stroke,
                stroke_width=0.08 * self.scale,
                title=title,
            )
        elif isinstance(shape, Circle):
            doc.circle(
                tf.to_px(shape.center),
                radius=shape.radius * self.scale,
                fill=fill,
                stroke=stroke,
                stroke_width=0.08 * self.scale,
                title=title,
            )
        elif isinstance(shape, Segment):
            doc.line(
                tf.to_px(shape.a), tf.to_px(shape.b), stroke=stroke,
                stroke_width=0.15 * self.scale,
            )


@dataclass(frozen=True)
class _Transform:
    """Metres to pixels, with the y axis flipped for SVG."""

    bounds: object
    scale: float

    def to_px(self, point: Point) -> tuple[float, float]:
        x = (point.x - self.bounds.min_x) * self.scale
        y = (self.bounds.max_y - point.y) * self.scale
        return (x, y)


def _category_color(category: str) -> str:
    palette = {
        "shop": "#ffd9a0",
        "cashier": "#ffb3b3",
        "hallway": "#dfe8ef",
        "facility": "#c9e7c9",
        "food": "#ffe0ef",
        "entertainment": "#d7c9f2",
        "office": "#cfe0f5",
        "gate": "#f5ddc9",
    }
    return palette.get(category, "#e0e0e0")
