"""The interactive Viewer session: navigation, selection, playback.

Binds the timelines of one device's translation to a map view and
implements the paper's interactions: the semantics timeline as the primary
navigator, synchronized selection of all entries covered by a clicked
triplet's time range, floor switching, visibility toggles, and sliding the
timeline to play "an animated, semantics-enriched movement".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.translator import TranslationResult
from ..dsm import DigitalSpaceModel
from ..errors import ViewerError
from ..positioning import PositioningSequence
from ..timeutil import TimeRange
from .mapview import MapView
from .svg import SvgDocument
from .timeline import (
    DataSourceKind,
    DisplayPointPolicy,
    Timeline,
    TimelineEntry,
    build_timelines,
)


@dataclass(frozen=True)
class AnimationFrame:
    """One playback frame: the moment plus each source's active entry."""

    moment: float
    active: dict[DataSourceKind, TimelineEntry]
    current_semantic_label: str


class ViewerSession:
    """Interactive browsing of one device's translation artifacts."""

    def __init__(
        self,
        model: DigitalSpaceModel,
        result: TranslationResult,
        ground_truth: PositioningSequence | None = None,
        policy: DisplayPointPolicy = DisplayPointPolicy.TEMPORALLY_MIDDLE,
        scale: float = 6.0,
    ):
        self.model = model
        self.result = result
        self.map_view = MapView(model, scale=scale)
        self.timelines = build_timelines(
            raw=result.raw,
            cleaned=result.cleaned,
            semantics=result.semantics,
            ground_truth=ground_truth,
            policy=policy,
            model=model,
        )
        self.current_floor = model.floor_numbers[0]
        self._selected_index: int | None = None

    @classmethod
    def from_live(
        cls,
        model: DigitalSpaceModel,
        results: Iterable[TranslationResult],
        device_id: str,
        ground_truth: PositioningSequence | None = None,
        policy: DisplayPointPolicy = DisplayPointPolicy.TEMPORALLY_MIDDLE,
        scale: float = 6.0,
    ) -> "ViewerSession":
        """A session over one device's accumulated live results.

        The live streaming service emits one result per device per
        window; this constructor stitches the device's windows (in
        arrival order) back into a single browsable translation, so the
        viewer shows the device's full history even while the stream is
        still being translated.  ``results`` is any iterable of
        translation results — a venue's retained live results, one
        finalized batch, or a plain list.
        """
        from ..live.merge import merge_device_results

        merged = merge_device_results(results, device_id)
        return cls(
            model,
            merged,
            ground_truth=ground_truth,
            policy=policy,
            scale=scale,
        )

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    @property
    def semantics_timeline(self) -> Timeline:
        """The primary navigator ("the most concise" source)."""
        timeline = self.timelines.get(DataSourceKind.SEMANTICS)
        if timeline is None:
            raise ViewerError("translation produced no semantics timeline")
        return timeline

    def switch_floor(self, floor: int) -> None:
        """The map view's floor switch."""
        if floor not in self.model.floor_numbers:
            raise ViewerError(f"model has no floor {floor}")
        self.current_floor = floor

    def toggle_source(self, source: DataSourceKind) -> bool:
        """Legend-panel visibility toggle."""
        return self.map_view.legend.toggle(source)

    # ------------------------------------------------------------------
    # Synchronized selection
    # ------------------------------------------------------------------
    def select_semantic(
        self, index: int
    ) -> dict[DataSourceKind, list[TimelineEntry]]:
        """Click a semantics entry: gather covered entries from all sources.

        Also moves the current floor to the clicked entry's display floor,
        exactly as clicking in the UI recenters the map.
        """
        timeline = self.semantics_timeline
        if not 0 <= index < len(timeline):
            raise ViewerError(
                f"semantic index {index} out of range 0..{len(timeline) - 1}"
            )
        entry = timeline[index]
        self._selected_index = index
        self.current_floor = entry.display_point.floor
        window = entry.time_range
        covered: dict[DataSourceKind, list[TimelineEntry]] = {}
        for source, source_timeline in self.timelines.items():
            covered[source] = source_timeline.covered_by(window)
        return covered

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, show_labels: bool = True) -> SvgDocument:
        """The current map view (floor + visible overlays + selection)."""
        selection: list[TimelineEntry] = []
        if self._selected_index is not None:
            covered = self.select_semantic(self._selected_index)
            selection = [e for entries in covered.values() for e in entries]
        return self.map_view.render(
            self.current_floor,
            timelines=self.timelines,
            selection=selection or None,
            show_labels=show_labels,
        )

    # ------------------------------------------------------------------
    # Playback
    # ------------------------------------------------------------------
    def animate(self, step_seconds: float = 10.0) -> list[AnimationFrame]:
        """Slide the timeline, emitting one frame per step.

        Each frame names the active entry per source and the current
        semantics label, which is what makes the playback
        "semantics-enriched".
        """
        if step_seconds <= 0:
            raise ViewerError(f"step must be positive, got {step_seconds}")
        span = self._full_span()
        frames: list[AnimationFrame] = []
        moment = span.start
        while moment <= span.end:
            active: dict[DataSourceKind, TimelineEntry] = {}
            for source, timeline in self.timelines.items():
                entry = timeline.at_time(moment)
                if entry is not None:
                    active[source] = entry
            semantic = active.get(DataSourceKind.SEMANTICS)
            frames.append(
                AnimationFrame(
                    moment=moment,
                    active=active,
                    current_semantic_label=semantic.label if semantic else "",
                )
            )
            moment += step_seconds
        return frames

    def _full_span(self) -> TimeRange:
        spans = [t.time_range for t in self.timelines.values() if len(t) > 0]
        if not spans:
            raise ViewerError("no timeline data to animate")
        span = spans[0]
        for other in spans[1:]:
            span = span.union_span(other)
        return span
