"""TRIPS reproduction: translating raw indoor positioning data into
visual mobility semantics.

A from-scratch Python implementation of the system demonstrated in
*TRIPS: A System for Translating Raw Indoor Positioning Data into Visual
Mobility Semantics* (Li, Lu, Shi, Chen, Chen, Shou — PVLDB 11(12), 2018),
including every substrate the demo depends on: the Digital Space Model,
the Space Modeler drawing tool, the Data Selector, the Event Editor, the
three-layer translation framework (cleaning / annotation / complementing),
the Viewer's timeline and map-view engine, and a Vita-style mobility
simulator standing in for the paper's proprietary mall dataset.

Quickstart::

    from repro import build_mall, MobilitySimulator, Translator

    mall = build_mall()
    simulator = MobilitySimulator(mall, seed=7)
    device = simulator.simulate_device("3a.0001.14")
    result = Translator(mall).translate(device.raw)
    print(result.semantics.format_table())
"""

from .buildings import build_airport, build_mall, build_office
from .core import (
    EVENT_PASS_BY,
    EVENT_STAY,
    EventIdentifier,
    HeuristicEventIdentifier,
    MobilityKnowledge,
    MobilitySemantic,
    MobilitySemanticsSequence,
    PartialKnowledge,
    RawDataCleaner,
    TranslationResult,
    Translator,
    TranslatorConfig,
    score_positions,
    score_semantics,
)
from .distributed import (
    ClusterStats,
    DeviceHashRouter,
    KnowledgeExchange,
    ShardedIngestService,
    VenueAffineRouter,
)
from .dsm import DigitalSpaceModel, load_dsm, save_dsm, validate_dsm
from .engine import Engine, EngineConfig
from .events import EventEditor, PatternRegistry
from .knowledge import (
    ExponentialDecay,
    KnowledgeStore,
    RetentionPolicy,
    SlidingWindow,
    Unbounded,
    parse_retention,
)
from .live import (
    LiveConfig,
    LiveStats,
    LiveTranslationService,
    VenueDispatcher,
)
from .geometry import Point
from .positioning import (
    DataSelector,
    PositioningSequence,
    RawPositioningRecord,
)
from .simulation import MobilitySimulator, SimulatedDevice, WifiErrorModel
from .spacemodel import AsciiFloorplanParser, DrawingCanvas, build_dsm
from .timeutil import TimeRange
from .viewer import MapView, ViewerSession

__version__ = "1.0.0"

__all__ = [
    "EVENT_PASS_BY",
    "EVENT_STAY",
    "AsciiFloorplanParser",
    "ClusterStats",
    "DataSelector",
    "DeviceHashRouter",
    "DigitalSpaceModel",
    "DrawingCanvas",
    "Engine",
    "EngineConfig",
    "EventEditor",
    "EventIdentifier",
    "ExponentialDecay",
    "HeuristicEventIdentifier",
    "KnowledgeExchange",
    "KnowledgeStore",
    "LiveConfig",
    "LiveStats",
    "LiveTranslationService",
    "MapView",
    "MobilityKnowledge",
    "MobilitySemantic",
    "MobilitySemanticsSequence",
    "MobilitySimulator",
    "PartialKnowledge",
    "PatternRegistry",
    "Point",
    "PositioningSequence",
    "RawDataCleaner",
    "RawPositioningRecord",
    "RetentionPolicy",
    "ShardedIngestService",
    "SimulatedDevice",
    "SlidingWindow",
    "TimeRange",
    "TranslationResult",
    "Translator",
    "TranslatorConfig",
    "Unbounded",
    "VenueAffineRouter",
    "VenueDispatcher",
    "ViewerSession",
    "WifiErrorModel",
    "build_airport",
    "build_dsm",
    "build_mall",
    "build_office",
    "load_dsm",
    "parse_retention",
    "save_dsm",
    "score_positions",
    "score_semantics",
    "validate_dsm",
]
