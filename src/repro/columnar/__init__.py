"""Columnar phase-one hot path: record batches and exact kernels.

The translation pipeline's phase one (clean + annotate) normally walks
per-record ``RawPositioningRecord`` objects.  This package provides a
columnar alternative: :class:`RecordBatch` holds one window of records as
parallel arrays (stdlib ``array`` columns, zero-copy numpy views when
numpy is available), and the kernels in :mod:`repro.columnar.kernels`
run the profiled hot loops — speed-constraint cleaning, point-in-region
annotation lookups, dwell/edge knowledge accumulation — over flat columns
with memoized, bulk-primed point location
(:mod:`repro.columnar.locate`).

Invariant: the columnar layout is **bit-for-bit** equivalent to the
object layout.  Every cleaning result, annotation, and knowledge shard
produced by :func:`run_phase_one_chunk_columnar` is identical — float
bits included — to ``run_phase_one_chunk``'s output, across buildings,
engine backends, knowledge-build modes and retention policies.  The
kernels achieve this by replicating the object model's arithmetic
expression for expression (``math.hypot`` distances, tolerance checks,
tie-break scan orders) and using vectorization only for comparison-based
candidate prefiltering, never for float arithmetic that reaches a
decision.  ``tests/test_columnar_equivalence.py`` proves the claim with
a differential hypothesis suite; ``selftest`` guards CI against the fast
path being silently skipped.

Select the layout with ``EngineConfig.record_layout`` (default
``"objects"``), the ``TRIPS_RECORD_LAYOUT`` environment variable, or the
CLI's ``--record-layout`` flag.
"""

from .batch import NUMPY_AVAILABLE, RecordBatch
from .kernels import (
    ColumnarCleaner,
    ColumnarSpatialMatcher,
    ColumnarSpeedValidator,
    ColumnarSplitter,
    accumulate_partial,
)
from .locate import LocatorSession, PointLocator
from .pipeline import run_phase_one_chunk_columnar, selftest

__all__ = [
    "NUMPY_AVAILABLE",
    "RecordBatch",
    "ColumnarCleaner",
    "ColumnarSpatialMatcher",
    "ColumnarSpeedValidator",
    "ColumnarSplitter",
    "LocatorSession",
    "PointLocator",
    "accumulate_partial",
    "run_phase_one_chunk_columnar",
    "selftest",
]
