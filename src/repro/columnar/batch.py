"""Columnar record batches: parallel arrays over one window of records.

A :class:`RecordBatch` stores one window's positioning records as parallel
columns — timestamps, x, y (``array('d')``), floors (``array('q')``),
device ids (a list), plus an optional quality column — instead of a list
of per-record objects.  The batch is the unit the columnar phase-one
kernels (:mod:`repro.columnar.kernels`) sweep over; conversion to and from
:class:`~repro.positioning.RawPositioningRecord` objects happens only at
the pipeline boundary.

Round-tripping is exact: ``RecordBatch.from_records(rs).to_records()``
reproduces the input records bit for bit (``array('d')`` stores IEEE-754
doubles verbatim, ``array('q')`` stores the floor integers exactly), in
the original order.  ``tests/test_columnar_equivalence.py`` property-tests
this invariant, including empty windows and single-record devices.

numpy is optional: :meth:`RecordBatch.column` returns zero-copy
``float64``/``int64`` views when numpy is importable and plain
``array`` columns otherwise.  Every *decision* made over the columns is
taken with scalar arithmetic (see :mod:`repro.columnar.locate`), so the
numpy fast path can only accelerate, never change, results.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Sequence

from ..positioning import PositioningSequence, RawPositioningRecord

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-free environments
    _np = None

#: Whether the optional numpy fast path is importable in this process.
NUMPY_AVAILABLE = _np is not None


class RecordBatch:
    """Parallel-array view of a window of positioning records.

    Columns are index-aligned: row ``i`` holds record ``i`` of the input
    order.  The batch itself is layout only — it carries no pipeline
    semantics — and is immutable by convention (kernels never write to a
    batch they did not build).
    """

    __slots__ = ("timestamps", "xs", "ys", "floors", "device_ids", "qualities")

    def __init__(
        self,
        timestamps: array,
        xs: array,
        ys: array,
        floors: array,
        device_ids: list[str],
        qualities: array | None = None,
    ):
        n = len(timestamps)
        if not (len(xs) == len(ys) == len(floors) == len(device_ids) == n) or (
            qualities is not None and len(qualities) != n
        ):
            raise ValueError("record batch columns must be index-aligned")
        self.timestamps = timestamps
        self.xs = xs
        self.ys = ys
        self.floors = floors
        self.device_ids = device_ids
        self.qualities = qualities

    # ------------------------------------------------------------------
    # Boundary conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Sequence[RawPositioningRecord],
        qualities: Iterable[float] | None = None,
    ) -> "RecordBatch":
        """Columnarize records in order; the empty window is a valid batch.

        ``qualities`` optionally attaches one quality weight per record
        (positioning confidence, signal strength — whatever the feed
        reports); the column is carried verbatim and round-tripped
        bit for bit alongside the coordinates.
        """
        timestamps = array("d")
        xs = array("d")
        ys = array("d")
        floors = array("q")
        device_ids: list[str] = []
        for record in records:
            location = record.location
            timestamps.append(record.timestamp)
            xs.append(location.x)
            ys.append(location.y)
            floors.append(location.floor)
            device_ids.append(record.device_id)
        quality_column = None
        if qualities is not None:
            quality_column = array("d", qualities)
        return cls(timestamps, xs, ys, floors, device_ids, quality_column)

    @classmethod
    def from_sequences(
        cls, sequences: Iterable[PositioningSequence]
    ) -> tuple["RecordBatch", list[tuple[int, int]]]:
        """One batch over several sequences, plus per-sequence row spans.

        Returns ``(batch, spans)`` where ``spans[k] = (start, end)`` are
        the half-open row indexes of sequence ``k`` — the chunked pipeline
        primes one batch per chunk and addresses each device by its span.
        """
        records: list[RawPositioningRecord] = []
        spans: list[tuple[int, int]] = []
        for sequence in sequences:
            start = len(records)
            records.extend(sequence.records)
            spans.append((start, len(records)))
        return cls.from_records(records), spans

    def to_records(self) -> list[RawPositioningRecord]:
        """The exact record objects back, in batch order.

        Floats come straight out of the ``array('d')`` columns, so every
        coordinate and timestamp is bit-identical to what went in
        (including signed zeros and subnormals).
        """
        from ..geometry import Point

        return [
            RawPositioningRecord(
                self.timestamps[i],
                self.device_ids[i],
                Point(self.xs[i], self.ys[i], self.floors[i]),
            )
            for i in range(len(self.timestamps))
        ]

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.timestamps)

    def column(self, name: str):
        """A column by name, as a zero-copy numpy view when available.

        Falls back to the backing ``array`` (same buffer, same values)
        without numpy; ``device_ids`` is always the plain list.
        """
        values = getattr(self, name)
        if name == "device_ids" or values is None or _np is None:
            return values
        return _np.frombuffer(
            values, dtype=_np.int64 if name == "floors" else _np.float64
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordBatch):
            return NotImplemented
        return (
            self.timestamps.tobytes() == other.timestamps.tobytes()
            and self.xs.tobytes() == other.xs.tobytes()
            and self.ys.tobytes() == other.ys.tobytes()
            and self.floors.tobytes() == other.floors.tobytes()
            and self.device_ids == other.device_ids
            and (self.qualities is None) == (other.qualities is None)
            and (
                self.qualities is None
                or self.qualities.tobytes() == other.qualities.tobytes()  # type: ignore[union-attr]
            )
        )

    def __repr__(self) -> str:
        return f"RecordBatch({len(self)} records)"
