"""Columnar phase-one kernels: exact drop-ins for the hot inner loops.

Each kernel subclasses (or wraps) its object-model counterpart and
overrides *only* the point-location / distance seam the profile
(``benchmarks/profiles/``) showed dominating phase one:

* :class:`ColumnarSpeedValidator` — ``SpeedValidator`` with memoized
  locates through a :class:`~repro.columnar.locate.LocatorSession` and a
  per-pair feasibility memo.  Every arithmetic expression on the decision
  path (``math.hypot`` planar distances, the nav-graph
  ``entry + through + exit_leg`` sums, the floor-cost subtraction) is the
  original's, evaluated in the original order, so every feasibility
  verdict is bit-for-bit identical.
* :class:`ColumnarCleaner` — ``RawDataCleaner`` behind an all-feasible
  fast path: the common case (every consecutive transition feasible)
  returns the no-op cleaning result without running repair bookkeeping;
  anything else delegates to a real cleaner whose validator and floor
  corrector share the memoized session, so re-checks cost a dict hit.
* :class:`ColumnarSplitter` — ``DensitySplitter`` whose ``_core_flags``
  (the O(n·k) density loop) runs over flat timestamp/x/y/floor lists
  with the identical near-before-gap condition order.
* :class:`ColumnarSpatialMatcher` — ``SpatialMatcher`` whose single
  point-location hook resolves through the session's primary-region memo;
  voting, tie-breaks and coverage run in the inherited code.
* :func:`accumulate_partial` — dwell/edge accumulation into
  :class:`~repro.core.complementing.PartialKnowledge` over flattened
  triplet arrays, applying the same filter/visit/transition rules in the
  same order as ``PartialKnowledge.from_sequences``.

``tests/test_columnar_equivalence.py`` proves the equivalence claim
differentially for every kernel.
"""

from __future__ import annotations

import math
from array import array
from typing import Iterable

from ..core.cleaning import (
    CleaningConfig,
    CleaningReport,
    CleaningResult,
    RawDataCleaner,
)
from ..core.cleaning.floor import FloorCorrector
from ..core.cleaning.speed import SpeedValidator
from ..core.annotation.spatial import SpatialMatcher
from ..core.annotation.splitting import DensitySplitter
from ..core.complementing import PartialKnowledge
from ..core.complementing.knowledge import DEFAULT_TRANSITION_GAP
from ..core.semantics import EVENT_STAY, MobilitySemanticsSequence
from ..dsm import DigitalSpaceModel, Topology
from ..geometry import Point
from ..positioning import PositioningSequence, RawPositioningRecord
from .locate import LocatorSession

_hypot = math.hypot


class ColumnarSpeedValidator(SpeedValidator):
    """Speed validation with memoized point location.

    Overrides ``indoor_distance`` (the only geometry-touching method) to
    resolve partitions through the locator session, and memoizes
    ``transition_feasible`` per record pair — the cleaner legitimately
    re-checks pairs (leading-outlier probe, lookahead anchors), and the
    verdict is a pure function of the two records.
    """

    def __init__(
        self, topology: Topology, max_speed: float, session: LocatorSession
    ):
        super().__init__(topology, max_speed)
        self.session = session
        self._feasible_memo: dict[
            tuple[RawPositioningRecord, RawPositioningRecord], bool
        ] = {}
        self._snap_memo: dict[tuple[float, float, int], str | None] = {}

    def transition_feasible(
        self, previous: RawPositioningRecord, current: RawPositioningRecord
    ) -> bool:
        key = (previous, current)
        memo = self._feasible_memo
        verdict = memo.get(key)
        if verdict is None:
            verdict = super().transition_feasible(previous, current)
            memo[key] = verdict
        return verdict

    def indoor_distance(
        self, previous: RawPositioningRecord, current: RawPositioningRecord
    ) -> float:
        a, b = previous.location, current.location
        if a.floor == b.floor and self._straight_allowed(a, b):
            return a.planar_distance_to(b)
        return self._walking_distance(a, b)

    def _straight_allowed(self, a: Point, b: Point) -> bool:
        # Topology.straight_move_allowed with memoized partition_at calls.
        # The identity comparison carries over because the session returns
        # the model's own entity objects.
        session = self.session
        part_a = session.partition_entity(a.x, a.y, a.floor)
        part_b = session.partition_entity(b.x, b.y, b.floor)
        if part_a is None or part_b is None or part_a is not part_b:
            return False
        # Point.midpoint keeps a's floor; both endpoints share it here.
        mid_x = (a.x + b.x) / 2.0
        mid_y = (a.y + b.y) / 2.0
        return session.entity_contains(part_a, mid_x, mid_y)

    def _walking_distance(self, a: Point, b: Point) -> float:
        # Topology._route(want_path=False) verbatim, with _locate memoized.
        # Left-associative entry + through + exit_leg and the strict <
        # best-tracking are kept as-is: summation order decides bits.
        topology = self.topology
        part_a = self._locate_id(a)
        part_b = self._locate_id(b)
        if part_a is None or part_b is None:
            return math.inf
        if part_a == part_b:
            return a.planar_distance_to(b) + (
                0.0 if a.floor == b.floor else math.inf
            )
        nodes_a = topology._nav_nodes_by_partition.get(part_a, [])
        nodes_b = topology._nav_nodes_by_partition.get(part_b, [])
        if not nodes_a or not nodes_b:
            return math.inf
        anchors = topology._nav_anchor
        best = math.inf
        for node_a in nodes_a:
            lengths = topology._lengths_from(node_a)
            entry = a.planar_distance_to(anchors[node_a])
            for node_b in nodes_b:
                through = lengths.get(node_b)
                if through is None:
                    continue
                exit_leg = anchors[node_b].planar_distance_to(b)
                total = entry + through + exit_leg
                if total < best:
                    best = total
        return best

    def _locate_id(self, point: Point) -> str | None:
        # Topology._locate with the containment lookup memoized; the rare
        # snap fallback goes through the model (and its own memo).
        entity = self.session.partition_entity(point.x, point.y, point.floor)
        if entity is not None:
            return entity.entity_id
        key = (point.x, point.y, point.floor)
        memo = self._snap_memo
        if key in memo:
            return memo[key]
        snapped = self.topology.model.nearest_partition(point, 5.0)
        result = None if snapped is None else snapped[0].entity_id
        memo[key] = result
        return result


class ColumnarCleaner:
    """``RawDataCleaner`` with an all-feasible fast path.

    Simulated and well-behaved real feeds are overwhelmingly clean: one
    memoized sweep over consecutive pairs proves there is nothing to
    repair, and the result is the exact no-op the object cleaner would
    build (empty report, record objects untouched).  Dirty sequences
    delegate to the wrapped cleaner — same detection anchors, same repair
    order — whose feasibility re-checks hit the pair memo.
    """

    def __init__(
        self,
        topology: Topology,
        config: CleaningConfig,
        validator: ColumnarSpeedValidator,
    ):
        self.validator = validator
        self._inner = RawDataCleaner(topology, config)
        self._inner.validator = validator
        self._inner._floor_corrector = FloorCorrector(validator)

    def clean(self, sequence: PositioningSequence) -> CleaningResult:
        records = sequence.records
        n = len(records)
        if n < 2:
            return CleaningResult(
                sequence, sequence, CleaningReport(total_records=n)
            )
        feasible = self.validator.transition_feasible
        if all(feasible(records[i - 1], records[i]) for i in range(1, n)):
            # The object path would append every record unchanged and call
            # with_records on the same objects; replicate that result.
            return CleaningResult(
                sequence,
                sequence.with_records(list(records)),
                CleaningReport(total_records=n),
            )
        return self._inner.clean(sequence)


class ColumnarSplitter(DensitySplitter):
    """``DensitySplitter`` with the core-flag loop on flat columns.

    Only ``_core_flags`` is overridden: it is the quadratic-in-the-dense-
    neighborhood loop, and flattening the records removes per-comparison
    attribute chains and method dispatch.  The near-check-before-gap-check
    condition order and every float expression are the original's.
    """

    def _core_flags(self, records) -> list[bool]:
        cfg = self.config
        n = len(records)
        timestamps: list[float] = []
        xs: list[float] = []
        ys: list[float] = []
        floors: list[int] = []
        for record in records:
            location = record.location
            timestamps.append(record.timestamp)
            xs.append(location.x)
            ys.append(location.y)
            floors.append(location.floor)
        eps_space = cfg.eps_space
        eps_time = cfg.eps_time
        flags = [False] * n
        for i in range(n):
            count = 1  # the record itself
            first = last = timestamps[i]
            xi = xs[i]
            yi = ys[i]
            floor_i = floors[i]
            j = i + 1
            while (
                j < n
                and floors[j] == floor_i
                and _hypot(xi - xs[j], yi - ys[j]) <= eps_space
                and timestamps[j] - timestamps[j - 1] <= eps_time
            ):
                last = timestamps[j]
                count += 1
                j += 1
            j = i - 1
            while (
                j >= 0
                and floors[j] == floor_i
                and _hypot(xi - xs[j], yi - ys[j]) <= eps_space
                and timestamps[j + 1] - timestamps[j] <= eps_time
            ):
                first = timestamps[j]
                count += 1
                j -= 1
            flags[i] = count >= cfg.min_pts and last - first >= cfg.core_span
        return flags


class ColumnarSpatialMatcher(SpatialMatcher):
    """``SpatialMatcher`` voting through the session's region memo."""

    def __init__(
        self,
        model: DigitalSpaceModel,
        session: LocatorSession,
        snap_distance: float = 4.0,
    ):
        super().__init__(model, snap_distance)
        self.session = session

    def _primary_region_at(self, record: RawPositioningRecord):
        location = record.location
        return self.session.primary_region(
            location.x, location.y, location.floor
        )


def accumulate_partial(
    annotated: Iterable[MobilitySemanticsSequence],
    regions: list[str],
    max_transition_gap: float = DEFAULT_TRANSITION_GAP,
) -> PartialKnowledge:
    """Columnar ``PartialKnowledge.from_sequences``.

    Flattens each sequence's in-vocabulary triplets into parallel arrays
    (region ids, start/end seconds, stay flags), then applies the exact
    visit and transition rules of ``_observe_sequence`` over the columns —
    same per-sequence order, same ``ExactSum`` additions, same
    setdefault/get counting — so the shard it returns is equal, dwell
    totals bit for bit, to the object-path shard.
    """
    partial = PartialKnowledge(regions=list(regions))
    region_set = partial._region_set
    stats = partial.stats
    transitions = partial.transitions
    outgoing_totals = partial.outgoing_totals
    for sequence in annotated:
        partial.sequences_seen += 1
        region_ids: list[str] = []
        starts = array("d")
        ends = array("d")
        stays: list[bool] = []
        for triplet in sequence:
            if triplet.region_id in region_set:
                region_ids.append(triplet.region_id)
                time_range = triplet.time_range
                starts.append(time_range.start)
                ends.append(time_range.end)
                stays.append(triplet.event == EVENT_STAY)
        for k in range(len(region_ids)):
            stats[region_ids[k]].add_visit(ends[k] - starts[k], stays[k])
        for k in range(len(region_ids) - 1):
            gap = starts[k + 1] - ends[k]
            if gap > max_transition_gap:
                continue
            origin = region_ids[k]
            destination = region_ids[k + 1]
            if origin == destination:
                continue
            outgoing = transitions.setdefault(origin, {})
            outgoing[destination] = outgoing.get(destination, 0) + 1
            outgoing_totals[origin] = outgoing_totals.get(origin, 0) + 1
    return partial
