"""Batch point location against the DSM, bit-for-bit equal to the model.

Profiling phase one (``benchmarks/profile_phase_one.py``) shows the
pipeline's cost is dominated by point location: every record is located
~3.6 times on average (speed validation locates both endpoints of every
transition and the midpoint of every straight-move check; spatial matching
locates every record again), and each
:meth:`~repro.dsm.DigitalSpaceModel.partition_at` call re-dispatches
through shape objects that rebuild their edge lists per containment test.

:class:`PointLocator` removes that cost without changing a single result:

* geometry is **prepared once** per model into flat coordinate tuples, and
  the containment kernels (:func:`_polygon_contains`,
  :func:`_circle_contains`) replicate ``Polygon.contains_point`` /
  ``Circle.contains_point`` arithmetic *operation for operation* — same
  expressions, same evaluation order, same ``1e-9`` tolerances (the
  segment epsilon is imported from :mod:`repro.geometry.segment`, not
  duplicated) — so every boolean they produce is identical to the shape
  objects';
* candidate sets come from the model's own per-floor
  :class:`~repro.dsm.GridIndex` (scalar path) or from a vectorized
  bounding-box mask over the same insertion-ordered entity lists (numpy
  prime path).  Both produce the same candidates in the same order — any
  bounding box containing a point also covers that point's grid cell, and
  grid buckets preserve insertion order — which pins the model's
  first-minimal-area tie-break exactly;
* results are **memoized per session** keyed on the raw coordinates, so
  the ~3.6 locates per record collapse to one.  (``0.0`` and ``-0.0``
  share a key; every downstream decision — comparisons, subtractions,
  ``math.hypot`` — is sign-of-zero-insensitive, so the collapse cannot
  change results.)

The locator returns the *model's own* entity and region objects, never
copies: ``Topology.straight_move_allowed`` compares partitions by
identity (``part_a is not part_b``), so object identity is part of the
equivalence contract.
"""

from __future__ import annotations

import math
import os

from ..dsm import DigitalSpaceModel
from ..dsm.entities import IndoorEntity
from ..dsm.regions import SemanticRegion
from ..geometry import Circle, Point, Polygon, shape_area, shape_contains
from ..geometry.segment import _EPS as _SEGMENT_EPS
from .batch import NUMPY_AVAILABLE, RecordBatch

if NUMPY_AVAILABLE:  # pragma: no branch - module-level import guard
    import numpy as _np
else:  # pragma: no cover - numpy-free environments
    _np = None

#: Boundary tolerance of ``Polygon.contains_point`` / ``Circle.contains_point``.
_BOUNDARY_EPS = 1e-9
_SEGMENT_EPS_SQ = _SEGMENT_EPS * _SEGMENT_EPS

#: Set ``TRIPS_COLUMNAR_NUMPY=0`` to force the pure-python prime path.
_NUMPY_ENABLED = NUMPY_AVAILABLE and os.environ.get(
    "TRIPS_COLUMNAR_NUMPY", "1"
) != "0"

#: Counts numpy-vectorized prime sweeps, for the CI silent-skip guard.
NUMPY_PRIME_COUNT = 0

_hypot = math.hypot


def _polygon_contains(
    vxs: tuple[float, ...],
    vys: tuple[float, ...],
    min_x: float,
    min_y: float,
    max_x: float,
    max_y: float,
    px: float,
    py: float,
) -> bool:
    """``Polygon.contains_point`` on flat vertex arrays (same-floor caller).

    Replicates the original exactly: closed-bbox reject, boundary
    proximity against every edge (``Segment.closest_point_to`` arithmetic,
    boundary included), then the same ray cast.
    """
    if not (min_x <= px <= max_x and min_y <= py <= max_y):
        return False
    n = len(vxs)
    for i in range(n):
        ax = vxs[i]
        ay = vys[i]
        j = i + 1
        if j == n:
            j = 0
        dx = vxs[j] - ax
        dy = vys[j] - ay
        norm_sq = dx * dx + dy * dy
        if norm_sq <= _SEGMENT_EPS_SQ:
            cx = ax
            cy = ay
        else:
            t = ((px - ax) * dx + (py - ay) * dy) / norm_sq
            t = max(0.0, min(1.0, t))
            cx = ax + t * dx
            cy = ay + t * dy
        if _hypot(px - cx, py - cy) <= _BOUNDARY_EPS:
            return True  # on the boundary; containment includes it
    inside = False
    j = n - 1
    for i in range(n):
        viy = vys[i]
        vjy = vys[j]
        if (viy > py) != (vjy > py):
            x_cross = vxs[j] + (py - vjy) * (vxs[i] - vxs[j]) / (viy - vjy)
            if px < x_cross:
                inside = not inside
        j = i
    return inside


def _circle_contains(
    cx: float, cy: float, radius_plus_eps: float, px: float, py: float
) -> bool:
    """``Circle.contains_point`` (boundary included, same-floor caller)."""
    return _hypot(cx - px, cy - py) <= radius_plus_eps


class _ShapeEntry:
    """One prepared shape: flat geometry plus the owning model object."""

    __slots__ = (
        "key",
        "owner",
        "floor",
        "area",
        "min_x",
        "min_y",
        "max_x",
        "max_y",
        "vxs",
        "vys",
        "circle",
    )

    def __init__(self, key: str, owner, shape) -> None:
        self.key = key
        self.owner = owner
        if isinstance(shape, Polygon):
            self.floor = shape.floor
            bbox = shape.bounds
            self.vxs: tuple[float, ...] | None = tuple(v.x for v in shape.vertices)
            self.vys: tuple[float, ...] | None = tuple(v.y for v in shape.vertices)
            self.circle = None
        elif isinstance(shape, Circle):
            self.floor = shape.floor
            bbox = shape.bounds
            self.vxs = self.vys = None
            self.circle = (
                shape.center.x,
                shape.center.y,
                shape.radius + _BOUNDARY_EPS,
            )
        else:  # pragma: no cover - partitions/regions are area shapes
            raise TypeError(f"unsupported area shape {type(shape).__name__}")
        self.area = shape_area(shape)
        self.min_x = bbox.min_x
        self.min_y = bbox.min_y
        self.max_x = bbox.max_x
        self.max_y = bbox.max_y

    def contains(self, px: float, py: float) -> bool:
        """Exact same-floor containment (callers check the floor)."""
        if self.vxs is not None:
            return _polygon_contains(
                self.vxs,
                self.vys,
                self.min_x,
                self.min_y,
                self.max_x,
                self.max_y,
                px,
                py,
            )
        cx, cy, radius_plus_eps = self.circle
        return _circle_contains(cx, cy, radius_plus_eps, px, py)


class _FloorTable:
    """Insertion-ordered shape entries of one floor, with bbox columns."""

    __slots__ = ("entries", "min_x", "min_y", "max_x", "max_y")

    def __init__(self, entries: list[_ShapeEntry]) -> None:
        self.entries = entries
        if _NUMPY_ENABLED:
            self.min_x = _np.array([e.min_x for e in entries])
            self.min_y = _np.array([e.min_y for e in entries])
            self.max_x = _np.array([e.max_x for e in entries])
            self.max_y = _np.array([e.max_y for e in entries])
        else:
            self.min_x = self.min_y = self.max_x = self.max_y = None


class PointLocator:
    """Prepared point-location over one model's partitions and regions."""

    def __init__(self, model: DigitalSpaceModel):
        self.model = model
        self._prepare()

    def _prepare(self) -> None:
        model = self.model
        model._refresh_indexes()
        # Token for staleness detection: the model reassigns its index
        # dicts on every refresh, so object identity tracks mutations.
        self._index_token = model._partition_index

        partition_entries: dict[int, list[_ShapeEntry]] = {}
        self._entity_entries: dict[str, _ShapeEntry] = {}
        for entity in model._entities.values():  # insertion order, as indexed
            if not entity.is_partition:
                continue
            entry = _ShapeEntry(entity.entity_id, entity, entity.shape)
            partition_entries.setdefault(entity.floor, []).append(entry)
            self._entity_entries[entity.entity_id] = entry
        self._partitions = {
            floor: _FloorTable(entries)
            for floor, entries in partition_entries.items()
        }

        region_entries: dict[int, list[_ShapeEntry]] = {}
        self._region_entries: dict[str, _ShapeEntry] = {}
        self._mapped_regions: dict[str, list[str]] = {}
        self._regions: dict[str, SemanticRegion] = {}
        self._member_area: dict[str, float] = {}
        for region in model._regions.values():  # insertion order, as indexed
            self._regions[region.region_id] = region
            if region.shape is not None:
                entry = _ShapeEntry(region.region_id, region, region.shape)
                region_entries.setdefault(region.shape.floor, []).append(entry)
                self._region_entries[region.region_id] = entry
            # Same expression (and member order) as primary_region_at's
            # specificity fallback, so the precomputed sum is bit-identical.
            self._member_area[region.region_id] = sum(
                shape_area(model._entities[e].shape) for e in region.entity_ids
            )
            for entity_id in region.entity_ids:
                self._mapped_regions.setdefault(entity_id, []).append(
                    region.region_id
                )
        self._region_tables = {
            floor: _FloorTable(entries)
            for floor, entries in region_entries.items()
        }

    def _fresh(self) -> bool:
        model = self.model
        return model._indexes_fresh and (
            model._partition_index is self._index_token
        )

    def session(self) -> "LocatorSession":
        """A memoizing lookup session (one per phase-one chunk)."""
        if not self._fresh():
            self._prepare()
        return LocatorSession(self)

    def entity_entry(self, entity_id: str) -> _ShapeEntry:
        """The prepared shape entry of a partition entity."""
        return self._entity_entries[entity_id]


class LocatorSession:
    """Memoized partition / primary-region lookups over one chunk.

    The memo keys are the raw ``(x, y, floor)`` coordinates, so repeated
    locates of the same fix — by the cleaner, the splitter and the
    matcher — cost one dict hit after the first computation (or after
    :meth:`prime` swept the whole batch).
    """

    __slots__ = ("locator", "model", "_partitions", "_regions")

    def __init__(self, locator: PointLocator) -> None:
        self.locator = locator
        self.model = locator.model
        self._partitions: dict[tuple, IndoorEntity | None] = {}
        self._regions: dict[tuple, SemanticRegion | None] = {}

    # ------------------------------------------------------------------
    # Bulk prime
    # ------------------------------------------------------------------
    def prime(self, batch: RecordBatch) -> None:
        """Locate every batch row up front, filling both memos.

        With numpy, candidate sets per floor come from one vectorized
        bounding-box mask (pure closed-interval comparisons — the same
        predicate the grid index applies, so candidates and their
        insertion order are identical); the exact containment kernels
        then run per candidate.  Without numpy, rows fall through to the
        scalar per-point path.
        """
        n = len(batch)
        if n == 0:
            return
        if not _NUMPY_ENABLED:
            for i in range(n):
                self.partition_entity(batch.xs[i], batch.ys[i], batch.floors[i])
                self.primary_region(batch.xs[i], batch.ys[i], batch.floors[i])
            return
        global NUMPY_PRIME_COUNT
        NUMPY_PRIME_COUNT += 1
        xs = batch.column("xs")
        ys = batch.column("ys")
        floors = batch.column("floors")
        for floor in _np.unique(floors):
            floor = int(floor)
            rows = _np.nonzero(floors == floor)[0]
            fxs = xs[rows]
            fys = ys[rows]
            partition_hits = self._bbox_hits(
                self.locator._partitions.get(floor), fxs, fys
            )
            region_hits = self._bbox_hits(
                self.locator._region_tables.get(floor), fxs, fys
            )
            for k in range(len(rows)):
                x = float(fxs[k])
                y = float(fys[k])
                key = (x, y, floor)
                if key not in self._partitions:
                    self._partitions[key] = self._locate_partition(
                        x, y, floor, partition_hits[k] if partition_hits else ()
                    )
                if key not in self._regions:
                    self._regions[key] = self._locate_region(
                        x, y, floor, region_hits[k] if region_hits else ()
                    )

    @staticmethod
    def _bbox_hits(table: _FloorTable | None, fxs, fys) -> list | None:
        """Per-row candidate entries from the vectorized bbox mask."""
        if table is None or not table.entries:
            return None
        mask = (
            (table.min_x[None, :] <= fxs[:, None])
            & (fxs[:, None] <= table.max_x[None, :])
            & (table.min_y[None, :] <= fys[:, None])
            & (fys[:, None] <= table.max_y[None, :])
        )
        entries = table.entries
        return [
            [entries[j] for j in _np.nonzero(mask[k])[0]]
            for k in range(mask.shape[0])
        ]

    # ------------------------------------------------------------------
    # Scalar lookups
    # ------------------------------------------------------------------
    def partition_entity(
        self, x: float, y: float, floor: int
    ) -> IndoorEntity | None:
        """Memoized ``model.partition_at`` (same entity object or None)."""
        key = (x, y, floor)
        memo = self._partitions
        if key in memo:
            return memo[key]
        result = self._locate_partition(x, y, floor, self._candidates(x, y, floor))
        memo[key] = result
        return result

    def primary_region(
        self, x: float, y: float, floor: int
    ) -> SemanticRegion | None:
        """Memoized ``model.primary_region_at`` (same region object or None)."""
        key = (x, y, floor)
        memo = self._regions
        if key in memo:
            return memo[key]
        result = self._locate_region(
            x, y, floor, self._region_candidates(x, y, floor)
        )
        memo[key] = result
        return result

    def entity_contains(self, entity: IndoorEntity, x: float, y: float) -> bool:
        """Exact ``shape_contains(entity.shape, point)`` for a same-floor point."""
        return self.locator._entity_entries[entity.entity_id].contains(x, y)

    # ------------------------------------------------------------------
    # Candidate retrieval (scalar path: the model's own grid index)
    # ------------------------------------------------------------------
    def _candidates(self, x: float, y: float, floor: int) -> list[_ShapeEntry]:
        index = self.model._partition_index.get(floor)
        if index is None:
            return ()
        entries = self.locator._entity_entries
        return [entries[key] for key in index.candidates_at(Point(x, y, floor))]

    def _region_candidates(
        self, x: float, y: float, floor: int
    ) -> list[_ShapeEntry]:
        index = self.model._region_index.get(floor)
        if index is None:
            return ()
        entries = self.locator._region_entries
        return [entries[key] for key in index.candidates_at(Point(x, y, floor))]

    # ------------------------------------------------------------------
    # Exact location (replicates DigitalSpaceModel's tie-breaks verbatim)
    # ------------------------------------------------------------------
    @staticmethod
    def _locate_partition(
        x: float, y: float, floor: int, candidates
    ) -> IndoorEntity | None:
        # Same scan as partition_at: strict < keeps the first minimal-area
        # containing partition in candidate (= insertion) order.
        best: IndoorEntity | None = None
        best_area = math.inf
        for entry in candidates:
            if entry.contains(x, y):
                if entry.area < best_area:
                    best = entry.owner
                    best_area = entry.area
        return best

    def _locate_region(
        self, x: float, y: float, floor: int, shape_candidates
    ) -> SemanticRegion | None:
        # regions_at: explicit-shape hits plus the located partition's
        # mapped regions, emitted in sorted region-id order ...
        locator = self.locator
        found: dict[str, bool] = {}
        for entry in shape_candidates:
            if entry.contains(x, y):
                found[entry.key] = True  # shape contains the point
        partition = self.partition_entity(x, y, floor)
        if partition is not None:
            for region_id in locator._mapped_regions.get(
                partition.entity_id, ()
            ):
                found.setdefault(region_id, False)
        if not found:
            return None
        # ... then primary_region_at: min() over that order by the same
        # (shape-contains, area) specificity key, first minimum winning.
        regions = locator._regions
        best: SemanticRegion | None = None
        best_rank: tuple[int, float] | None = None
        for region_id in sorted(found):
            entry = locator._region_entries.get(region_id)
            if entry is not None and (
                found[region_id]
                or (entry.floor == floor and entry.contains(x, y))
            ):
                rank = (0, entry.area)
            else:
                rank = (1, locator._member_area[region_id])
            if best_rank is None or rank < best_rank:
                best = regions[region_id]
                best_rank = rank
        return best


def reference_partition_at(model: DigitalSpaceModel, point: Point):
    """The object-model answer, for differential tests."""
    return model.partition_at(point)


def reference_region_at(model: DigitalSpaceModel, point: Point):
    """The object-model primary region, for differential tests."""
    return model.primary_region_at(point)


def kernel_shape_contains(entry: _ShapeEntry, point: Point) -> bool:
    """Exposed for tests: the kernel's verdict on one prepared shape."""
    if point.floor != entry.floor:
        return False
    return entry.contains(point.x, point.y)


def reference_shape_contains(shape, point: Point) -> bool:
    """Exposed for tests: the object model's verdict on the same shape."""
    return shape_contains(shape, point)
