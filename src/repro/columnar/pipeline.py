"""Columnar phase one: the chunk pipeline assembling the kernels.

:func:`run_phase_one_chunk_columnar` is the drop-in counterpart of
:func:`repro.core.translator.run_phase_one_chunk`: same signature, same
:class:`~repro.core.translator.PhaseOneChunk` result, proven bit-for-bit
equal by ``tests/test_columnar_equivalence.py``.  The engine dispatches
between the two on ``EngineConfig.record_layout``.

Per chunk it columnarizes the sequences into one
:class:`~repro.columnar.batch.RecordBatch`, bulk-primes a
:class:`~repro.columnar.locate.LocatorSession` over the batch (the numpy
fast path when available), and runs the cleaning/annotation kernels of
:mod:`repro.columnar.kernels` against the shared session.

:data:`CHUNKS_RUN` counts executed columnar chunks and :func:`selftest`
asserts end-to-end equality on an inline micro-venue — CI's guard that the
``layout=columnar`` matrix leg cannot silently fall back to the object
path (for example through an import guard swallowing numpy).
"""

from __future__ import annotations

from collections import OrderedDict

from ..core.annotation import MobilitySemanticsAnnotator
from ..core.cleaning import CleaningReport, CleaningResult
from ..core.translator import PhaseOneChunk, Translator
from ..dsm import DigitalSpaceModel
from ..positioning import PositioningSequence
from . import locate as _locate
from .batch import RecordBatch
from .kernels import (
    ColumnarCleaner,
    ColumnarSpatialMatcher,
    ColumnarSpeedValidator,
    ColumnarSplitter,
    accumulate_partial,
)
from .locate import PointLocator

#: Columnar chunks executed in this process; the CI selftest checks it
#: advances, so the columnar leg cannot silently run the object path.
CHUNKS_RUN = 0

#: One prepared locator per model; sessions (and their memos) are per
#: chunk, the flat geometry tables are shared and staleness-checked.
#: Keyed by ``id(model)`` (models are unhashable) and LRU-bounded so a
#: long-lived process caps how many venues' geometry it pins; the cached
#: locator holds its model alive, so an id cannot be reused while its
#: entry exists — the identity guard below is pure belt and braces.
_locators: "OrderedDict[int, PointLocator]" = OrderedDict()
_MAX_LOCATORS = 8


def _locator_for(model: DigitalSpaceModel) -> PointLocator:
    key = id(model)
    locator = _locators.get(key)
    if locator is not None and locator.model is model:
        _locators.move_to_end(key)
        return locator
    locator = PointLocator(model)
    _locators[key] = locator
    while len(_locators) > _MAX_LOCATORS:
        _locators.popitem(last=False)
    return locator


def run_phase_one_chunk_columnar(
    translator: Translator,
    sequences: list[PositioningSequence],
    emit_partial: bool = False,
) -> PhaseOneChunk:
    """Phase one for a chunk of sequences on the columnar fast path.

    Exactly equivalent to ``run_phase_one_chunk``: identical
    cleaning/annotation results pair for pair, identical knowledge shard.
    """
    global CHUNKS_RUN
    CHUNKS_RUN += 1
    batch, _spans = RecordBatch.from_sequences(sequences)
    session = _locator_for(translator.model).session()
    session.prime(batch)

    config = translator.config
    topology = translator.model.topology
    validator = ColumnarSpeedValidator(
        topology, config.cleaning.max_speed, session
    )
    cleaner = ColumnarCleaner(topology, config.cleaning, validator)
    annotator = MobilitySemanticsAnnotator(
        translator.model, translator.annotator.event_model, config.annotation
    )
    annotator.splitter = ColumnarSplitter(config.annotation.splitter)
    annotator.matcher = ColumnarSpatialMatcher(translator.model, session)

    pairs = []
    for sequence in sequences:
        if config.enable_cleaning:
            cleaning = cleaner.clean(sequence)
        else:
            cleaning = CleaningResult(
                sequence, sequence, CleaningReport(total_records=len(sequence))
            )
        annotation = annotator.annotate(cleaning.cleaned)
        pairs.append((cleaning, annotation))

    partial = None
    if emit_partial:
        regions = translator.knowledge_regions()
        if regions is not None:
            partial = accumulate_partial(
                [annotation.sequence for _, annotation in pairs], regions
            )
    return PhaseOneChunk(pairs, partial)


def _micro_venue() -> DigitalSpaceModel:
    """A tiny inline hall+shop venue for the selftest (no test imports)."""
    from ..dsm import EntityKind, IndoorEntity, SemanticRegion, SemanticTag
    from ..geometry import Point, Polygon

    model = DigitalSpaceModel(name="columnar-selftest")
    model.add_entity(
        IndoorEntity("hall", EntityKind.HALLWAY, Polygon.rectangle(0, 0, 20, 10))
    )
    model.add_entity(
        IndoorEntity("shop", EntityKind.ROOM, Polygon.rectangle(0, 10, 10, 20))
    )
    model.add_entity(IndoorEntity("door-shop", EntityKind.DOOR, Point(5, 9.7)))
    model.add_entity(
        IndoorEntity(
            "door-main", EntityKind.DOOR, Point(0, 5),
            properties={"entrance": True},
        )
    )
    tag = SemanticTag("shop", "shop")
    model.add_region(SemanticRegion("r-shop", "Shop", tag, entity_ids=("shop",)))
    model.add_region(
        SemanticRegion(
            "r-hall", "Hall", SemanticTag("hall", "hallway"),
            entity_ids=("hall",),
        )
    )
    return model


def _micro_feed() -> list[PositioningSequence]:
    """Deterministic sequences: a dwell, a walk, and a dirty jump."""
    from ..geometry import Point
    from ..positioning import RawPositioningRecord

    def sequence(device_id, points, interval=5.0):
        return PositioningSequence(
            device_id,
            [
                RawPositioningRecord(i * interval, device_id, Point(x, y, 1))
                for i, (x, y) in enumerate(points)
            ],
        )

    dwell = sequence(
        "dev-dwell",
        [(5.0 + 0.1 * (i % 3), 15.0 - 0.1 * (i % 2)) for i in range(24)],
    )
    walk = sequence(
        "dev-walk",
        [(1.0 + i, 5.0) for i in range(10)]
        + [(5.0, 9.0), (5.0, 12.0)]
        + [(5.0 + 0.1 * (i % 3), 15.0) for i in range(12)],
    )
    dirty = sequence(
        "dev-dirty",
        [(1.0 + i, 5.0) for i in range(5)]
        + [(19.0, 19.0)]  # infeasible teleport into the shop corner
        + [(7.0 + i, 5.0) for i in range(5)],
    )
    return [dwell, walk, dirty]


def selftest() -> dict:
    """Prove the columnar path runs and matches the object path.

    Runs both layouts over an inline micro-venue and asserts:

    1. cleaning and annotation results are equal pair for pair, and the
       emitted knowledge shards are equal (dwell totals bit for bit);
    2. :data:`CHUNKS_RUN` advanced — the columnar code actually executed;
    3. when numpy is importable and not disabled via
       ``TRIPS_COLUMNAR_NUMPY=0``, the vectorized prime path ran — an
       import guard cannot silently swallow the fast path.

    Returns a summary dict (CI prints it); raises ``AssertionError`` on
    any violation.
    """
    from ..core.translator import run_phase_one_chunk

    model = _micro_venue()
    translator = Translator(model)
    feed = _micro_feed()

    chunks_before = CHUNKS_RUN
    numpy_before = _locate.NUMPY_PRIME_COUNT
    objects = run_phase_one_chunk(translator, feed, emit_partial=True)
    columnar = run_phase_one_chunk_columnar(translator, feed, emit_partial=True)

    assert CHUNKS_RUN == chunks_before + 1, "columnar chunk did not execute"
    assert len(objects.pairs) == len(columnar.pairs)
    for index, (obj_pair, col_pair) in enumerate(
        zip(objects.pairs, columnar.pairs)
    ):
        assert obj_pair[0] == col_pair[0], f"cleaning differs at {index}"
        assert obj_pair[1] == col_pair[1], f"annotation differs at {index}"
    assert objects.partial == columnar.partial, "knowledge shards differ"

    numpy_ran = _locate.NUMPY_PRIME_COUNT > numpy_before
    if _locate._NUMPY_ENABLED:
        assert numpy_ran, (
            "numpy is available and enabled but the vectorized prime path "
            "did not run — the columnar fast path was silently skipped"
        )
    repaired = sum(
        len(cleaning.report.interpolated) + len(cleaning.report.floor_corrected)
        for cleaning, _ in columnar.pairs
    )
    assert repaired > 0, "selftest feed no longer exercises the repair path"
    return {
        "sequences": len(feed),
        "pairs_equal": True,
        "partial_equal": True,
        "numpy_prime_ran": numpy_ran,
        "chunks_run": CHUNKS_RUN,
    }
