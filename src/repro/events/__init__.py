"""Event Editor (substrate S7).

Mobility event pattern registry (built-in ``stay``/``pass-by`` plus
user-defined patterns), segment designation, and labeled training-set
assembly for the annotation layer's event model.
"""

from .dataset import FeatureExtractor, LabeledSegment, TrainingSet
from .editor import Designation, EventEditor
from .patterns import PASS_BY, STAY, EventPattern, PatternRegistry

__all__ = [
    "PASS_BY",
    "STAY",
    "Designation",
    "EventEditor",
    "EventPattern",
    "FeatureExtractor",
    "LabeledSegment",
    "PatternRegistry",
    "TrainingSet",
]
