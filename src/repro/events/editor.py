"""The Event Editor: designating training segments for event patterns.

Workflow step (3) of the paper: the analyst "defines the mobility event
patterns and collects the training data" by browsing randomly selected raw
positioning sequences on the map view and designating segments that exhibit
each pattern (Figure 5(3)).  Here the map view becomes index/time-range
designation calls; the output is a :class:`TrainingSet`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnnotationError
from ..positioning import PositioningSequence
from ..timeutil import TimeRange
from .dataset import LabeledSegment, TrainingSet
from .patterns import EventPattern, PatternRegistry


@dataclass(frozen=True)
class Designation:
    """One analyst action: 'records [start, end) of this device show pattern X'."""

    device_id: str
    pattern: str
    start_index: int
    end_index: int  # exclusive

    @property
    def record_count(self) -> int:
        """Number of records designated."""
        return self.end_index - self.start_index


class EventEditor:
    """Collects event patterns and training designations."""

    def __init__(self, registry: PatternRegistry | None = None):
        self.registry = registry if registry is not None else PatternRegistry()
        self._designations: list[Designation] = []
        self._segments: list[LabeledSegment] = []

    # ------------------------------------------------------------------
    # Pattern definition
    # ------------------------------------------------------------------
    def define_pattern(self, name: str, description: str = "") -> EventPattern:
        """Register a user-defined mobility event pattern."""
        return self.registry.register(name, description)

    # ------------------------------------------------------------------
    # Designation
    # ------------------------------------------------------------------
    def designate(
        self,
        sequence: PositioningSequence,
        pattern: str,
        start_index: int,
        end_index: int,
    ) -> Designation:
        """Label records ``[start_index, end_index)`` with ``pattern``."""
        if pattern not in self.registry:
            raise AnnotationError(
                f"pattern {pattern!r} is not defined; call define_pattern first"
            )
        if not 0 <= start_index < end_index <= len(sequence):
            raise AnnotationError(
                f"designation [{start_index}, {end_index}) out of range for a "
                f"sequence of {len(sequence)} records"
            )
        if end_index - start_index < 2:
            raise AnnotationError("designation needs at least 2 records")
        designation = Designation(
            sequence.device_id, pattern, start_index, end_index
        )
        self._designations.append(designation)
        self._segments.append(
            LabeledSegment(
                device_id=sequence.device_id,
                label=pattern,
                records=tuple(sequence.records[start_index:end_index]),
            )
        )
        return designation

    def designate_time(
        self, sequence: PositioningSequence, pattern: str, window: TimeRange
    ) -> Designation:
        """Label all records whose timestamps fall in ``window``."""
        indexes = [
            i for i, r in enumerate(sequence) if window.contains(r.timestamp)
        ]
        if len(indexes) < 2:
            raise AnnotationError(
                f"time window {window.format()} covers {len(indexes)} record(s); "
                "need at least 2"
            )
        return self.designate(sequence, pattern, indexes[0], indexes[-1] + 1)

    def designate_from_annotations(
        self,
        sequence: PositioningSequence,
        annotations: list[tuple[str, TimeRange]],
    ) -> list[Designation]:
        """Bulk-designate from ``(pattern, window)`` pairs.

        The experiment harness uses this to replay simulator ground truth as
        if an analyst had designated it; windows that cover fewer than two
        records are skipped, exactly as an analyst would skip an unusable
        segment.
        """
        made: list[Designation] = []
        for pattern, window in annotations:
            try:
                made.append(self.designate_time(sequence, pattern, window))
            except AnnotationError:
                continue
        return made

    # ------------------------------------------------------------------
    # Browsing support
    # ------------------------------------------------------------------
    @staticmethod
    def browse_sample(
        sequences: list[PositioningSequence], count: int, seed: int = 0
    ) -> list[PositioningSequence]:
        """A random sample of sequences to browse for designation.

        Mirrors the walkthrough: "she browses a set of randomly selected
        raw positioning sequences on the map view".
        """
        if count < 0:
            raise AnnotationError(f"browse count must be >= 0, got {count}")
        if count >= len(sequences):
            return list(sequences)
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(sequences), size=count, replace=False)
        return [sequences[int(i)] for i in sorted(chosen)]

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    @property
    def designations(self) -> list[Designation]:
        """All designations in the order they were made."""
        return list(self._designations)

    def training_set(self) -> TrainingSet:
        """The designated segments as a model-ready training set."""
        return TrainingSet(self._segments)

    def clear(self) -> None:
        """Discard all designations (patterns stay defined)."""
        self._designations.clear()
        self._segments.clear()

    def __len__(self) -> int:
        return len(self._designations)
