"""Mobility event patterns.

"A mobility event refers to a generic movement pattern of some particular
interest" (paper §1).  ``stay`` and ``pass-by`` are built in — they are the
events of Table 1 — and analysts register their own patterns (``browse``,
``queue``, …) through the Event Editor, which is exactly what distinguishes
TRIPS from the stop/move-only GPS platforms it is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnnotationError

#: Built-in pattern names.
STAY = "stay"
PASS_BY = "pass-by"


@dataclass(frozen=True)
class EventPattern:
    """A named movement pattern the event model learns to identify."""

    name: str
    description: str = ""
    builtin: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise AnnotationError("event pattern requires a non-empty name")


class PatternRegistry:
    """The set of event patterns known to one TRIPS deployment.

    Always contains the built-ins; user patterns are added via
    :meth:`register`.  The Translator refuses to annotate with events that
    are not registered, which catches label typos in designations early.
    """

    def __init__(self):
        self._patterns: dict[str, EventPattern] = {}
        self.register_builtin(
            EventPattern(STAY, "remains within one semantic region", builtin=True)
        )
        self.register_builtin(
            EventPattern(
                PASS_BY, "passes through a semantic region without staying",
                builtin=True,
            )
        )

    def register_builtin(self, pattern: EventPattern) -> EventPattern:
        self._patterns[pattern.name] = pattern
        return pattern

    def register(self, name: str, description: str = "") -> EventPattern:
        """Define a new analyst pattern; duplicates are rejected."""
        if name in self._patterns:
            raise AnnotationError(f"event pattern {name!r} already registered")
        pattern = EventPattern(name, description)
        self._patterns[name] = pattern
        return pattern

    def get(self, name: str) -> EventPattern:
        """Look up a pattern by name."""
        try:
            return self._patterns[name]
        except KeyError:
            raise AnnotationError(f"unknown event pattern: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._patterns

    @property
    def names(self) -> list[str]:
        """Registered pattern names, built-ins first then alphabetical."""
        builtins = sorted(p.name for p in self._patterns.values() if p.builtin)
        custom = sorted(p.name for p in self._patterns.values() if not p.builtin)
        return builtins + custom

    def __len__(self) -> int:
        return len(self._patterns)
