"""Labeled training segments produced by the Event Editor.

"The designated data segments will be used to train a learning-based model
for identifying the user-defined event patterns from other positioning
sequences" (paper §2).  A :class:`TrainingSet` is the bridge between the
Editor (which owns designations) and the annotation layer (which owns the
feature extractor): it stores raw record segments and converts them to a
feature matrix on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import AnnotationError
from ..positioning import RawPositioningRecord

#: A feature extractor: record segment -> 1-D feature vector.
FeatureExtractor = Callable[[list[RawPositioningRecord]], np.ndarray]


@dataclass(frozen=True)
class LabeledSegment:
    """One designated positioning-sequence segment with its event label."""

    device_id: str
    label: str
    records: tuple[RawPositioningRecord, ...]

    def __post_init__(self) -> None:
        if len(self.records) < 2:
            raise AnnotationError(
                f"designated segment needs >= 2 records, got {len(self.records)}"
            )

    @property
    def duration(self) -> float:
        """Elapsed seconds of the segment."""
        return self.records[-1].timestamp - self.records[0].timestamp


class TrainingSet:
    """A collection of labeled segments ready for model training."""

    def __init__(self, segments: list[LabeledSegment] | None = None):
        self._segments: list[LabeledSegment] = list(segments or [])

    def add(self, segment: LabeledSegment) -> None:
        """Append one designated segment."""
        self._segments.append(segment)

    def extend(self, segments: list[LabeledSegment]) -> None:
        """Append many designated segments."""
        self._segments.extend(segments)

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def segments(self) -> list[LabeledSegment]:
        """All segments in designation order."""
        return list(self._segments)

    @property
    def labels(self) -> list[str]:
        """Label of each segment, aligned with :attr:`segments`."""
        return [s.label for s in self._segments]

    def label_counts(self) -> dict[str, int]:
        """Segments per label, for balance checks."""
        counts: dict[str, int] = {}
        for segment in self._segments:
            counts[segment.label] = counts.get(segment.label, 0) + 1
        return counts

    def to_features(
        self, extractor: FeatureExtractor
    ) -> tuple[np.ndarray, list[str]]:
        """Extract the feature matrix and aligned labels.

        Raises when empty — a model cannot be trained from zero
        designations, and the error message says so in Editor terms.
        """
        if not self._segments:
            raise AnnotationError(
                "training set is empty; designate segments in the Event Editor first"
            )
        rows = [extractor(list(s.records)) for s in self._segments]
        widths = {r.shape[0] for r in rows}
        if len(widths) != 1:
            raise AnnotationError(
                f"feature extractor produced mixed widths: {sorted(widths)}"
            )
        return np.vstack(rows), self.labels

    def subset(self, size: int, seed: int = 0) -> "TrainingSet":
        """A random, label-stratified subset of ``size`` segments.

        Used by the training-size sweep (E-F3b).  Guarantees at least one
        segment per label when ``size`` allows.
        """
        if size >= len(self._segments):
            return TrainingSet(self._segments)
        if size < 1:
            raise AnnotationError(f"subset size must be >= 1, got {size}")
        rng = np.random.default_rng(seed)
        by_label: dict[str, list[LabeledSegment]] = {}
        for segment in self._segments:
            by_label.setdefault(segment.label, []).append(segment)
        chosen: list[LabeledSegment] = []
        # One from each label first (as far as the budget allows).
        for label in sorted(by_label):
            if len(chosen) >= size:
                break
            members = by_label[label]
            chosen.append(members[int(rng.integers(0, len(members)))])
        remaining = [s for s in self._segments if s not in chosen]
        rng.shuffle(remaining)
        chosen.extend(remaining[: size - len(chosen)])
        return TrainingSet(chosen[:size])
