"""Structural validation of a Digital Space Model.

The Space Modeler runs this before saving, and loaders may run it after
import, so a translation task never starts on a space model with dangling
doors, unreachable partitions or degenerate shapes.  Problems are collected
exhaustively rather than failing fast, matching how a drawing tool reports
all issues at once.
"""

from __future__ import annotations

import networkx as nx

from ..errors import DSMValidationError
from ..geometry import Polygon, shape_area
from .model import DigitalSpaceModel


def validate_dsm(
    model: DigitalSpaceModel,
    require_regions: bool = False,
    require_connected: bool = True,
) -> list[str]:
    """Collect structural problems; returns warnings, raises on errors.

    Hard errors (raise :class:`DSMValidationError`): degenerate partition
    shapes, dangling doors, stacks with a single floor, regions referencing
    non-partition entities.

    Soft warnings (returned): disconnected walkable space when
    ``require_connected`` is False, missing regions when ``require_regions``
    is False, partitions without any door.
    """
    errors: list[str] = []
    warnings: list[str] = []

    _check_partitions(model, errors, warnings)
    _check_doors(model, errors, warnings)
    _check_stacks(model, errors)
    _check_regions(model, errors, warnings, require_regions)
    _check_connectivity(model, errors, warnings, require_connected)

    if errors:
        raise DSMValidationError(errors)
    return warnings


def _check_partitions(
    model: DigitalSpaceModel, errors: list[str], warnings: list[str]
) -> None:
    for partition in model.partitions():
        area = shape_area(partition.shape)
        if area < 0.5:
            errors.append(
                f"partition {partition.entity_id!r} has near-zero area ({area:.3f} m²)"
            )
        if isinstance(partition.shape, Polygon) and not partition.shape.is_simple():
            errors.append(
                f"partition {partition.entity_id!r} polygon self-intersects"
            )


def _check_doors(
    model: DigitalSpaceModel, errors: list[str], warnings: list[str]
) -> None:
    topology = model.topology
    for door in model.doors():
        connected = topology.door_connections.get(door.entity_id, ())
        if len(connected) == 0:
            errors.append(
                f"door {door.entity_id!r} attaches to no partition "
                f"(anchor {door.anchor})"
            )
        elif len(connected) == 1 and not door.is_entrance:
            warnings.append(
                f"door {door.entity_id!r} attaches to a single partition "
                f"{connected[0]!r} but is not flagged as an entrance"
            )
    door_partitions = {
        pid for pids in topology.door_connections.values() for pid in pids
    }
    for partition in model.partitions():
        if partition.entity_id not in door_partitions:
            has_stack = any(
                model.partition_at(connector.anchor) is partition
                for connector in model.vertical_connectors(partition.floor)
            )
            if not has_stack:
                warnings.append(
                    f"partition {partition.entity_id!r} has no door or stair access"
                )


def _check_stacks(model: DigitalSpaceModel, errors: list[str]) -> None:
    stacks: dict[str, set[int]] = {}
    for connector in model.vertical_connectors():
        stack_id = connector.stack or connector.entity_id
        stacks.setdefault(stack_id, set()).add(connector.floor)
    for stack_id, floors in stacks.items():
        if len(floors) < 2:
            errors.append(
                f"vertical connector stack {stack_id!r} serves a single floor "
                f"{sorted(floors)}"
            )


def _check_regions(
    model: DigitalSpaceModel,
    errors: list[str],
    warnings: list[str],
    require_regions: bool,
) -> None:
    if model.region_count == 0:
        message = "DSM defines no semantic regions; annotation will be spatial-only"
        if require_regions:
            errors.append(message)
        else:
            warnings.append(message)
        return
    for region in model.regions():
        for entity_id in region.entity_ids:
            entity = model.entity(entity_id)
            if not entity.is_partition:
                errors.append(
                    f"region {region.region_id!r} maps non-partition entity "
                    f"{entity_id!r} ({entity.kind.value})"
                )


def _check_connectivity(
    model: DigitalSpaceModel,
    errors: list[str],
    warnings: list[str],
    require_connected: bool,
) -> None:
    graph = model.topology.partition_graph
    if graph.number_of_nodes() <= 1:
        return
    components = list(nx.connected_components(graph))
    if len(components) > 1:
        sizes = sorted((len(c) for c in components), reverse=True)
        message = (
            f"walkable space splits into {len(components)} disconnected "
            f"components (sizes {sizes})"
        )
        if require_connected:
            errors.append(message)
        else:
            warnings.append(message)
