"""Indoor entities: the physical vocabulary of the Digital Space Model.

The paper's DSM "captures the geometric properties and topological relations
of unique entities (e.g., doors, walls, rooms, and staircases)" (§3).  Each
entity couples a footprint shape from :mod:`repro.geometry` with a kind and
free-form properties; topology between entities is *derived* geometrically
by :mod:`repro.dsm.topology`, never stored redundantly on the entity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from ..errors import DSMError
from ..geometry import Point, Shape, shape_anchor, shape_area, shape_floor


class EntityKind(Enum):
    """Classification of indoor entities.

    ``ROOM`` and ``HALLWAY`` are *partitions* — walkable areas bounded by
    walls.  ``DOOR`` connects partitions; ``STAIRCASE``/``ELEVATOR`` connect
    floors; ``WALL`` blocks straight-line movement; ``OBSTACLE`` is a
    non-walkable area inside a partition (pillar, kiosk counter).
    """

    ROOM = "room"
    HALLWAY = "hallway"
    DOOR = "door"
    WALL = "wall"
    STAIRCASE = "staircase"
    ELEVATOR = "elevator"
    OBSTACLE = "obstacle"

    @property
    def is_partition(self) -> bool:
        """True for walkable area entities."""
        return self in (EntityKind.ROOM, EntityKind.HALLWAY)

    @property
    def is_vertical_connector(self) -> bool:
        """True for entities that connect floors."""
        return self in (EntityKind.STAIRCASE, EntityKind.ELEVATOR)


#: Property key grouping vertical-connector entities into one shaft/stack.
STACK_PROPERTY = "stack"

#: Property key marking a door that leads outside the building.
ENTRANCE_PROPERTY = "entrance"


@dataclass
class IndoorEntity:
    """One drawn indoor entity.

    Parameters
    ----------
    entity_id:
        Unique identifier within the DSM, e.g. ``"f3-room-nike"``.
    kind:
        The :class:`EntityKind` classification.
    shape:
        Footprint geometry; partitions and obstacles need area shapes,
        doors may be points or segments, walls are polylines/segments.
    name:
        Optional display name shown by the viewer's tooltips.
    properties:
        Free-form metadata; recognized keys include :data:`STACK_PROPERTY`
        for staircases/elevators and :data:`ENTRANCE_PROPERTY` for exterior
        doors.
    """

    entity_id: str
    kind: EntityKind
    shape: Shape
    name: str = ""
    properties: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.entity_id:
            raise DSMError("entity requires a non-empty id")
        if self.kind.is_partition and shape_area(self.shape) <= 0.0:
            raise DSMError(
                f"partition entity {self.entity_id!r} needs an area shape, "
                f"got {type(self.shape).__name__}"
            )
        if self.kind is EntityKind.OBSTACLE and shape_area(self.shape) <= 0.0:
            raise DSMError(
                f"obstacle entity {self.entity_id!r} needs an area shape"
            )

    @property
    def floor(self) -> int:
        """The floor the entity's shape lies on."""
        return shape_floor(self.shape)

    @property
    def anchor(self) -> Point:
        """Representative point used for distances and rendering labels."""
        return shape_anchor(self.shape)

    @property
    def is_partition(self) -> bool:
        """True when the entity is a walkable area."""
        return self.kind.is_partition

    @property
    def is_entrance(self) -> bool:
        """True for doors flagged as building entrances."""
        return self.kind is EntityKind.DOOR and bool(
            self.properties.get(ENTRANCE_PROPERTY, False)
        )

    @property
    def stack(self) -> str | None:
        """Shaft identifier for vertical connectors, else None."""
        if not self.kind.is_vertical_connector:
            return None
        value = self.properties.get(STACK_PROPERTY)
        return str(value) if value is not None else None

    def __str__(self) -> str:
        label = self.name or self.entity_id
        return f"{self.kind.value}:{label}@{self.floor}F"
