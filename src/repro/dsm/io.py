"""DSM JSON serialization.

"All aforementioned information is stored in the DSM in JSON format, which
is flexible to parse and manipulate" (paper §3).  The schema here is
versioned and round-trip tested; topology is always recomputed on load so a
hand-edited file can never carry stale connectivity.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import DSMError
from ..geometry import Circle, Point, Polygon, Polyline, Segment, Shape
from .entities import EntityKind, IndoorEntity
from .model import DigitalSpaceModel
from .regions import SemanticRegion, SemanticTag

SCHEMA_VERSION = 1


def shape_to_json(shape: Shape) -> dict[str, Any]:
    """Serialize any footprint shape to a JSON-compatible dict."""
    if isinstance(shape, Point):
        return {"type": "point", "x": shape.x, "y": shape.y, "floor": shape.floor}
    if isinstance(shape, Segment):
        return {
            "type": "segment",
            "floor": shape.floor,
            "points": [[shape.a.x, shape.a.y], [shape.b.x, shape.b.y]],
        }
    if isinstance(shape, Polyline):
        return {
            "type": "polyline",
            "floor": shape.floor,
            "points": [[v.x, v.y] for v in shape.vertices],
        }
    if isinstance(shape, Polygon):
        return {
            "type": "polygon",
            "floor": shape.floor,
            "points": [[v.x, v.y] for v in shape.vertices],
        }
    if isinstance(shape, Circle):
        return {
            "type": "circle",
            "floor": shape.floor,
            "center": [shape.center.x, shape.center.y],
            "radius": shape.radius,
        }
    raise DSMError(f"unserializable shape type: {type(shape).__name__}")


def shape_from_json(data: dict[str, Any]) -> Shape:
    """Deserialize a shape dict produced by :func:`shape_to_json`."""
    try:
        shape_type = data["type"]
        floor = int(data.get("floor", 1))
        if shape_type == "point":
            return Point(float(data["x"]), float(data["y"]), floor)
        if shape_type == "segment":
            (ax, ay), (bx, by) = data["points"]
            return Segment(Point(ax, ay, floor), Point(bx, by, floor))
        if shape_type == "polyline":
            return Polyline([Point(x, y, floor) for x, y in data["points"]])
        if shape_type == "polygon":
            return Polygon([Point(x, y, floor) for x, y in data["points"]])
        if shape_type == "circle":
            cx, cy = data["center"]
            return Circle(Point(cx, cy, floor), float(data["radius"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise DSMError(f"malformed shape JSON: {data!r}") from exc
    raise DSMError(f"unknown shape type: {shape_type!r}")


def dsm_to_dict(model: DigitalSpaceModel) -> dict[str, Any]:
    """The versioned JSON-compatible representation of a DSM."""
    return {
        "schema_version": SCHEMA_VERSION,
        "name": model.name,
        "description": model.description,
        "floors": [
            {"number": info.number, "name": info.name} for info in model.floors
        ],
        "tags": [
            {"name": tag.name, "category": tag.category, "style": tag.style}
            for tag in model.tags
        ],
        "entities": [
            {
                "id": entity.entity_id,
                "kind": entity.kind.value,
                "name": entity.name,
                "shape": shape_to_json(entity.shape),
                "properties": entity.properties,
            }
            for entity in model.entities()
        ],
        "regions": [
            {
                "id": region.region_id,
                "name": region.name,
                "tag": region.tag.name,
                "shape": (
                    shape_to_json(region.shape) if region.shape is not None else None
                ),
                "entity_ids": list(region.entity_ids),
                "properties": region.properties,
            }
            for region in model.regions()
        ],
    }


def dsm_from_dict(data: dict[str, Any]) -> DigitalSpaceModel:
    """Rebuild a DSM from its dict form; topology is recomputed lazily."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise DSMError(
            f"unsupported DSM schema version {version!r} (expected {SCHEMA_VERSION})"
        )
    model = DigitalSpaceModel(
        name=data.get("name", "indoor-space"),
        description=data.get("description", ""),
    )
    for floor in data.get("floors", []):
        model.add_floor(int(floor["number"]), floor.get("name", ""))
    tags: dict[str, SemanticTag] = {}
    for tag_data in data.get("tags", []):
        tag = SemanticTag(
            name=tag_data["name"],
            category=tag_data.get("category", "generic"),
            style=tag_data.get("style", ""),
        )
        tags[tag.name] = tag
        model.register_tag(tag)
    for entity_data in data.get("entities", []):
        try:
            kind = EntityKind(entity_data["kind"])
        except ValueError as exc:
            raise DSMError(
                f"unknown entity kind: {entity_data.get('kind')!r}"
            ) from exc
        model.add_entity(
            IndoorEntity(
                entity_id=entity_data["id"],
                kind=kind,
                shape=shape_from_json(entity_data["shape"]),
                name=entity_data.get("name", ""),
                properties=dict(entity_data.get("properties", {})),
            )
        )
    for region_data in data.get("regions", []):
        tag_name = region_data["tag"]
        tag = tags.get(tag_name)
        if tag is None:
            tag = SemanticTag(tag_name)
            model.register_tag(tag)
        shape_data = region_data.get("shape")
        shape = shape_from_json(shape_data) if shape_data is not None else None
        if shape is not None and not isinstance(shape, (Polygon, Circle)):
            raise DSMError(
                f"region {region_data['id']!r} shape must be an area shape"
            )
        model.add_region(
            SemanticRegion(
                region_id=region_data["id"],
                name=region_data.get("name", region_data["id"]),
                tag=tag,
                shape=shape,
                entity_ids=tuple(region_data.get("entity_ids", ())),
                properties=dict(region_data.get("properties", {})),
            )
        )
    return model


def save_dsm(model: DigitalSpaceModel, path: str | Path, indent: int = 2) -> None:
    """Write a DSM to a JSON file."""
    payload = dsm_to_dict(model)
    Path(path).write_text(json.dumps(payload, indent=indent), encoding="utf-8")


def load_dsm(path: str | Path) -> DigitalSpaceModel:
    """Read a DSM from a JSON file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise DSMError(f"cannot read DSM file {path}: {exc}") from exc
    return dsm_from_dict(payload)


def dsm_to_json(model: DigitalSpaceModel, indent: int | None = None) -> str:
    """The DSM as a JSON string."""
    return json.dumps(dsm_to_dict(model), indent=indent)


def dsm_from_json(text: str) -> DigitalSpaceModel:
    """Parse a DSM from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DSMError(f"malformed DSM JSON: {exc}") from exc
    return dsm_from_dict(payload)
