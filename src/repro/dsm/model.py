"""The Digital Space Model (DSM) container.

The DSM is the semi-structured model the Space Modeler produces and the
Translator consumes: "the geometric attributes and topological relations for
indoor entities, those for semantic regions, and the mapping between indoor
entities and semantic regions" (paper §2).  This module holds the entity and
region tables plus point-location queries; derived connectivity lives in
:class:`repro.dsm.topology.Topology`, built lazily and invalidated on any
mutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..errors import DSMError
from ..geometry import BoundingBox, Point, shape_bounds, shape_contains
from .entities import EntityKind, IndoorEntity
from .index import GridIndex
from .regions import SemanticRegion, SemanticTag

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .topology import Topology


@dataclass(frozen=True)
class FloorInfo:
    """Descriptive metadata for one building floor."""

    number: int
    name: str = ""

    @property
    def label(self) -> str:
        """Display label, e.g. ``3F``."""
        return self.name or f"{self.number}F"


@dataclass
class DigitalSpaceModel:
    """The complete digital model of one indoor space."""

    name: str = "indoor-space"
    description: str = ""
    _floors: dict[int, FloorInfo] = field(default_factory=dict)
    _entities: dict[str, IndoorEntity] = field(default_factory=dict)
    _regions: dict[str, SemanticRegion] = field(default_factory=dict)
    _tags: dict[str, SemanticTag] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._partition_index: dict[int, GridIndex] = {}
        self._region_index: dict[int, GridIndex] = {}
        self._regions_by_partition: dict[str, list[str]] = {}
        self._topology: "Topology | None" = None
        self._indexes_fresh = False

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_floor(self, number: int, name: str = "") -> FloorInfo:
        """Register a floor; floors are auto-registered by add_entity too."""
        info = FloorInfo(number, name)
        self._floors[number] = info
        self._invalidate()
        return info

    def add_entity(self, entity: IndoorEntity) -> IndoorEntity:
        """Insert an entity; its floor is registered automatically."""
        if entity.entity_id in self._entities:
            raise DSMError(f"duplicate entity id: {entity.entity_id!r}")
        self._entities[entity.entity_id] = entity
        if entity.floor not in self._floors:
            self._floors[entity.floor] = FloorInfo(entity.floor)
        self._invalidate()
        return entity

    def add_region(self, region: SemanticRegion) -> SemanticRegion:
        """Insert a semantic region; member entity ids must already exist."""
        if region.region_id in self._regions:
            raise DSMError(f"duplicate region id: {region.region_id!r}")
        for entity_id in region.entity_ids:
            if entity_id not in self._entities:
                raise DSMError(
                    f"region {region.region_id!r} references unknown entity "
                    f"{entity_id!r}"
                )
        self._regions[region.region_id] = region
        self._tags.setdefault(region.tag.name, region.tag)
        self._invalidate()
        return region

    def register_tag(self, tag: SemanticTag) -> SemanticTag:
        """Add a semantic tag to the reusable tag library."""
        self._tags[tag.name] = tag
        self._invalidate()
        return tag

    def remove_entity(self, entity_id: str) -> None:
        """Delete an entity; fails if a region still references it."""
        if entity_id not in self._entities:
            raise DSMError(f"unknown entity id: {entity_id!r}")
        for region in self._regions.values():
            if entity_id in region.entity_ids:
                raise DSMError(
                    f"entity {entity_id!r} is referenced by region "
                    f"{region.region_id!r}"
                )
        del self._entities[entity_id]
        self._invalidate()

    def remove_region(self, region_id: str) -> None:
        """Delete a semantic region."""
        if region_id not in self._regions:
            raise DSMError(f"unknown region id: {region_id!r}")
        del self._regions[region_id]
        self._invalidate()

    def _invalidate(self) -> None:
        self._topology = None
        self._indexes_fresh = False

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def floors(self) -> list[FloorInfo]:
        """Floors sorted by number."""
        return [self._floors[n] for n in sorted(self._floors)]

    @property
    def floor_numbers(self) -> list[int]:
        """Sorted floor numbers."""
        return sorted(self._floors)

    def entity(self, entity_id: str) -> IndoorEntity:
        """The entity with the given id (KeyError-free)."""
        try:
            return self._entities[entity_id]
        except KeyError:
            raise DSMError(f"unknown entity id: {entity_id!r}") from None

    def region(self, region_id: str) -> SemanticRegion:
        """The region with the given id."""
        try:
            return self._regions[region_id]
        except KeyError:
            raise DSMError(f"unknown region id: {region_id!r}") from None

    def has_entity(self, entity_id: str) -> bool:
        """True when an entity with this id exists."""
        return entity_id in self._entities

    def has_region(self, region_id: str) -> bool:
        """True when a region with this id exists."""
        return region_id in self._regions

    def tag(self, name: str) -> SemanticTag:
        """A tag from the tag library."""
        try:
            return self._tags[name]
        except KeyError:
            raise DSMError(f"unknown semantic tag: {name!r}") from None

    @property
    def tags(self) -> list[SemanticTag]:
        """All registered tags sorted by name."""
        return [self._tags[k] for k in sorted(self._tags)]

    def entities(
        self, kind: EntityKind | None = None, floor: int | None = None
    ) -> list[IndoorEntity]:
        """Entities filtered by kind and/or floor, in id order."""
        found = [
            e
            for e in self._entities.values()
            if (kind is None or e.kind is kind)
            and (floor is None or e.floor == floor)
        ]
        found.sort(key=lambda e: e.entity_id)
        return found

    def partitions(self, floor: int | None = None) -> list[IndoorEntity]:
        """Walkable area entities (rooms + hallways)."""
        found = [
            e
            for e in self._entities.values()
            if e.is_partition and (floor is None or e.floor == floor)
        ]
        found.sort(key=lambda e: e.entity_id)
        return found

    def doors(self, floor: int | None = None) -> list[IndoorEntity]:
        """Door entities."""
        return self.entities(EntityKind.DOOR, floor)

    def walls(self, floor: int | None = None) -> list[IndoorEntity]:
        """Wall entities."""
        return self.entities(EntityKind.WALL, floor)

    def vertical_connectors(self, floor: int | None = None) -> list[IndoorEntity]:
        """Staircase and elevator entities."""
        found = [
            e
            for e in self._entities.values()
            if e.kind.is_vertical_connector and (floor is None or e.floor == floor)
        ]
        found.sort(key=lambda e: e.entity_id)
        return found

    def regions(
        self, category: str | None = None, floor: int | None = None
    ) -> list[SemanticRegion]:
        """Semantic regions filtered by tag category and/or floor."""
        found = []
        for region in self._regions.values():
            if category is not None and region.category != category:
                continue
            if floor is not None and self.region_floor(region.region_id) != floor:
                continue
            found.append(region)
        found.sort(key=lambda r: r.region_id)
        return found

    def __iter__(self) -> Iterator[IndoorEntity]:
        return iter(self.entities())

    @property
    def entity_count(self) -> int:
        """Total number of entities."""
        return len(self._entities)

    @property
    def region_count(self) -> int:
        """Total number of semantic regions."""
        return len(self._regions)

    # ------------------------------------------------------------------
    # Spatial queries
    # ------------------------------------------------------------------
    def floor_bounds(self, floor: int) -> BoundingBox:
        """Union bounding box of everything drawn on a floor."""
        boxes = [
            shape_bounds(e.shape) for e in self._entities.values() if e.floor == floor
        ]
        if not boxes:
            raise DSMError(f"floor {floor} has no entities")
        box = boxes[0]
        for other in boxes[1:]:
            box = box.union(other)
        return box

    def partition_at(self, point: Point) -> IndoorEntity | None:
        """The partition containing ``point``, or None.

        When partitions overlap (drawing slack) the smallest containing
        partition wins, so a shop inside a hallway outline resolves to the
        shop.
        """
        self._refresh_indexes()
        index = self._partition_index.get(point.floor)
        if index is None:
            return None
        best: IndoorEntity | None = None
        best_area = float("inf")
        from ..geometry import shape_area  # local import to avoid cycle noise

        for entity_id in index.candidates_at(point):
            entity = self._entities[entity_id]
            if shape_contains(entity.shape, point):
                area = shape_area(entity.shape)
                if area < best_area:
                    best, best_area = entity, area
        return best

    def nearest_partition(
        self, point: Point, max_distance: float = 10.0
    ) -> tuple[IndoorEntity, float] | None:
        """Closest partition on the point's floor within ``max_distance``.

        Used to snap positioning records that noise pushed into a wall or
        just outside the building outline.
        """
        inside = self.partition_at(point)
        if inside is not None:
            return inside, 0.0
        from ..geometry import shape_distance_to_point

        best: IndoorEntity | None = None
        best_dist = max_distance
        for entity in self.partitions(point.floor):
            dist = shape_distance_to_point(entity.shape, point)
            if dist <= best_dist:
                best, best_dist = entity, dist
        if best is None:
            return None
        return best, best_dist

    def regions_at(self, point: Point) -> list[SemanticRegion]:
        """All semantic regions covering ``point`` (shape or member match)."""
        self._refresh_indexes()
        found: dict[str, SemanticRegion] = {}
        index = self._region_index.get(point.floor)
        if index is not None:
            for region_id in index.candidates_at(point):
                region = self._regions[region_id]
                if region.contains_point_in_shape(point):
                    found[region_id] = region
        partition = self.partition_at(point)
        if partition is not None:
            for region_id in self._regions_by_partition.get(
                partition.entity_id, ()
            ):
                found.setdefault(region_id, self._regions[region_id])
        return [found[k] for k in sorted(found)]

    def primary_region_at(self, point: Point) -> SemanticRegion | None:
        """The most specific region at ``point``: smallest explicit shape
        first, then member-mapped regions."""
        candidates = self.regions_at(point)
        if not candidates:
            return None
        from ..geometry import shape_area

        def specificity(region: SemanticRegion) -> tuple[int, float]:
            if region.shape is not None and region.contains_point_in_shape(point):
                return (0, shape_area(region.shape))
            area = sum(
                shape_area(self._entities[e].shape) for e in region.entity_ids
            )
            return (1, area)

        return min(candidates, key=specificity)

    def region_anchor(self, region_id: str) -> Point:
        """Representative point of a region (shape centroid or member mean)."""
        region = self.region(region_id)
        member_anchors = [self._entities[e].anchor for e in region.entity_ids]
        return region.anchor_from(member_anchors)

    def region_floor(self, region_id: str) -> int:
        """The floor a region lies on (anchor floor)."""
        return self.region_anchor(region_id).floor

    def regions_of_partition(self, partition_id: str) -> list[SemanticRegion]:
        """Regions mapped to a partition via the entity↔region mapping or an
        explicit shape that covers the partition's anchor."""
        self._refresh_indexes()
        region_ids = list(self._regions_by_partition.get(partition_id, ()))
        partition = self.entity(partition_id)
        for region in self._regions.values():
            if region.region_id in region_ids:
                continue
            if region.shape is not None and region.contains_point_in_shape(
                partition.anchor
            ):
                region_ids.append(region.region_id)
        return [self._regions[r] for r in sorted(set(region_ids))]

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def topology(self) -> "Topology":
        """The derived connectivity model, built lazily and cached."""
        if self._topology is None:
            from .topology import Topology

            self._topology = Topology.build(self)
        return self._topology

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refresh_indexes(self) -> None:
        if self._indexes_fresh:
            return
        self._partition_index = {}
        self._region_index = {}
        self._regions_by_partition = {}
        for entity in self._entities.values():
            if not entity.is_partition:
                continue
            index = self._partition_index.setdefault(entity.floor, GridIndex())
            index.insert(entity.entity_id, shape_bounds(entity.shape))
        for region in self._regions.values():
            if region.shape is not None:
                floor = region.shape.floor
                index = self._region_index.setdefault(floor, GridIndex())
                index.insert(region.region_id, shape_bounds(region.shape))
            for entity_id in region.entity_ids:
                self._regions_by_partition.setdefault(entity_id, []).append(
                    region.region_id
                )
        self._indexes_fresh = True

    def __str__(self) -> str:
        return (
            f"DSM({self.name!r}: {len(self._floors)} floors, "
            f"{len(self._entities)} entities, {len(self._regions)} regions)"
        )
