"""Digital Space Model (substrate S2).

The DSM is TRIPS' central data structure: indoor entities with geometry,
semantic regions with tags, the entity↔region mapping, derived topology
(door attachment, partition connectivity, walking distances, region
adjacency), JSON persistence and structural validation.
"""

from .entities import (
    ENTRANCE_PROPERTY,
    STACK_PROPERTY,
    EntityKind,
    IndoorEntity,
)
from .index import GridIndex
from .io import (
    dsm_from_dict,
    dsm_from_json,
    dsm_to_dict,
    dsm_to_json,
    load_dsm,
    save_dsm,
    shape_from_json,
    shape_to_json,
)
from .model import DigitalSpaceModel, FloorInfo
from .regions import SemanticRegion, SemanticTag
from .topology import DOOR_ATTACH_TOLERANCE, FLOOR_CHANGE_COST, Topology
from .validate import validate_dsm

__all__ = [
    "DOOR_ATTACH_TOLERANCE",
    "ENTRANCE_PROPERTY",
    "FLOOR_CHANGE_COST",
    "STACK_PROPERTY",
    "DigitalSpaceModel",
    "EntityKind",
    "FloorInfo",
    "GridIndex",
    "IndoorEntity",
    "SemanticRegion",
    "SemanticTag",
    "Topology",
    "dsm_from_dict",
    "dsm_from_json",
    "dsm_to_dict",
    "dsm_to_json",
    "load_dsm",
    "save_dsm",
    "shape_from_json",
    "shape_to_json",
    "validate_dsm",
]
