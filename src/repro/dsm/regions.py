"""Semantic regions: analyst-defined areas with practical meaning.

"A semantic region refers to a region associated with some practical
semantics" (paper §1) — a Nike Store, a Cashier desk, the Center Hall.  A
region is defined either by an explicit drawn shape, by a set of member
partition entities, or both; the DSM records "the mapping between indoor
entities and semantic regions" (§2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import DSMError
from ..geometry import AreaShape, Point, centroid_of, shape_anchor, shape_contains


@dataclass(frozen=True)
class SemanticTag:
    """A reusable label applied to drawn shapes in the Space Modeler.

    Tags carry a category (``"shop"``, ``"cashier"``, ``"facility"`` …) and
    an optional display style so the drawing tool can "customize and apply
    different styles to differentiate the indoor entities with different
    semantic tags" (§3).
    """

    name: str
    category: str = "generic"
    style: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise DSMError("semantic tag requires a non-empty name")


@dataclass
class SemanticRegion:
    """A named region of interest inside the indoor space.

    Parameters
    ----------
    region_id:
        Unique identifier within the DSM.
    name:
        Display name used in mobility semantics, e.g. ``"Nike"``.
    tag:
        The semantic tag attached in the Space Modeler.
    shape:
        Optional explicit area shape drawn by the analyst.
    entity_ids:
        Partition entities composing the region (entity↔region mapping).
    properties:
        Free-form metadata.
    """

    region_id: str
    name: str
    tag: SemanticTag
    shape: AreaShape | None = None
    entity_ids: tuple[str, ...] = ()
    properties: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.region_id:
            raise DSMError("semantic region requires a non-empty id")
        if self.shape is None and not self.entity_ids:
            raise DSMError(
                f"region {self.region_id!r} needs an explicit shape or member entities"
            )
        self.entity_ids = tuple(self.entity_ids)

    @property
    def category(self) -> str:
        """The tag category (``"shop"``, ``"cashier"``, …)."""
        return self.tag.category

    def contains_point_in_shape(self, point: Point) -> bool:
        """Membership against the explicit shape only (members are checked
        by the DSM, which owns the entity table)."""
        if self.shape is None:
            return False
        return shape_contains(self.shape, point)

    def anchor_from(self, member_anchors: list[Point]) -> Point:
        """Representative point: explicit shape centroid, else member mean."""
        if self.shape is not None:
            return shape_anchor(self.shape)
        if not member_anchors:
            raise DSMError(f"region {self.region_id!r} has no resolvable anchor")
        return centroid_of(member_anchors)

    def __str__(self) -> str:
        return f"region:{self.name}({self.tag.category})"
