"""Derived indoor topology: door attachment, connectivity, walking distance.

This module turns the DSM's drawn geometry into the relational structures
the Translator needs:

* which partitions each door connects (derived geometrically);
* the partition connectivity graph (nodes = partitions, edges = doors);
* the navigation graph over door/staircase anchor points, whose shortest
  paths realize the paper's "minimum indoor walking distance" [13] used by
  the cleaning layer;
* the semantic-region adjacency graph used by the complementing layer's
  mobility-knowledge inference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx

from ..errors import DSMError
from ..geometry import Point, shape_contains, shape_distance_to_point
from .entities import EntityKind, IndoorEntity
from .model import DigitalSpaceModel

#: How far a door anchor may sit from a partition boundary and still attach.
DOOR_ATTACH_TOLERANCE = 0.75
#: Walking-cost (metres-equivalent) of moving one floor via stairs/elevator.
FLOOR_CHANGE_COST = 20.0


@dataclass
class Topology:
    """Connectivity derived from a :class:`DigitalSpaceModel`."""

    model: DigitalSpaceModel
    door_attach_tolerance: float = DOOR_ATTACH_TOLERANCE
    floor_change_cost: float = FLOOR_CHANGE_COST
    #: door id -> partition ids it connects (1 = entrance, 2 = interior door)
    door_connections: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: partition connectivity graph; edge attr ``doors`` lists door ids
    partition_graph: nx.Graph = field(default_factory=nx.Graph)
    #: navigation graph over door/stack anchors; edge attr ``weight`` metres
    nav_graph: nx.Graph = field(default_factory=nx.Graph)
    #: semantic-region adjacency; edge attr ``weight`` = anchor distance
    region_graph: nx.Graph = field(default_factory=nx.Graph)

    _nav_nodes_by_partition: dict[str, list[str]] = field(default_factory=dict)
    _nav_anchor: dict[str, Point] = field(default_factory=dict)
    _dijkstra_cache: dict[str, dict[str, float]] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        model: DigitalSpaceModel,
        door_attach_tolerance: float = DOOR_ATTACH_TOLERANCE,
        floor_change_cost: float = FLOOR_CHANGE_COST,
    ) -> "Topology":
        """Compute the full topology of ``model``."""
        topology = cls(
            model=model,
            door_attach_tolerance=door_attach_tolerance,
            floor_change_cost=floor_change_cost,
        )
        topology._attach_doors()
        topology._build_partition_graph()
        topology._build_nav_graph()
        topology._build_region_graph()
        return topology

    # ------------------------------------------------------------------
    # Construction steps
    # ------------------------------------------------------------------
    def _attach_doors(self) -> None:
        for door in self.model.doors():
            candidates: list[tuple[float, str]] = []
            for partition in self.model.partitions(door.floor):
                dist = shape_distance_to_point(partition.shape, door.anchor)
                if dist <= self.door_attach_tolerance:
                    candidates.append((dist, partition.entity_id))
            candidates.sort()
            connected = tuple(pid for _, pid in candidates[:2])
            self.door_connections[door.entity_id] = connected

    def _build_partition_graph(self) -> None:
        for partition in self.model.partitions():
            self.partition_graph.add_node(partition.entity_id)
        for door_id, connected in self.door_connections.items():
            if len(connected) == 2:
                a, b = connected
                if self.partition_graph.has_edge(a, b):
                    self.partition_graph.edges[a, b]["doors"].append(door_id)
                else:
                    self.partition_graph.add_edge(a, b, doors=[door_id])
        # Vertical connectors join the partitions that contain their anchors
        # across floors, through the shared stack.
        for stack_id, entities in self._stacks().items():
            by_floor = sorted(entities, key=lambda e: e.floor)
            for lower, upper in zip(by_floor, by_floor[1:]):
                pa = self.model.partition_at(lower.anchor)
                pb = self.model.partition_at(upper.anchor)
                if pa is None or pb is None:
                    continue
                key = f"stack:{stack_id}:{lower.floor}-{upper.floor}"
                if self.partition_graph.has_edge(pa.entity_id, pb.entity_id):
                    self.partition_graph.edges[pa.entity_id, pb.entity_id][
                        "doors"
                    ].append(key)
                else:
                    self.partition_graph.add_edge(
                        pa.entity_id, pb.entity_id, doors=[key]
                    )

    def _build_nav_graph(self) -> None:
        # Door nodes.
        for door in self.model.doors():
            node = f"door:{door.entity_id}"
            self.nav_graph.add_node(node)
            self._nav_anchor[node] = door.anchor
            for partition_id in self.door_connections.get(door.entity_id, ()):
                self._nav_nodes_by_partition.setdefault(partition_id, []).append(
                    node
                )
        # Stack nodes (one per connector entity, i.e. per stack per floor).
        for stack_id, entities in self._stacks().items():
            nodes_by_floor: dict[int, str] = {}
            for entity in entities:
                node = f"stack:{stack_id}:{entity.floor}"
                self.nav_graph.add_node(node)
                self._nav_anchor[node] = entity.anchor
                nodes_by_floor[entity.floor] = node
                partition = self.model.partition_at(entity.anchor)
                if partition is not None:
                    self._nav_nodes_by_partition.setdefault(
                        partition.entity_id, []
                    ).append(node)
            floors = sorted(nodes_by_floor)
            for lower, upper in zip(floors, floors[1:]):
                cost = self.floor_change_cost * (upper - lower)
                self.nav_graph.add_edge(
                    nodes_by_floor[lower], nodes_by_floor[upper], weight=cost
                )
        # Intra-partition edges between every pair of its nav nodes.
        for nodes in self._nav_nodes_by_partition.values():
            for i, node_a in enumerate(nodes):
                for node_b in nodes[i + 1 :]:
                    weight = self._nav_anchor[node_a].planar_distance_to(
                        self._nav_anchor[node_b]
                    )
                    existing = self.nav_graph.get_edge_data(node_a, node_b)
                    if existing is None or existing["weight"] > weight:
                        self.nav_graph.add_edge(node_a, node_b, weight=weight)

    def _build_region_graph(self) -> None:
        region_ids = [r.region_id for r in self.model.regions()]
        self.region_graph.add_nodes_from(region_ids)
        partitions_by_region: dict[str, set[str]] = {rid: set() for rid in region_ids}
        for partition in self.model.partitions():
            for region in self.model.regions_of_partition(partition.entity_id):
                partitions_by_region[region.region_id].add(partition.entity_id)

        def link(a: str, b: str) -> None:
            if a == b or self.region_graph.has_edge(a, b):
                return
            weight = self.region_distance(a, b)
            if not math.isfinite(weight):
                anchor_a = self.model.region_anchor(a)
                anchor_b = self.model.region_anchor(b)
                weight = anchor_a.planar_distance_to(anchor_b) + abs(
                    anchor_a.floor - anchor_b.floor
                ) * self.floor_change_cost
            self.region_graph.add_edge(a, b, weight=weight)

        # Regions joined by a partition-graph edge (door or stack).
        for pa, pb in self.partition_graph.edges():
            for ra in self.model.regions_of_partition(pa):
                for rb in self.model.regions_of_partition(pb):
                    link(ra.region_id, rb.region_id)
        # Regions sharing a partition (two zones of one hallway).
        for rid_a in region_ids:
            for rid_b in region_ids:
                if rid_a < rid_b and partitions_by_region[rid_a] & partitions_by_region[
                    rid_b
                ]:
                    link(rid_a, rid_b)

    def _stacks(self) -> dict[str, list[IndoorEntity]]:
        stacks: dict[str, list[IndoorEntity]] = {}
        for entity in self.model.vertical_connectors():
            stack_id = entity.stack or entity.entity_id
            stacks.setdefault(stack_id, []).append(entity)
        return stacks

    # ------------------------------------------------------------------
    # Door / partition queries
    # ------------------------------------------------------------------
    def partitions_of_door(self, door_id: str) -> tuple[str, ...]:
        """Partition ids a door connects (empty if dangling)."""
        if door_id not in self.door_connections:
            raise DSMError(f"unknown door id: {door_id!r}")
        return self.door_connections[door_id]

    def doors_of_partition(self, partition_id: str) -> list[str]:
        """Door ids attached to a partition, in id order."""
        found = [
            door_id
            for door_id, connected in self.door_connections.items()
            if partition_id in connected
        ]
        return sorted(found)

    def partitions_connected(self, partition_a: str, partition_b: str) -> bool:
        """True when a walkable path exists between the two partitions."""
        if partition_a == partition_b:
            return True
        if partition_a not in self.partition_graph or (
            partition_b not in self.partition_graph
        ):
            return False
        return nx.has_path(self.partition_graph, partition_a, partition_b)

    # ------------------------------------------------------------------
    # Walking distance (minimum indoor walking distance, per [13])
    # ------------------------------------------------------------------
    def walking_distance(self, start: Point, goal: Point) -> float:
        """Shortest indoor walking distance between two points in metres.

        Same-partition pairs use the direct planar distance; anything else
        must detour through doors (and stairs for cross-floor pairs).
        Returns ``inf`` when no walkable route exists.
        """
        distance, _ = self._route(start, goal, want_path=False)
        return distance

    def walking_path(self, start: Point, goal: Point) -> list[Point]:
        """Waypoints of the shortest walking route, including endpoints.

        Returns an empty list when the goal is unreachable.
        """
        distance, path = self._route(start, goal, want_path=True)
        if not math.isfinite(distance):
            return []
        return path

    def reachable(self, start: Point, goal: Point) -> bool:
        """True when a walkable route between the points exists."""
        return math.isfinite(self.walking_distance(start, goal))

    def _route(
        self, start: Point, goal: Point, want_path: bool
    ) -> tuple[float, list[Point]]:
        part_a = self._locate(start)
        part_b = self._locate(goal)
        if part_a is None or part_b is None:
            return math.inf, []
        if part_a == part_b:
            return start.planar_distance_to(goal) + self._floor_penalty(
                start, goal
            ), [start, goal]
        nodes_a = self._nav_nodes_by_partition.get(part_a, [])
        nodes_b = self._nav_nodes_by_partition.get(part_b, [])
        if not nodes_a or not nodes_b:
            return math.inf, []
        best = math.inf
        best_pair: tuple[str, str] | None = None
        for node_a in nodes_a:
            lengths = self._lengths_from(node_a)
            entry = start.planar_distance_to(self._nav_anchor[node_a])
            for node_b in nodes_b:
                through = lengths.get(node_b)
                if through is None:
                    continue
                exit_leg = self._nav_anchor[node_b].planar_distance_to(goal)
                total = entry + through + exit_leg
                if total < best:
                    best = total
                    best_pair = (node_a, node_b)
        if best_pair is None:
            return math.inf, []
        if not want_path:
            return best, []
        node_path = nx.dijkstra_path(self.nav_graph, best_pair[0], best_pair[1])
        waypoints = [start] + [self._nav_anchor[n] for n in node_path] + [goal]
        return best, waypoints

    def _lengths_from(self, node: str) -> dict[str, float]:
        cached = self._dijkstra_cache.get(node)
        if cached is None:
            cached = nx.single_source_dijkstra_path_length(self.nav_graph, node)
            self._dijkstra_cache[node] = cached
        return cached

    def _locate(self, point: Point, snap_distance: float = 5.0) -> str | None:
        partition = self.model.partition_at(point)
        if partition is not None:
            return partition.entity_id
        snapped = self.model.nearest_partition(point, snap_distance)
        if snapped is None:
            return None
        return snapped[0].entity_id

    @staticmethod
    def _floor_penalty(start: Point, goal: Point) -> float:
        # Same partition implies same floor in practice; guard anyway.
        return 0.0 if start.floor == goal.floor else math.inf

    # ------------------------------------------------------------------
    # Region queries (used by the complementing layer)
    # ------------------------------------------------------------------
    def regions_adjacent(self, region_a: str, region_b: str) -> bool:
        """True when the regions are neighbors in the region graph."""
        return self.region_graph.has_edge(region_a, region_b)

    def region_neighbors(self, region_id: str) -> list[str]:
        """Adjacent region ids, sorted."""
        if region_id not in self.region_graph:
            raise DSMError(f"region {region_id!r} not in region graph")
        return sorted(self.region_graph.neighbors(region_id))

    def region_distance(self, region_a: str, region_b: str) -> float:
        """Walking distance between region anchor points."""
        if region_a == region_b:
            return 0.0
        anchor_a = self.model.region_anchor(region_a)
        anchor_b = self.model.region_anchor(region_b)
        return self.walking_distance(anchor_a, anchor_b)

    def region_hops(self, region_a: str, region_b: str) -> int:
        """Number of region-graph edges on the shortest hop path (inf-free:
        raises DSMError when unreachable)."""
        if region_a == region_b:
            return 0
        try:
            return nx.shortest_path_length(self.region_graph, region_a, region_b)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise DSMError(
                f"regions {region_a!r} and {region_b!r} are not connected"
            ) from exc

    def region_path(self, region_a: str, region_b: str) -> list[str]:
        """Region ids along the shortest weighted region-graph path."""
        try:
            return nx.dijkstra_path(self.region_graph, region_a, region_b)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise DSMError(
                f"regions {region_a!r} and {region_b!r} are not connected"
            ) from exc

    # ------------------------------------------------------------------
    # Movement feasibility (cleaning layer support)
    # ------------------------------------------------------------------
    def straight_move_allowed(self, start: Point, goal: Point) -> bool:
        """True when the straight segment stays within one partition.

        The cleaning layer uses this to decide whether the direct distance
        or the door-detour distance bounds the feasible speed.
        """
        if start.floor != goal.floor:
            return False
        part_a = self.model.partition_at(start)
        part_b = self.model.partition_at(goal)
        if part_a is None or part_b is None or part_a is not part_b:
            return False
        midpoint = start.midpoint(goal)
        return shape_contains(part_a.shape, midpoint)

    def __str__(self) -> str:
        return (
            f"Topology({self.partition_graph.number_of_nodes()} partitions, "
            f"{len(self.door_connections)} doors, "
            f"{self.region_graph.number_of_nodes()} regions)"
        )
