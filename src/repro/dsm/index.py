"""A per-floor uniform grid index over area entities.

Point location (``which partition / region contains this record?``) is the
hottest spatial operation in the whole pipeline — every cleaned positioning
record is located at least once.  A uniform grid over bounding boxes keeps
it O(candidates-in-cell) instead of O(entities).
"""

from __future__ import annotations

from collections import defaultdict

from ..geometry import BoundingBox, Point


class GridIndex:
    """Maps planar bounding boxes to string keys, bucketed on a uniform grid.

    The index answers *candidate* queries; callers must still run the exact
    containment predicate on the returned keys.
    """

    def __init__(self, cell_size: float = 8.0):
        if cell_size <= 0:
            raise ValueError(f"cell size must be positive, got {cell_size}")
        self.cell_size = cell_size
        self._cells: dict[tuple[int, int], list[str]] = defaultdict(list)
        self._bounds: dict[str, BoundingBox] = {}

    def __len__(self) -> int:
        return len(self._bounds)

    def insert(self, key: str, bounds: BoundingBox) -> None:
        """Register ``key`` under every grid cell its bounds touch."""
        if key in self._bounds:
            raise ValueError(f"duplicate grid index key: {key!r}")
        self._bounds[key] = bounds
        for cell in self._cells_for(bounds):
            self._cells[cell].append(key)

    def candidates_at(self, point: Point) -> list[str]:
        """Keys whose bounds contain ``point`` (exact test still required)."""
        cell = self._cell_of(point.x, point.y)
        found = []
        for key in self._cells.get(cell, ()):
            if self._bounds[key].contains_point(point):
                found.append(key)
        return found

    def candidates_in(self, query: BoundingBox) -> list[str]:
        """Keys whose bounds intersect the query box (deduplicated)."""
        seen: set[str] = set()
        found: list[str] = []
        for cell in self._cells_for(query):
            for key in self._cells.get(cell, ()):
                if key not in seen and self._bounds[key].intersects(query):
                    seen.add(key)
                    found.append(key)
        return found

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        """The cell owning ``(x, y)``, with one pinned tie-break rule:

        a coordinate exactly on a cell line belongs to the **higher**-
        indexed cell (floor division: ``8.0 // 8 -> cell 1``, not cell 0).
        This is safe because :meth:`insert` registers a bounds under every
        cell through the one owning its *max* edge — so a query point on
        a shared cell line always lands in a cell that already lists every
        box touching that line.  Both point-location paths (the object
        model's grid lookups and the columnar locator's vectorized bbox
        masks) assume exactly this rule; ``tests/test_dsm_index.py``
        regression-tests it against both.
        """
        return (int(x // self.cell_size), int(y // self.cell_size))

    def _cells_for(self, bounds: BoundingBox):
        min_cx, min_cy = self._cell_of(bounds.min_x, bounds.min_y)
        max_cx, max_cy = self._cell_of(bounds.max_x, bounds.max_y)
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                yield (cx, cy)
