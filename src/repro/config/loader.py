"""Loading, saving and executing translation-task configurations."""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from ..core.annotation import EventIdentifier, HeuristicEventIdentifier
from ..core.translator import BatchTranslationResult, Translator
from ..dsm import load_dsm
from ..errors import ConfigError
from ..events import TrainingSet
from ..positioning import (
    CsvFileSource,
    DataSelector,
    JsonlFileSource,
    PositioningSequence,
)
from .schema import TranslationTaskConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import EngineConfig


def save_task(config: TranslationTaskConfig, path: str | Path) -> None:
    """Write a task config to JSON."""
    Path(path).write_text(
        json.dumps(config.to_dict(), indent=2), encoding="utf-8"
    )


def load_task(path: str | Path) -> TranslationTaskConfig:
    """Read a task config from JSON."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot read task config {path}: {exc}") from exc
    return TranslationTaskConfig.from_dict(data)


def select_sequences(config: TranslationTaskConfig) -> list[PositioningSequence]:
    """Run the configured Data Selector over the configured sources."""
    if not config.sources:
        raise ConfigError("task config lists no positioning sources")
    sources = []
    for source in config.sources:
        if source.kind == "csv":
            sources.append(CsvFileSource(source.path))
        else:
            sources.append(JsonlFileSource(source.path))
    selector = DataSelector(
        sources,
        rule=config.selection.build_rule(),
        visit_gap=config.selection.visit_gap,
    )
    return selector.select()


def build_translator(
    config: TranslationTaskConfig,
    training_set: TrainingSet | None = None,
) -> Translator:
    """Construct the configured Translator (DSM + event model + config).

    A learned ``event_model`` requires Event Editor ``training_set``
    designations; the heuristic identifier needs none.  Shared by
    :func:`run_task` and the live service's ``trips serve`` entry point,
    which builds one translator per venue config.
    """
    model = load_dsm(config.dsm_path)
    if config.event_model == "heuristic":
        event_model = HeuristicEventIdentifier()
    else:
        if training_set is None or len(training_set) == 0:
            raise ConfigError(
                f"event model {config.event_model!r} needs Event Editor "
                "training designations; pass a non-empty training_set"
            )
        event_model = EventIdentifier(config.event_model)
        event_model.train(training_set)
    return Translator(model, event_model, config.build_translator_config())


def run_task(
    config: TranslationTaskConfig,
    training_set: TrainingSet | None = None,
    engine: "EngineConfig | None" = None,
) -> BatchTranslationResult:
    """Execute one translation task end to end (workflow steps 1–4).

    Passing an ``engine`` config routes the batch through the parallel
    engine (``repro.engine.Engine``) instead of the serial translator;
    the results are identical either way.
    """
    translator = build_translator(config, training_set)
    sequences = select_sequences(config)
    if engine is not None:
        from ..engine import Engine

        return Engine(translator, engine).translate_batch(sequences)
    return translator.translate_batch(sequences)
