"""The Configurator's declarative translation-task configuration.

"The Configurator provides a standard but concise means to configure
multiple input sources, including the indoor positioning data, indoor space
information, and relevant contexts" (paper abstract).  A
:class:`TranslationTaskConfig` captures one task end to end — data sources,
DSM file, selection rules, event model choice, and every layer's knobs —
and round-trips through JSON so configured contexts can be "stored in the
backend for the reuse in other translation tasks" (§4).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from ..core.annotation import AnnotatorConfig, SplitterConfig
from ..core.cleaning import CleaningConfig
from ..core.complementing import ComplementorConfig, InferenceConfig
from ..core.translator import TranslatorConfig
from ..errors import ConfigError
from ..learning import MODEL_FACTORIES


@dataclass(frozen=True)
class SourceConfig:
    """One positioning data source."""

    kind: str  # "csv" | "jsonl"
    path: str

    def __post_init__(self) -> None:
        if self.kind not in ("csv", "jsonl"):
            raise ConfigError(
                f"unknown source kind {self.kind!r} (expected csv or jsonl)"
            )
        if not self.path:
            raise ConfigError("source requires a path")


@dataclass(frozen=True)
class SelectionConfig:
    """The serializable subset of Data Selector rules."""

    device_pattern: str | None = None
    floors: list[int] | None = None
    daily_open: float | None = None  # seconds into day
    daily_close: float | None = None
    min_duration: float = 0.0
    min_records: int = 2
    min_frequency: float = 0.0
    visit_gap: float | None = 1800.0

    def __post_init__(self) -> None:
        if (self.daily_open is None) != (self.daily_close is None):
            raise ConfigError("daily_open and daily_close must come together")
        if self.min_records < 1:
            raise ConfigError("min_records must be >= 1")

    def build_rule(self):
        """Materialize the configured rules as one combined rule."""
        from ..positioning import (
            DailyHoursRule,
            DeviceIdRule,
            DurationRule,
            FrequencyRule,
            RecordCountRule,
            SpatialRangeRule,
        )

        rules = []
        if self.device_pattern is not None:
            rules.append(DeviceIdRule(self.device_pattern))
        if self.floors is not None:
            rules.append(SpatialRangeRule(floors=self.floors))
        if self.daily_open is not None and self.daily_close is not None:
            rules.append(DailyHoursRule(self.daily_open, self.daily_close))
        if self.min_duration > 0:
            rules.append(DurationRule(min_seconds=self.min_duration))
        if self.min_records > 1:
            rules.append(RecordCountRule(min_records=self.min_records))
        if self.min_frequency > 0:
            rules.append(FrequencyRule(min_per_minute=self.min_frequency))
        if not rules:
            return None
        combined = rules[0]
        for rule in rules[1:]:
            combined = combined & rule
        return combined


@dataclass(frozen=True)
class TranslationTaskConfig:
    """One complete translation task."""

    dsm_path: str
    sources: list[SourceConfig] = field(default_factory=list)
    selection: SelectionConfig = SelectionConfig()
    event_model: str = "heuristic"  # "heuristic" or a MODEL_FACTORIES key
    max_speed: float = 2.5
    enable_floor_correction: bool = True
    enable_interpolation: bool = True
    eps_space: float = 4.5
    eps_time: float = 120.0
    min_pts: int = 4
    gap_threshold: float = 120.0
    max_hops: int = 4
    knowledge_smoothing: float = 1.0
    #: Knowledge-lifecycle retention when this task is served as a live
    #: feed (``trips serve``): ``"unbounded"`` (default), ``"window:N"``,
    #: ``"window:Ns"`` or ``"decay:H"`` — see
    #: :func:`repro.knowledge.parse_retention`.  One-shot batch
    #: translation always builds full-batch knowledge and ignores this.
    knowledge_retention: str = "unbounded"
    display_point_policy: str = "temporally-middle"

    def __post_init__(self) -> None:
        if not self.dsm_path:
            raise ConfigError("task requires a DSM path")
        from ..knowledge import parse_retention

        parse_retention(self.knowledge_retention)
        if self.event_model != "heuristic" and self.event_model not in MODEL_FACTORIES:
            raise ConfigError(
                f"unknown event model {self.event_model!r}; choose 'heuristic' "
                f"or one of {sorted(MODEL_FACTORIES)}"
            )
        if self.display_point_policy not in (
            "temporally-middle",
            "spatially-central",
        ):
            raise ConfigError(
                f"unknown display point policy {self.display_point_policy!r}"
            )

    def build_translator_config(self) -> TranslatorConfig:
        """Materialize the three-layer framework configuration."""
        return TranslatorConfig(
            cleaning=CleaningConfig(
                max_speed=self.max_speed,
                enable_floor_correction=self.enable_floor_correction,
                enable_interpolation=self.enable_interpolation,
            ),
            annotation=AnnotatorConfig(
                splitter=SplitterConfig(
                    eps_space=self.eps_space,
                    eps_time=self.eps_time,
                    min_pts=self.min_pts,
                )
            ),
            complementing=ComplementorConfig(
                gap_threshold=self.gap_threshold,
                inference=InferenceConfig(max_hops=self.max_hops),
            ),
            knowledge_smoothing=self.knowledge_smoothing,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        data = asdict(self)
        data["selection"] = asdict(self.selection)
        data["sources"] = [asdict(s) for s in self.sources]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TranslationTaskConfig":
        """Inverse of :meth:`to_dict` with field validation."""
        try:
            selection_data = dict(data.get("selection", {}))
            if selection_data.get("floors") is not None:
                selection_data["floors"] = [int(f) for f in selection_data["floors"]]
            sources = [
                SourceConfig(kind=s["kind"], path=s["path"])
                for s in data.get("sources", [])
            ]
            known = {
                k: v
                for k, v in data.items()
                if k not in ("selection", "sources")
            }
            return cls(
                sources=sources,
                selection=SelectionConfig(**selection_data),
                **known,
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed task config: {exc}") from exc
