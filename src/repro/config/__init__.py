"""Configurator (substrate S10).

Declarative translation-task configuration (sources, DSM, selection rules,
event model, all layer knobs) with JSON round-trip, plus the task runner
that executes workflow steps (1)–(4) from a single config object.
"""

from .loader import (
    build_translator,
    load_task,
    run_task,
    save_task,
    select_sequences,
)
from .schema import SelectionConfig, SourceConfig, TranslationTaskConfig

__all__ = [
    "SelectionConfig",
    "SourceConfig",
    "TranslationTaskConfig",
    "build_translator",
    "load_task",
    "run_task",
    "save_task",
    "select_sequences",
]
