"""Distributed ingestion: device-hash sharded instances, exact merge.

TRIPS' last scaling axis is horizontal: one venue map, many service
instances, each ingesting a slice of the record feed.  This package
shards feeds across N :class:`~repro.live.LiveTranslationService`
instances and keeps their mobility knowledge reconciled through the
exact shard algebra (:mod:`repro.core.complementing`,
:mod:`repro.knowledge`):

- :mod:`repro.distributed.router` — :class:`DeviceHashRouter` (stable
  BLAKE2 device hash, the default) and :class:`VenueAffineRouter` pin
  every device to one shard; any callable ``(record, shards) -> index``
  plugs in.  The one router invariant: a device's records within a
  window must land on one shard, because sequences group per shard.
- :class:`ShardedIngestService` — cuts cluster windows, partitions each
  window per shard, drives the shards' window translations concurrently
  (each shard owns its own warm worker pool), and aggregates
  :class:`ClusterStats`.
- :class:`KnowledgeExchange` — every ``exchange_interval`` cluster
  windows, each shard exports the **delta** of its knowledge store
  since the last round
  (:meth:`~repro.knowledge.KnowledgeStore.export_delta`: a
  :meth:`~repro.knowledge.KnowledgeStore.to_partial` snapshot minus the
  previous baseline, by the algebra's exact inverse); the coordinator
  folds the deltas into one global shard per venue and rebases every
  shard on exactly the evidence it is missing.

Invariants (proved by ``tests/test_distributed.py``):

- **Eventual exactness.**  After any full exchange round, every shard's
  live knowledge is bit-for-bit the single-instance fold of all windows
  processed so far — and therefore, once a finite feed has drained, the
  one-shot ``Engine.translate_batch`` knowledge over the same windowed
  sequences.  Any device partition, any exchange schedule.
- **Staleness, never error.**  Between rounds a shard's prior is its own
  evidence plus the cluster state as of its last rebase — a subset of
  the true aggregate, never a corruption of it.
- **Additivity requirement.**  Exchange deltas are additive, so the
  cluster requires unbounded retention; retiring or decaying retention
  is rejected at construction
  (:class:`~repro.errors.ConfigError`).
"""

from .exchange import ExchangeRound, ExchangeStats, KnowledgeExchange
from .router import (
    SHARD_ROUTERS,
    DeviceHashRouter,
    ShardRouter,
    VenueAffineRouter,
    parse_shard_router,
    shard_records,
    stable_hash,
)
from .service import (
    ClusterStats,
    ClusterWindowResult,
    ShardedIngestService,
)

__all__ = [
    "ClusterStats",
    "ClusterWindowResult",
    "DeviceHashRouter",
    "ExchangeRound",
    "ExchangeStats",
    "KnowledgeExchange",
    "SHARD_ROUTERS",
    "ShardRouter",
    "ShardedIngestService",
    "VenueAffineRouter",
    "parse_shard_router",
    "shard_records",
    "stable_hash",
]
