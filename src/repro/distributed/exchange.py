"""The knowledge exchange: exact merge of per-shard venue knowledge.

Every shard of a :class:`~repro.distributed.ShardedIngestService` folds
only the mobility evidence of the devices routed to it, so between
exchanges the shards' priors diverge — each complements against a
partial view.  The exchange reconciles them through the shard algebra,
and *exactly*:

1. **Export.**  Each shard exports, per venue, the delta of its
   knowledge store since the last exchange —
   :meth:`~repro.knowledge.KnowledgeStore.export_delta`, a
   :meth:`~repro.knowledge.KnowledgeStore.to_partial` snapshot with the
   previous round's baseline subtracted through the algebra's exact
   inverse.  The delta is bit-for-bit the epochs the shard folded in
   between.
2. **Fold.**  The coordinator folds every delta into one global
   :class:`~repro.core.complementing.PartialKnowledge` per venue.
   Folding is commutative and associative with exact-sum dwell totals,
   so the global aggregate is independent of shard count, arrival order
   and exchange schedule.
3. **Rebase.**  Each shard receives exactly the evidence it is missing —
   the global aggregate minus what the shard already holds, again by
   exact subtraction — and folds it into its live knowledge.

The invariant this buys (proved by ``tests/test_distributed.py``):
after any full exchange round, **every shard's live knowledge equals —
bit for bit — the single-instance fold** of all windows processed so
far, and therefore the one-shot batch knowledge once a finite feed has
drained.  Between rounds a shard's prior is its own evidence plus the
cluster state as of the last rebase: stale, never wrong.

The protocol is additive, so it requires unbounded retention: a shard
that retires or decays evidence cannot express its change since the
baseline as an additive delta (the subtraction would go negative).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..core.complementing import MobilityKnowledge, PartialKnowledge
from ..errors import ConfigError
from ..knowledge import KnowledgeStore, Unbounded
from ..telemetry import get_registry

if TYPE_CHECKING:  # pragma: no cover
    from ..live import LiveTranslationService

#: Size-flavoured buckets for delta magnitudes (sequences per delta).
DELTA_SIZE_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
    2500.0, 5000.0, 10000.0,
)


@dataclass(frozen=True)
class ExchangeRound:
    """One completed exchange round's summary."""

    index: int
    #: Venues whose global knowledge the round touched.
    venues: tuple[str, ...]
    #: Shard deltas folded that actually carried evidence.
    deltas: int
    #: Sequences in the merged global knowledge, summed over venues.
    sequences_merged: float
    elapsed_seconds: float


@dataclass
class ExchangeStats:
    """Cumulative exchange counters."""

    rounds: int = 0
    deltas_folded: int = 0
    exchange_seconds: float = 0.0
    #: Sequences in the merged global knowledge, per venue.
    sequences_merged: dict[str, float] = field(default_factory=dict)


class KnowledgeExchange:
    """Coordinates exact knowledge merges across shard services.

    Owns the per-venue global :class:`PartialKnowledge` aggregate and a
    per-``(shard, venue)`` baseline (the snapshot each shard's store was
    last rebased to).  :meth:`exchange` runs one full round over a list
    of shard services; shards must be quiescent while it runs (the
    :class:`~repro.distributed.ShardedIngestService` guarantees that by
    exchanging between cluster windows).
    """

    def __init__(self) -> None:
        self._global: dict[str, PartialKnowledge] = {}
        self._smoothing: dict[str, float] = {}
        self._baselines: dict[tuple[int, str], PartialKnowledge] = {}
        self.stats = ExchangeStats()

    # ------------------------------------------------------------------
    # The round
    # ------------------------------------------------------------------
    def exchange(
        self, shards: "Sequence[LiveTranslationService]"
    ) -> ExchangeRound:
        """Run one full exchange round; returns its summary.

        After this returns, every shard's live knowledge for every venue
        it serves equals the merged global knowledge, bit for bit.
        """
        registry = get_registry()
        started = time.perf_counter()
        deltas_folded = 0
        rebase_seconds = 0.0
        venues_touched: list[str] = []
        venue_ids = sorted(
            {v for shard in shards for v in shard.dispatcher.venue_ids}
        )
        for venue_id in venue_ids:
            participants: list[tuple[int, KnowledgeStore]] = []
            for index, shard in enumerate(shards):
                if venue_id not in shard.dispatcher.translators:
                    continue
                store = shard.ensure_store(venue_id)
                if store is None:
                    continue  # venue builds no knowledge at all
                self._require_additive(store, venue_id)
                participants.append((index, store))
            if not participants:
                continue

            # Export: each shard's delta since its last baseline.
            deltas: dict[int, PartialKnowledge] = {}
            for index, store in participants:
                baseline = self._baselines.get((index, venue_id))
                delta = store.export_delta(baseline)
                deltas[index] = delta
                if delta.sequences_seen:
                    deltas_folded += 1
                    if registry.enabled:
                        registry.histogram(
                            "trips_exchange_delta_sequences",
                            buckets=DELTA_SIZE_BUCKETS,
                            venue=venue_id,
                        ).observe(delta.sequences_seen)

            # Fold: merge the deltas into the global aggregate.
            merged = self._global.get(venue_id)
            if merged is None:
                regions = deltas[participants[0][0]].regions
                merged = PartialKnowledge(regions=list(regions))
                self._global[venue_id] = merged
                self._smoothing[venue_id] = participants[0][
                    1
                ].knowledge.smoothing
            for index, _ in participants:
                merged.add(deltas[index])

            # Rebase: hand each shard exactly what it is missing.  The
            # post-round baseline is the same merged snapshot for every
            # participant; baselines are only ever subtracted *from
            # copies*, so one frozen copy is safely shared (keyed per
            # shard so a service added between rounds starts afresh).
            rebase_started = time.perf_counter()
            snapshot = merged.merge()  # no-args merge == deep copy
            for index, store in participants:
                missing = merged.merge()
                baseline = self._baselines.get((index, venue_id))
                if baseline is not None:
                    missing.subtract(baseline)
                missing.subtract(deltas[index])
                if missing.sequences_seen or missing.outgoing_totals:
                    store.knowledge.fold(missing)
                self._baselines[(index, venue_id)] = snapshot
            rebase_seconds += time.perf_counter() - rebase_started
            venues_touched.append(venue_id)
            self.stats.sequences_merged[venue_id] = merged.sequences_seen

        elapsed = time.perf_counter() - started
        self.stats.rounds += 1
        self.stats.deltas_folded += deltas_folded
        self.stats.exchange_seconds += elapsed
        if registry.enabled:
            registry.counter("trips_exchange_rounds_total").inc()
            if deltas_folded:
                registry.counter("trips_exchange_deltas_total").inc(
                    deltas_folded
                )
            registry.histogram("trips_exchange_round_seconds").observe(
                elapsed
            )
            registry.histogram("trips_exchange_rebase_seconds").observe(
                rebase_seconds
            )
        return ExchangeRound(
            index=self.stats.rounds - 1,
            venues=tuple(venues_touched),
            deltas=deltas_folded,
            sequences_merged=sum(
                self.stats.sequences_merged.values()
            ),
            elapsed_seconds=elapsed,
        )

    @staticmethod
    def _require_additive(store: KnowledgeStore, venue_id: str) -> None:
        if not isinstance(store.retention, Unbounded):
            raise ConfigError(
                f"knowledge exchange requires unbounded retention, but "
                f"venue {venue_id!r} runs {store.retention.name!r}; "
                "retired or decayed evidence cannot be expressed as an "
                "additive delta"
            )

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """The exchange's full state as a codec payload.

        Everything a restarted coordinator needs to keep rebasing
        exactly: the per-venue global aggregates, smoothing, every
        ``(shard, venue)`` baseline, and the cumulative stats.  The
        sharded service persists this after each round
        (:mod:`repro.durability` wire format, bit-for-bit round-trip).
        """
        from ..durability import encode

        return {
            "global": {
                venue: encode(partial)
                for venue, partial in self._global.items()
            },
            "smoothing": dict(self._smoothing),
            "baselines": [
                [shard, venue, encode(partial)]
                for (shard, venue), partial in self._baselines.items()
            ],
            "stats": {
                "rounds": self.stats.rounds,
                "deltas_folded": self.stats.deltas_folded,
                "exchange_seconds": self.stats.exchange_seconds,
                "sequences_merged": dict(self.stats.sequences_merged),
            },
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a previously exported state (inverse of
        :meth:`export_state`); replaces any current state."""
        from ..durability import decode

        self._global = {
            venue: decode(partial)
            for venue, partial in payload["global"].items()
        }
        self._smoothing = dict(payload["smoothing"])
        self._baselines = {
            (shard, venue): decode(partial)
            for shard, venue, partial in payload["baselines"]
        }
        counters = payload["stats"]
        self.stats = ExchangeStats(
            rounds=counters["rounds"],
            deltas_folded=counters["deltas_folded"],
            exchange_seconds=counters["exchange_seconds"],
            sequences_merged=dict(counters["sequences_merged"]),
        )

    # ------------------------------------------------------------------
    # The merged view
    # ------------------------------------------------------------------
    @property
    def venue_ids(self) -> list[str]:
        """Venues with merged global knowledge, sorted."""
        return sorted(self._global)

    def merged_partial(self, venue_id: str) -> PartialKnowledge | None:
        """A copy of one venue's merged global shard (``None`` if unseen)."""
        merged = self._global.get(venue_id)
        return merged.merge() if merged is not None else None

    def merged_knowledge(self, venue_id: str) -> MobilityKnowledge | None:
        """One venue's merged global knowledge as a queryable prior.

        Bit-for-bit what a single instance folding every shard's windows
        would hold — the coordinator's authoritative view.
        """
        merged = self._global.get(venue_id)
        if merged is None:
            return None
        return MobilityKnowledge.from_partials(
            [merged],
            regions=list(merged.regions),
            smoothing=self._smoothing[venue_id],
        )

    def __str__(self) -> str:
        return (
            f"KnowledgeExchange({len(self._global)} venues, "
            f"{self.stats.rounds} rounds, "
            f"{self.stats.deltas_folded} deltas folded)"
        )
