"""Shard routing: stable partition of records across service instances.

A shard router assigns every incoming record to one of N shard indices.
The one invariant a router must uphold is **device affinity**: all of a
device's records within an ingestion window must land on the same shard,
because per-device sequences are grouped *inside* each shard — splitting
a device across shards would split its sequence, changing cleaning and
annotation and therefore the knowledge.  Both built-in routers are
affine for the device's whole lifetime, which is strictly stronger.

Routers are plain callables ``(record, shards) -> index`` so tests and
deployments can plug arbitrary partitioning (consistent hashing, a
lookup service) without subclassing:

- :class:`DeviceHashRouter` — the default: a *stable* hash of the device
  id (BLAKE2, never Python's salted ``hash``) modulo the shard count, so
  the same device routes to the same shard across processes, restarts
  and machines.  Load spreads uniformly over devices.
- :class:`VenueAffineRouter` — hashes the record's *venue* instead, so
  every device of a venue pins to one shard.  A venue's knowledge then
  never needs merging (its evidence all accumulates on one instance) at
  the price of coarser balance; useful when venues are many and small.
"""

from __future__ import annotations

import hashlib
from typing import Callable

from ..errors import ConfigError
from ..live.dispatch import VENUE_SEPARATOR
from ..positioning import RawPositioningRecord

#: A shard router: maps ``(record, shard_count)`` to a shard index in
#: ``range(shard_count)``.  Must be device-affine within a window.  A
#: router may additionally expose ``shard_of_venue(venue_key, shards)``;
#: venue-tagged windows then route wholesale to that shard instead of
#: record by record (:class:`VenueAffineRouter` does).
ShardRouter = Callable[[RawPositioningRecord, int], int]


def stable_hash(key: str) -> int:
    """A process-stable 64-bit hash of a string key.

    Python's builtin ``hash`` is salted per process, which would route
    the same device to different shards on different instances — the
    exact opposite of what sharding needs.  BLAKE2b is deterministic
    everywhere and uniform enough that ``stable_hash(id) % shards``
    balances real device populations.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class DeviceHashRouter:
    """Route by a stable hash of the device id (the default router)."""

    name = "device"

    def __call__(self, record: RawPositioningRecord, shards: int) -> int:
        return stable_hash(record.device_id) % shards

    def __repr__(self) -> str:
        return "DeviceHashRouter()"


class VenueAffineRouter:
    """Route by the record's venue, pinning a venue's devices together.

    Tagged windows (the common case: ``process_window(records,
    venue_id=...)`` and every ``trips serve`` feed) route wholesale
    through :meth:`shard_of_venue` — the sharded service detects the
    method and pins the whole window to the venue's shard without
    touching a single record.  For untagged mixed feeds, ``venue_of``
    extracts the venue key per record; the default reads the
    ``"<venue>:<device>"`` prefix used by the live dispatcher and falls
    back to the whole device id when there is none — prefix-less
    untagged records therefore degrade to *device* affinity (still
    correct, no longer venue-pinned), so tag the feed or pass a custom
    ``venue_of`` when venue pinning matters.
    """

    name = "venue"

    def __init__(
        self,
        venue_of: "Callable[[RawPositioningRecord], str] | None" = None,
    ):
        self._venue_of = venue_of

    def shard_of_venue(self, venue_key: str, shards: int) -> int:
        """The one shard a whole venue pins to."""
        return stable_hash(venue_key) % shards

    def venue_key(self, record: RawPositioningRecord) -> str:
        if self._venue_of is not None:
            return self._venue_of(record)
        venue_id, found, _ = record.device_id.partition(VENUE_SEPARATOR)
        return venue_id if found else record.device_id

    def __call__(self, record: RawPositioningRecord, shards: int) -> int:
        return self.shard_of_venue(self.venue_key(record), shards)

    def __repr__(self) -> str:
        return f"VenueAffineRouter(venue_of={self._venue_of!r})"


#: Routers addressable by CLI spec (``trips serve --shard-router``).
SHARD_ROUTERS: dict[str, Callable[[], ShardRouter]] = {
    DeviceHashRouter.name: DeviceHashRouter,
    VenueAffineRouter.name: VenueAffineRouter,
}


def parse_shard_router(
    spec: "str | ShardRouter | None",
) -> ShardRouter:
    """Materialize a shard router from its spec name.

    Accepts an already-built router (any callable; returned as-is),
    ``None`` (device-hash default), or a registry name — currently
    ``"device"`` or ``"venue"``.
    """
    if spec is None:
        return DeviceHashRouter()
    if callable(spec):
        return spec
    if not isinstance(spec, str):
        raise ConfigError(
            f"shard router must be a name or callable, got "
            f"{type(spec).__name__}"
        )
    try:
        factory = SHARD_ROUTERS[spec.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(SHARD_ROUTERS))
        raise ConfigError(
            f"unknown shard router {spec!r} (known: {known})"
        ) from None
    return factory()


def shard_records(
    records: "list[RawPositioningRecord]",
    router: ShardRouter,
    shards: int,
) -> "dict[int, list[RawPositioningRecord]]":
    """Partition one window's records per shard, preserving feed order.

    Only shards that actually received records appear, keyed in index
    order so downstream processing is deterministic.  A router returning
    an index outside ``range(shards)`` raises
    :class:`~repro.errors.ConfigError` — misrouted traffic must fail
    loudly, exactly like venue dispatch.
    """
    routed: dict[int, list[RawPositioningRecord]] = {}
    for record in records:
        index = router(record, shards)
        if not 0 <= index < shards:
            raise ConfigError(
                f"shard router returned index {index} for device "
                f"{record.device_id!r}; expected 0 <= index < {shards}"
            )
        routed.setdefault(index, []).append(record)
    return {index: routed[index] for index in sorted(routed)}
