"""The sharded ingestion service: horizontal scale-out of the live service.

One :class:`ShardedIngestService` owns N independent
:class:`~repro.live.LiveTranslationService` instances — each with its own
warm worker pool and per-venue knowledge stores — plus one
:class:`~repro.distributed.KnowledgeExchange`.  Every cluster window is
partitioned across the shards by a device-stable
:class:`~repro.distributed.ShardRouter` and the shards translate their
slices **concurrently**; every ``exchange_interval`` cluster windows the
exchange reconciles the shards' knowledge through the exact shard
algebra, so each shard's complementing prior converges to the
single-instance fold (bit for bit) at every exchange round.

The cluster preserves the live service's exactness contract because the
partition respects the two boundaries the algebra cares about: records
split by *device* (sequences group whole inside one shard) and knowledge
merges by *exact sums* (shard-count- and order-independent).  What is
approximate between exchanges is only freshness — a shard complements
against the cluster state as of the last rebase plus its own evidence —
never the aggregates themselves.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Mapping

from ..core.complementing import MobilityKnowledge
from ..core.translator import (
    BatchTranslationResult,
    TranslationResult,
    Translator,
)
from ..durability import FORMAT_VERSION
from ..engine import EngineConfig
from ..errors import ConfigError, PersistenceError
from ..knowledge import RetentionPolicy, Unbounded, parse_retention
from ..live import LiveConfig, LiveStats, LiveTranslationService
from ..live.dispatch import Router
from ..live.service import LiveWindowResult
from ..positioning import RawPositioningRecord, RecordStream
from .exchange import ExchangeRound, ExchangeStats, KnowledgeExchange
from .router import ShardRouter, parse_shard_router, shard_records


@dataclass(frozen=True)
class ClusterWindowResult:
    """One cluster window: the per-shard windows it fanned out to."""

    index: int
    #: Per-shard window results, keyed by shard index (only shards that
    #: received records appear).
    shards: dict[int, LiveWindowResult]
    records: int
    elapsed_seconds: float
    #: The exchange round that ran after this window, if any.
    exchange: ExchangeRound | None = None

    @property
    def sequences(self) -> int:
        """Per-device sequences translated across all shards."""
        return sum(window.sequences for window in self.shards.values())

    @property
    def semantics(self) -> int:
        """Semantics triplets emitted across all shards."""
        return sum(window.semantics for window in self.shards.values())


@dataclass
class ClusterStats:
    """Cumulative counters across the whole shard cluster."""

    shards: int
    windows: int = 0
    records: int = 0
    sequences: int = 0
    semantics: int = 0
    #: Wall time from the first cluster window to the latest one.
    elapsed_seconds: float = 0.0
    #: Per-shard cumulative live stats, in shard-index order.
    per_shard: tuple[LiveStats, ...] = ()
    exchange: ExchangeStats = field(default_factory=ExchangeStats)

    @property
    def records_per_second(self) -> float:
        """Sustained record throughput over the cluster's lifetime."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.records / self.elapsed_seconds

    @property
    def windows_per_second(self) -> float:
        """Sustained cluster-window throughput."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.windows / self.elapsed_seconds

    def format_table(self) -> str:
        """Small fixed-width rendering for CLI / bench output."""
        merged = ", ".join(
            f"{venue}={count:g} seq"
            for venue, count in sorted(self.exchange.sequences_merged.items())
        )
        lines = [
            f"cluster: {self.shards} shards  {self.windows} windows  "
            f"{self.records} records  {self.sequences} sequences  "
            f"{self.semantics} semantics  "
            f"({self.records_per_second:,.0f} records/s)",
            f"exchange: {self.exchange.rounds} rounds  "
            f"{self.exchange.deltas_folded} deltas folded  "
            f"{self.exchange.exchange_seconds * 1e3:.1f} ms"
            + (f"  merged knowledge: {merged}" if merged else ""),
        ]
        for index, stats in enumerate(self.per_shard):
            epochs = sum(
                venue.retained_epochs for venue in stats.venues.values()
            )
            lines.append(
                f"  shard {index}  {stats.windows:4d} windows  "
                f"{stats.records:7d} records  "
                f"{stats.sequences:5d} sequences  "
                f"{stats.semantics:6d} semantics  "
                f"{stats.translate_seconds:6.2f}s translate  "
                f"{epochs:4d} epochs  wal={stats.wal_bytes:,d}B "
                f"snapshots={stats.snapshots}"
            )
        return "\n".join(lines)


def _require_unbounded(
    retention: "str | RetentionPolicy | Mapping[str, str | RetentionPolicy] | None",
    where: str,
) -> None:
    """The exchange is additive; reject retention that retires evidence."""
    if isinstance(retention, Mapping):
        for venue_id, spec in retention.items():
            _require_unbounded(spec, f"venue {venue_id!r}")
        return
    if not isinstance(parse_retention(retention), Unbounded):
        raise ConfigError(
            f"sharded ingestion requires unbounded retention ({where} "
            f"configures {retention!r}); retired or decayed evidence "
            "cannot be merged as additive deltas across shards"
        )


class ShardedIngestService:
    """N live-service shards behind one device-hash partition + exchange.

    Construct exactly like a :class:`~repro.live.LiveTranslationService`
    — a ``{venue_id: Translator}`` map plus engine/live configs — with a
    ``shards`` count on top.  Each shard is a full live service (own
    worker pool, own per-venue knowledge stores); the cluster cuts
    windows off the feed, partitions each window's records per shard
    (``shard_router``: device-hash by default, venue-affine or custom),
    drives the shard windows concurrently, and every
    ``exchange_interval`` cluster windows reconciles knowledge through
    the :class:`~repro.distributed.KnowledgeExchange`
    (``exchange_interval=None`` disables the automatic rounds;
    :meth:`exchange_now` is always available).  The service is a context
    manager, like its shards.
    """

    def __init__(
        self,
        translators: Mapping[str, Translator] | Translator,
        shards: int = 2,
        engine_config: EngineConfig | None = None,
        live_config: LiveConfig | None = None,
        shard_router: "str | ShardRouter | None" = None,
        exchange_interval: int | None = 1,
        router: Router | None = None,
        retention: "str | RetentionPolicy | Mapping[str, str | RetentionPolicy] | None" = None,
        state_dir: "str | Path | None" = None,
    ):
        if shards < 1:
            raise ConfigError(f"shard count must be >= 1, got {shards}")
        if exchange_interval is not None and exchange_interval < 1:
            raise ConfigError(
                f"exchange interval must be >= 1 cluster windows, got "
                f"{exchange_interval}"
            )
        engine_config = (
            engine_config if engine_config is not None else EngineConfig()
        )
        # The exchange's additive deltas require unbounded retention on
        # every path a venue's policy can come from: the explicit
        # override, or the engine default it falls back to.
        _require_unbounded(retention, "the service retention")
        _require_unbounded(
            engine_config.retention, "EngineConfig.retention"
        )
        self.shard_router = parse_shard_router(shard_router)
        self.exchange_interval = exchange_interval
        self.exchange = KnowledgeExchange()
        # Durable state fans out: each shard journals into its own
        # subdirectory; the cluster keeps its counters and the exchange
        # state in two atomically-replaced files at the root.
        self._state_dir = Path(state_dir) if state_dir is not None else None
        self._cluster_recovered = False
        self.shards: list[LiveTranslationService] = [
            LiveTranslationService(
                translators,
                engine_config,
                live_config,
                router=router,
                retention=retention,
                state_dir=(
                    self._state_dir / f"shard-{index}"
                    if self._state_dir is not None
                    else None
                ),
            )
            for index in range(shards)
        ]
        self.live_config = self.shards[0].live_config
        self._driver: ThreadPoolExecutor | None = None
        self._windows = 0
        self._since_exchange = 0
        self._started: float | None = None
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self) -> "ShardedIngestService":
        """Open every shard's pool plus the cluster's driver threads."""
        if self._driver is None:
            self._driver = ThreadPoolExecutor(
                max_workers=len(self.shards),
                thread_name_prefix="trips-shard",
            )
        for shard in self.shards:
            shard.open()  # each shard recovers from its own journal
        if self._state_dir is not None and not self._cluster_recovered:
            self._recover_cluster()
            self._cluster_recovered = True
        return self

    def close(self) -> None:
        """Tear every shard down; accumulated state is kept."""
        for shard in self.shards:
            shard.close()
        if self._driver is not None:
            self._driver.shutdown(wait=True)
            self._driver = None

    def __enter__(self) -> "ShardedIngestService":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._driver is None:
            self.open()

    # ------------------------------------------------------------------
    # Durable cluster state (see :mod:`repro.durability`)
    # ------------------------------------------------------------------
    # The shards journal their own windows; the cluster adds two files:
    # ``cluster.json`` (window/exchange counters, refreshed after every
    # cluster window) and ``exchange.json`` (the coordinator's merged
    # aggregates and per-shard baselines, refreshed after every round).
    # Both are published by atomic rename.  Right after a round, every
    # journaled shard is checkpointed — the rebase folds cluster
    # evidence into shard knowledge *outside* the shard's own fold path,
    # so only a snapshot makes it durable — and the recovery guarantee
    # is therefore at cluster-window boundaries: kill between windows,
    # reopen, and shards, exchange and counters resume bit for bit.
    def _cluster_path(self) -> Path:
        return self._state_dir / "cluster.json"

    def _exchange_path(self) -> Path:
        return self._state_dir / "exchange.json"

    def _persist_cluster(self) -> None:
        if self._state_dir is None:
            return
        _write_atomic(
            self._cluster_path(),
            {
                "magic": "trips-cluster",
                "version": FORMAT_VERSION,
                "windows": self._windows,
                "since_exchange": self._since_exchange,
                "elapsed": self._elapsed,
            },
        )

    def _persist_exchange(self) -> None:
        for shard in self.shards:
            shard.checkpoint()
        _write_atomic(
            self._exchange_path(),
            {
                "magic": "trips-exchange",
                "version": FORMAT_VERSION,
                "state": self.exchange.export_state(),
            },
        )

    def _recover_cluster(self) -> None:
        exchange_payload = _read_atomic(
            self._exchange_path(), "trips-exchange"
        )
        if exchange_payload is not None:
            self.exchange.restore_state(exchange_payload["state"])
        cluster_payload = _read_atomic(self._cluster_path(), "trips-cluster")
        if cluster_payload is not None:
            self._windows = cluster_payload["windows"]
            self._since_exchange = cluster_payload["since_exchange"]
            self._elapsed = cluster_payload["elapsed"]
            most = max(shard.stats.windows for shard in self.shards)
            if most > self._windows:
                raise PersistenceError(
                    f"a shard recovered {most} windows but the cluster "
                    f"state records only {self._windows}; the crash was "
                    "not at a cluster-window boundary and the state "
                    "directory is inconsistent"
                )

    # ------------------------------------------------------------------
    # Window processing
    # ------------------------------------------------------------------
    def shard_of(self, record: RawPositioningRecord) -> int:
        """The shard index one record routes to."""
        return self.shard_router(record, len(self.shards))

    def process_window(
        self,
        records: list[RawPositioningRecord],
        venue_id: str | None = None,
    ) -> ClusterWindowResult:
        """Translate one cluster window across the shards, concurrently.

        The window's records partition per shard (device-stable, order-
        preserving); each receiving shard runs an ordinary live-service
        window on the cluster's driver threads, so the shards' own
        worker pools overlap.  A venue-tagged window routes wholesale
        when the router pins venues (``shard_of_venue``, e.g.
        :class:`~repro.distributed.VenueAffineRouter`) — the tag is the
        venue key, so tagged feeds pin without per-record hashing.  When
        the automatic exchange interval elapses, an exchange round runs
        after the window — between windows, so shards are quiescent
        while knowledge moves.
        """
        self._ensure_open()
        started = time.perf_counter()
        if self._started is None:
            self._started = started
        pin = getattr(self.shard_router, "shard_of_venue", None)
        if venue_id is not None and pin is not None and records:
            index = pin(venue_id, len(self.shards))
            if not 0 <= index < len(self.shards):
                raise ConfigError(
                    f"shard router pinned venue {venue_id!r} to index "
                    f"{index}; expected 0 <= index < {len(self.shards)}"
                )
            routed = {index: records}
        else:
            routed = shard_records(
                records, self.shard_router, len(self.shards)
            )
        futures = {
            index: self._driver.submit(
                self.shards[index].process_window, shard_batch, venue_id
            )
            for index, shard_batch in routed.items()
        }
        shard_windows = {
            index: future.result() for index, future in futures.items()
        }
        self._windows += 1
        self._since_exchange += 1
        round_result: ExchangeRound | None = None
        if (
            self.exchange_interval is not None
            and self._since_exchange >= self.exchange_interval
        ):
            round_result = self.exchange_now()
        finished = time.perf_counter()
        self._elapsed = finished - self._started
        self._persist_cluster()
        return ClusterWindowResult(
            index=self._windows - 1,
            shards=shard_windows,
            records=len(records),
            elapsed_seconds=finished - started,
            exchange=round_result,
        )

    def exchange_now(self) -> ExchangeRound:
        """Run one knowledge exchange round immediately.

        After it returns, every shard's live knowledge equals the merged
        cluster knowledge bit for bit (see
        :class:`~repro.distributed.KnowledgeExchange`).
        """
        self._ensure_open()
        self._since_exchange = 0
        round_result = self.exchange.exchange(self.shards)
        if self._state_dir is not None:
            # Rebased knowledge arrived outside the shards' fold path;
            # only a checkpoint makes it durable (see the durability
            # notes above), and the exchange state must follow it.
            self._persist_exchange()
            self._persist_cluster()
        return round_result

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def run_stream(
        self,
        stream: RecordStream,
        venue_id: str | None = None,
        on_window: Callable[[ClusterWindowResult], None] | None = None,
    ) -> ClusterStats:
        """Replay one finite feed through the cluster, window by window.

        Windows are cut with the live config's global bounds and
        partitioned per shard; a final exchange round runs after the
        feed drains, so the cluster ends converged.
        """
        self._ensure_open()
        config = self.live_config
        while True:
            records = stream.take_window(
                config.window_seconds, config.max_window_records
            )
            if not records:
                break
            window = self.process_window(records, venue_id)
            if on_window is not None:
                on_window(window)
        self._final_exchange()
        return self.stats

    def run_feeds(
        self,
        feeds: Mapping[str, RecordStream],
        on_window: Callable[[ClusterWindowResult], None] | None = None,
    ) -> ClusterStats:
        """Replay venue-tagged feeds, interleaving one window per venue.

        The synchronous multi-feed driver (the CLI's ``trips serve
        --shards``): each pass cuts one window off every still-live
        feed, in venue order, so venues progress together the way the
        asyncio front-end interleaves them.  Ends with a final exchange
        round, converged.
        """
        self._ensure_open()
        config = self.live_config
        active = dict(feeds)
        while active:
            for venue_id in sorted(active):
                records = active[venue_id].take_window(
                    config.window_seconds, config.max_window_records
                )
                if not records:
                    del active[venue_id]
                    continue
                window = self.process_window(records, venue_id)
                if on_window is not None:
                    on_window(window)
        self._final_exchange()
        return self.stats

    def _final_exchange(self) -> None:
        if (
            self.exchange_interval is not None
            and self._windows > 0
            and self._since_exchange > 0
        ):
            self.exchange_now()

    # ------------------------------------------------------------------
    # Accumulated state
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ClusterStats:
        """Cumulative cluster counters plus per-shard live stats."""
        per_shard = tuple(shard.stats for shard in self.shards)
        return ClusterStats(
            shards=len(self.shards),
            windows=self._windows,
            records=sum(stats.records for stats in per_shard),
            sequences=sum(stats.sequences for stats in per_shard),
            semantics=sum(stats.semantics for stats in per_shard),
            elapsed_seconds=self._elapsed,
            per_shard=per_shard,
            exchange=replace(
                self.exchange.stats,
                sequences_merged=dict(
                    self.exchange.stats.sequences_merged
                ),
            ),
        )

    def merged_knowledge(self, venue_id: str) -> MobilityKnowledge | None:
        """The cluster's merged global knowledge for one venue.

        ``None`` until an exchange round has seen evidence for the
        venue.  After any full round this equals every shard's live
        knowledge and the single-instance fold, bit for bit.
        """
        return self.exchange.merged_knowledge(venue_id)

    def finalize(self) -> dict[str, BatchTranslationResult]:
        """Batch-equivalent cumulative results per venue, cluster-wide.

        Runs a final exchange round (so every shard complements against
        the full merged knowledge), finalizes each shard, and splices
        the per-shard batches into one per venue — sorted by (device,
        first timestamp) so the output is deterministic regardless of
        how devices were sharded.  Modulo that ordering, the spliced
        results are exactly the single-instance ``finalize()`` over the
        same windows, because each sequence's complement is computed
        against identical (merged) knowledge.
        """
        self._ensure_open()
        self.exchange_now()
        finalized_per_shard = list(
            self._driver.map(
                lambda shard: shard.finalize(), self.shards
            )
        )
        combined: dict[str, BatchTranslationResult] = {}
        for venue_id in self.shards[0].dispatcher.venue_ids:
            results: list[TranslationResult] = []
            elapsed = 0.0
            for finalized in finalized_per_shard:
                batch = finalized[venue_id]
                results.extend(batch.results)
                elapsed += batch.elapsed_seconds
            results.sort(key=_result_order)
            combined[venue_id] = BatchTranslationResult(
                results,
                self.merged_knowledge(venue_id),
                elapsed,
                None,
            )
        return combined

    def __str__(self) -> str:
        return (
            f"ShardedIngestService({len(self.shards)} shards, "
            f"{self._windows} windows, {self.exchange})"
        )


def _result_order(result: TranslationResult) -> tuple:
    """Deterministic cross-shard ordering: device, then first timestamp."""
    records = result.raw.records
    return (result.device_id, records[0].timestamp if records else 0.0)


def _write_atomic(path: Path, payload: dict) -> None:
    """Publish one JSON state file by fsync + atomic rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_suffix(path.suffix + ".tmp")
    with open(tmp_path, "wb") as handle:
        handle.write(
            json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
                "utf-8"
            )
        )
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def _read_atomic(path: Path, magic: str) -> "dict | None":
    """Read one published state file; ``None`` when it does not exist."""
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_bytes())
    except ValueError as exc:
        raise PersistenceError(f"{path} is corrupt: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != magic:
        raise PersistenceError(f"{path} is not a {magic!r} state file")
    if payload.get("version") != FORMAT_VERSION:
        raise PersistenceError(
            f"{path} is format version {payload.get('version')!r}; this "
            f"build reads version {FORMAT_VERSION}"
        )
    return payload
