"""The Space Modeler's drawing canvas (headless).

This is the programmatic equivalent of the paper's drawing tool
(Figure 2): import a floorplan, trace it with polygons / polylines /
circles, edit with undo/redo and snapping, organize shapes into layers and
groups, and attach semantic tags.  The product is a set of
:class:`DrawnShape` objects the builder converts into a DSM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dsm import EntityKind
from ..errors import DSMError
from ..geometry import Circle, Point, Polygon, Polyline, Segment, Shape
from .commands import AddShape, CommandStack, RemoveShape, ReplaceShape
from .shapes import DrawnShape, ShapeStyle


@dataclass(frozen=True)
class FloorplanImage:
    """Metadata of an imported floorplan raster (the tracing background)."""

    name: str
    width: float
    height: float
    floor: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise DSMError("floorplan image needs positive dimensions")


class DrawingCanvas:
    """A per-floor drawing surface with full edit history."""

    def __init__(self, floor: int, name: str = ""):
        self.floor = floor
        self.name = name or f"floor-{floor}"
        self.floorplan: FloorplanImage | None = None
        self._shapes: dict[str, DrawnShape] = {}
        self._stack = CommandStack()
        self._counter = 0
        self.snap_tolerance = 0.25

    # ------------------------------------------------------------------
    # Step (1): import the floorplan image
    # ------------------------------------------------------------------
    def import_floorplan(
        self, name: str, width: float, height: float
    ) -> FloorplanImage:
        """Attach the background image the analyst traces over."""
        self.floorplan = FloorplanImage(name, width, height, self.floor)
        return self.floorplan

    # ------------------------------------------------------------------
    # Step (2): trace with geometric elements
    # ------------------------------------------------------------------
    def draw_polygon(
        self,
        points: list[tuple[float, float]],
        kind: EntityKind | None = None,
        name: str = "",
        layer: str = "default",
        style: ShapeStyle | None = None,
        snap: bool = True,
    ) -> DrawnShape:
        """Draw a polygon; vertices may snap to existing geometry."""
        vertices = [self._to_point(x, y, snap) for x, y in points]
        return self._add(Polygon(vertices), kind, name, layer, style)

    def draw_rectangle(
        self,
        min_x: float,
        min_y: float,
        max_x: float,
        max_y: float,
        kind: EntityKind | None = None,
        name: str = "",
        layer: str = "default",
        style: ShapeStyle | None = None,
    ) -> DrawnShape:
        """Draw an axis-aligned rectangle (the most common trace)."""
        return self._add(
            Polygon.rectangle(min_x, min_y, max_x, max_y, self.floor),
            kind,
            name,
            layer,
            style,
        )

    def draw_polyline(
        self,
        points: list[tuple[float, float]],
        kind: EntityKind | None = EntityKind.WALL,
        name: str = "",
        layer: str = "default",
        style: ShapeStyle | None = None,
        snap: bool = True,
    ) -> DrawnShape:
        """Draw an open polyline (walls, usually)."""
        vertices = [self._to_point(x, y, snap) for x, y in points]
        return self._add(Polyline(vertices), kind, name, layer, style)

    def draw_circle(
        self,
        center: tuple[float, float],
        radius: float,
        kind: EntityKind | None = None,
        name: str = "",
        layer: str = "default",
        style: ShapeStyle | None = None,
    ) -> DrawnShape:
        """Draw a circle (kiosks, pillars, round regions)."""
        return self._add(
            Circle(Point(center[0], center[1], self.floor), radius),
            kind,
            name,
            layer,
            style,
        )

    def draw_door(
        self,
        at: tuple[float, float],
        name: str = "",
        entrance: bool = False,
        snap: bool = True,
    ) -> DrawnShape:
        """Place a door point, optionally flagged as a building entrance."""
        point = self._to_point(at[0], at[1], snap)
        shape = self._add(point, EntityKind.DOOR, name, "doors", None)
        if entrance:
            updated = shape.with_tag(shape.semantic_tag)
            updated = DrawnShape(
                shape_id=shape.shape_id,
                shape=shape.shape,
                kind=shape.kind,
                name=shape.name,
                layer=shape.layer,
                group=shape.group,
                style=shape.style,
                semantic_tag=shape.semantic_tag,
                properties={**shape.properties, "entrance": True},
            )
            self._stack.execute(ReplaceShape(shape.shape_id, updated), self)
            return updated
        return shape

    def draw_stack_connector(
        self,
        at: tuple[float, float],
        stack: str,
        kind: EntityKind = EntityKind.STAIRCASE,
        radius: float = 1.5,
        name: str = "",
    ) -> DrawnShape:
        """Place a staircase/elevator footprint bound to a shaft id."""
        if not kind.is_vertical_connector:
            raise DSMError(f"{kind.value} is not a vertical connector")
        shape = Circle(Point(at[0], at[1], self.floor), radius)
        drawn = DrawnShape(
            shape_id=self._next_id(kind.value),
            shape=shape,
            kind=kind,
            name=name or f"{kind.value}-{stack}",
            layer="connectors",
            properties={"stack": stack},
        )
        self._stack.execute(AddShape(drawn), self)
        return drawn

    # ------------------------------------------------------------------
    # Edit mode: move / resize / rename / style / layer / group
    # ------------------------------------------------------------------
    def move_shape(self, shape_id: str, dx: float, dy: float) -> DrawnShape:
        """Translate a shape (free-transformation edit mode)."""
        shape = self.get(shape_id)
        geometry = self._translated(shape.shape, dx, dy)
        replacement = shape.with_shape(geometry)
        self._stack.execute(ReplaceShape(shape_id, replacement), self)
        return replacement

    def rename_shape(self, shape_id: str, name: str) -> DrawnShape:
        """Change a shape's display name."""
        replacement = self.get(shape_id).with_name(name)
        self._stack.execute(ReplaceShape(shape_id, replacement), self)
        return replacement

    def set_style(self, shape_id: str, style: ShapeStyle) -> DrawnShape:
        """Apply a custom style to one shape."""
        replacement = self.get(shape_id).with_style(style)
        self._stack.execute(ReplaceShape(shape_id, replacement), self)
        return replacement

    def set_layer(self, shape_id: str, layer: str) -> DrawnShape:
        """Move a shape to another layer."""
        replacement = self.get(shape_id).with_layer(layer)
        self._stack.execute(ReplaceShape(shape_id, replacement), self)
        return replacement

    def group_shapes(self, shape_ids: list[str], group: str) -> None:
        """Assign shapes to a named group (group control)."""
        for shape_id in shape_ids:
            replacement = self.get(shape_id).with_group(group)
            self._stack.execute(ReplaceShape(shape_id, replacement), self)

    def delete_shape(self, shape_id: str) -> None:
        """Remove a shape (undoable)."""
        self.get(shape_id)  # raises on unknown id
        self._stack.execute(RemoveShape(shape_id), self)

    # ------------------------------------------------------------------
    # Step (3): attach semantic tags
    # ------------------------------------------------------------------
    def assign_tag(
        self, shape_id: str, tag: str, name: str | None = None
    ) -> DrawnShape:
        """Attach a semantic tag (and optionally rename in the same action).

        Tagged area shapes become semantic regions when the DSM is built.
        """
        shape = self.get(shape_id)
        replacement = shape.with_tag(tag)
        if name is not None:
            replacement = replacement.with_name(name)
        self._stack.execute(ReplaceShape(shape_id, replacement), self)
        return replacement

    # ------------------------------------------------------------------
    # History
    # ------------------------------------------------------------------
    def undo(self) -> bool:
        """Undo the last drawing action."""
        return self._stack.undo(self)

    def redo(self) -> bool:
        """Redo the last undone action."""
        return self._stack.redo(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, shape_id: str) -> DrawnShape:
        """The drawn shape with the given id."""
        try:
            return self._shapes[shape_id]
        except KeyError:
            raise DSMError(f"unknown shape id: {shape_id!r}") from None

    def shapes(
        self, layer: str | None = None, group: str | None = None
    ) -> list[DrawnShape]:
        """All shapes, optionally filtered by layer/group, in id order."""
        found = [
            s
            for s in self._shapes.values()
            if (layer is None or s.layer == layer)
            and (group is None or s.group == group)
        ]
        found.sort(key=lambda s: s.shape_id)
        return found

    def layers(self) -> list[str]:
        """Distinct layer names in use."""
        return sorted({s.layer for s in self._shapes.values()})

    def __len__(self) -> int:
        return len(self._shapes)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _add(
        self,
        geometry: Shape,
        kind: EntityKind | None,
        name: str,
        layer: str,
        style: ShapeStyle | None,
    ) -> DrawnShape:
        drawn = DrawnShape(
            shape_id=self._next_id(kind.value if kind else "shape"),
            shape=geometry,
            kind=kind,
            name=name,
            layer=layer,
            style=style if style is not None else ShapeStyle(),
        )
        self._stack.execute(AddShape(drawn), self)
        return drawn

    def _next_id(self, prefix: str) -> str:
        self._counter += 1
        return f"f{self.floor}-{prefix}-{self._counter}"

    def _to_point(self, x: float, y: float, snap: bool) -> Point:
        point = Point(x, y, self.floor)
        if snap:
            snapped = self.auto_adjust(point)
            if snapped is not None:
                return snapped
        return point

    def auto_adjust(self, point: Point) -> Point | None:
        """The auto-adjust hint: snap to a nearby existing vertex."""
        best: Point | None = None
        best_distance = self.snap_tolerance
        for shape in self._shapes.values():
            for vertex in self._vertices(shape.shape):
                distance = vertex.planar_distance_to(point)
                if 0.0 < distance <= best_distance:
                    best, best_distance = vertex, distance
        return best

    @staticmethod
    def _vertices(shape: Shape) -> list[Point]:
        if isinstance(shape, Point):
            return [shape]
        if isinstance(shape, Segment):
            return [shape.a, shape.b]
        if isinstance(shape, (Polygon, Polyline)):
            return list(shape.vertices)
        if isinstance(shape, Circle):
            return [shape.center]
        return []

    @staticmethod
    def _translated(shape: Shape, dx: float, dy: float) -> Shape:
        if isinstance(shape, Point):
            return shape.translate(dx, dy)
        if isinstance(shape, Segment):
            return Segment(shape.a.translate(dx, dy), shape.b.translate(dx, dy))
        return shape.translate(dx, dy)
