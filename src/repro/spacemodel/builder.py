"""Canvas-to-DSM builder: the final step of Space Modeler's workflow.

"Once the three steps are done, the system reads the drawn indoor entities'
geometric properties and semantic tags, and computes the topological
relations between the entities and those between the semantic regions"
(paper §3).  The builder converts every drawn shape with an entity kind
into an :class:`IndoorEntity`; tagged partitions additionally produce
:class:`SemanticRegion` records mapped to their entity; tagged shapes
*without* an entity kind become explicit-shape regions (a region drawn over
multiple rooms).
"""

from __future__ import annotations

from ..dsm import (
    DigitalSpaceModel,
    IndoorEntity,
    SemanticRegion,
    validate_dsm,
)
from ..errors import DSMError
from ..geometry import Circle, Polygon
from .canvas import DrawingCanvas
from .tags import TagLibrary


def build_dsm(
    canvases: list[DrawingCanvas],
    name: str = "indoor-space",
    tags: TagLibrary | None = None,
    validate: bool = True,
    description: str = "",
) -> DigitalSpaceModel:
    """Assemble a DSM from one drawing canvas per floor.

    Topology is computed lazily by the DSM itself; with ``validate=True``
    (the default) structural validation runs before the model is returned,
    so a broken drawing fails here rather than mid-translation.
    """
    if not canvases:
        raise DSMError("build_dsm needs at least one canvas")
    floors = [c.floor for c in canvases]
    if len(set(floors)) != len(floors):
        raise DSMError(f"duplicate canvas floors: {sorted(floors)}")
    library = tags if tags is not None else TagLibrary.mall_defaults()
    model = DigitalSpaceModel(name=name, description=description)
    for canvas in sorted(canvases, key=lambda c: c.floor):
        model.add_floor(canvas.floor, canvas.name)
        _add_canvas(model, canvas, library)
    if validate:
        validate_dsm(model, require_connected=False)
    return model


def _add_canvas(
    model: DigitalSpaceModel, canvas: DrawingCanvas, library: TagLibrary
) -> None:
    region_counter = 0
    for drawn in canvas.shapes():
        if drawn.kind is not None:
            entity = IndoorEntity(
                entity_id=drawn.shape_id,
                kind=drawn.kind,
                shape=drawn.shape,
                name=drawn.name,
                properties=dict(drawn.properties),
            )
            model.add_entity(entity)
            if drawn.semantic_tag is not None and drawn.kind.is_partition:
                region_counter += 1
                tag = _resolve_tag(model, library, drawn.semantic_tag)
                model.add_region(
                    SemanticRegion(
                        region_id=f"r-{drawn.shape_id}",
                        name=drawn.name or drawn.shape_id,
                        tag=tag,
                        entity_ids=(drawn.shape_id,),
                    )
                )
        elif drawn.semantic_tag is not None:
            # Region-only drawing: an explicit area over existing entities.
            if not isinstance(drawn.shape, (Polygon, Circle)):
                raise DSMError(
                    f"region-only shape {drawn.shape_id!r} must be an area "
                    f"shape, got {type(drawn.shape).__name__}"
                )
            region_counter += 1
            tag = _resolve_tag(model, library, drawn.semantic_tag)
            model.add_region(
                SemanticRegion(
                    region_id=f"r-{drawn.shape_id}",
                    name=drawn.name or drawn.shape_id,
                    tag=tag,
                    shape=drawn.shape,
                )
            )


def _resolve_tag(model: DigitalSpaceModel, library: TagLibrary, tag_name: str):
    if tag_name in library:
        tag = library.get(tag_name)
    else:
        from ..dsm import SemanticTag

        tag = SemanticTag(tag_name)
    model.register_tag(tag)
    return tag
