"""Semantic tag library for the Space Modeler.

The drawing tool's semantic tab ("Load and attach the semantic tags to the
drawn entities", paper §3) loads tags from a reusable library; analysts can
add their own and give each tag a display style so tagged entities render
distinctly on the map view.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..dsm import SemanticTag
from ..errors import DSMError
from .shapes import ShapeStyle

#: Default styles keyed by tag category.
DEFAULT_STYLES = {
    "shop": ShapeStyle(fill="#ffd9a0", stroke="#b87700", opacity=0.85),
    "cashier": ShapeStyle(fill="#ffb3b3", stroke="#a03030", opacity=0.85),
    "hallway": ShapeStyle(fill="#eef2f5", stroke="#8899aa", opacity=0.6),
    "facility": ShapeStyle(fill="#c9e7c9", stroke="#2f7a2f", opacity=0.8),
    "food": ShapeStyle(fill="#ffe0ef", stroke="#aa3377", opacity=0.85),
    "entertainment": ShapeStyle(fill="#d7c9f2", stroke="#5533aa", opacity=0.85),
    "office": ShapeStyle(fill="#cfe0f5", stroke="#2a5599", opacity=0.85),
    "gate": ShapeStyle(fill="#f5ddc9", stroke="#995522", opacity=0.85),
    "generic": ShapeStyle(fill="#e0e0e0", stroke="#606060", opacity=0.7),
}


class TagLibrary:
    """A named collection of semantic tags with styles."""

    def __init__(self, tags: list[SemanticTag] | None = None):
        self._tags: dict[str, SemanticTag] = {}
        for tag in tags or []:
            self.add(tag)

    @classmethod
    def mall_defaults(cls) -> "TagLibrary":
        """The tag set a shopping-mall deployment starts from."""
        return cls(
            [
                SemanticTag("shop", "shop", "shop"),
                SemanticTag("cashier", "cashier", "cashier"),
                SemanticTag("hall", "hallway", "hallway"),
                SemanticTag("restroom", "facility", "facility"),
                SemanticTag("restaurant", "food", "food"),
                SemanticTag("cinema", "entertainment", "entertainment"),
                SemanticTag("service-desk", "facility", "facility"),
            ]
        )

    @classmethod
    def office_defaults(cls) -> "TagLibrary":
        """The tag set an office deployment starts from."""
        return cls(
            [
                SemanticTag("workspace", "office", "office"),
                SemanticTag("meeting-room", "office", "office"),
                SemanticTag("kitchen", "facility", "facility"),
                SemanticTag("reception", "facility", "facility"),
                SemanticTag("hall", "hallway", "hallway"),
            ]
        )

    @classmethod
    def airport_defaults(cls) -> "TagLibrary":
        """The tag set an airport deployment starts from."""
        return cls(
            [
                SemanticTag("gate", "gate", "gate"),
                SemanticTag("security", "facility", "facility"),
                SemanticTag("duty-free", "shop", "shop"),
                SemanticTag("restaurant", "food", "food"),
                SemanticTag("lounge", "facility", "facility"),
                SemanticTag("hall", "hallway", "hallway"),
            ]
        )

    def add(self, tag: SemanticTag) -> SemanticTag:
        """Register a tag (duplicates rejected)."""
        if tag.name in self._tags:
            raise DSMError(f"tag {tag.name!r} already in library")
        self._tags[tag.name] = tag
        return tag

    def get(self, name: str) -> SemanticTag:
        """Look up a tag by name."""
        try:
            return self._tags[name]
        except KeyError:
            raise DSMError(f"unknown semantic tag: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tags

    def __len__(self) -> int:
        return len(self._tags)

    @property
    def tags(self) -> list[SemanticTag]:
        """All tags sorted by name."""
        return [self._tags[k] for k in sorted(self._tags)]

    def style_for(self, tag_name: str) -> ShapeStyle:
        """The display style of a tag (category default, generic fallback)."""
        if tag_name in self._tags:
            category = self._tags[tag_name].category
            return DEFAULT_STYLES.get(category, DEFAULT_STYLES["generic"])
        return DEFAULT_STYLES["generic"]

    # ------------------------------------------------------------------
    # Persistence ("Load ... the semantic tags")
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the library to a JSON file."""
        payload = [
            {"name": t.name, "category": t.category, "style": t.style}
            for t in self.tags
        ]
        Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "TagLibrary":
        """Read a library from a JSON file."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise DSMError(f"cannot read tag library {path}: {exc}") from exc
        return cls(
            [
                SemanticTag(
                    item["name"], item.get("category", "generic"),
                    item.get("style", ""),
                )
                for item in payload
            ]
        )
