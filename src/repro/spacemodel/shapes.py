"""Drawn shapes: what lives on the Space Modeler's canvas.

A drawn shape couples footprint geometry with presentation state (style,
layer, group) and semantic intent (target entity kind, semantic tag) — the
same information the paper's drawing tool collects before the DSM is built
(Figure 2, steps 2–3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..dsm import EntityKind
from ..errors import DSMError
from ..geometry import Shape


@dataclass(frozen=True)
class ShapeStyle:
    """Presentation style applied per semantic tag or per shape."""

    fill: str = "#d0d0d0"
    stroke: str = "#404040"
    stroke_width: float = 0.15
    opacity: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.opacity <= 1.0:
            raise DSMError(f"opacity must be in [0, 1], got {self.opacity}")


@dataclass(frozen=True)
class DrawnShape:
    """One element drawn on the canvas."""

    shape_id: str
    shape: Shape
    kind: EntityKind | None = None
    name: str = ""
    layer: str = "default"
    group: str | None = None
    style: ShapeStyle = field(default_factory=ShapeStyle)
    semantic_tag: str | None = None
    properties: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.shape_id:
            raise DSMError("drawn shape requires a non-empty id")

    @property
    def floor(self) -> int:
        """The floor the geometry lies on."""
        from ..geometry import shape_floor

        return shape_floor(self.shape)

    def with_shape(self, shape: Shape) -> "DrawnShape":
        """A copy with different geometry (move/resize edits)."""
        return replace(self, shape=shape)

    def with_tag(self, tag: str | None) -> "DrawnShape":
        """A copy with a different semantic tag."""
        return replace(self, semantic_tag=tag)

    def with_style(self, style: ShapeStyle) -> "DrawnShape":
        """A copy with a different style."""
        return replace(self, style=style)

    def with_name(self, name: str) -> "DrawnShape":
        """A copy with a different display name."""
        return replace(self, name=name)

    def with_layer(self, layer: str) -> "DrawnShape":
        """A copy on a different layer."""
        return replace(self, layer=layer)

    def with_group(self, group: str | None) -> "DrawnShape":
        """A copy in a different group."""
        return replace(self, group=group)
