"""Space Modeler (substrate S3).

The headless drawing tool of paper Figure 2: a canvas with polygons,
polylines, circles, doors and stack connectors; undo/redo, snapping,
layers/groups and styles; a semantic tag library; the canvas-to-DSM
builder; and an ASCII floorplan parser as the semi-automatic import path.
"""

from .ascii_plan import AsciiFloorplanParser, ParsedFloor, RoomLegend
from .builder import build_dsm
from .canvas import DrawingCanvas, FloorplanImage
from .commands import (
    AddShape,
    Command,
    CommandStack,
    RemoveShape,
    ReplaceShape,
)
from .shapes import DrawnShape, ShapeStyle
from .tags import DEFAULT_STYLES, TagLibrary

__all__ = [
    "DEFAULT_STYLES",
    "AddShape",
    "AsciiFloorplanParser",
    "Command",
    "CommandStack",
    "DrawingCanvas",
    "DrawnShape",
    "FloorplanImage",
    "ParsedFloor",
    "RemoveShape",
    "ReplaceShape",
    "RoomLegend",
    "ShapeStyle",
    "TagLibrary",
    "build_dsm",
]
