"""ASCII floorplan parser: the semi-automatic DSM import path.

"In many applications, the only information provided is a floorplan image
without any meta-data.  In such a case, we need a semi-automatic tool to
assist creating the DSM" (paper §3).  Headless, the closest equivalent of
tracing a raster image is parsing a character grid:

* ``#``  wall (non-walkable)
* ``.``  hallway / corridor cell
* ``A-Z`` room cell (contiguous same letters form one room)
* ``D``  door cell (walkable; connects the adjacent room to the corridor)
* ``S`` / ``V`` staircase / elevator cell (walkable, stacked across floors)
* ``@``  building entrance door cell (walkable, on the outer boundary)

A legend maps room letters to ``(display name, semantic tag)`` so parsed
rooms become tagged — i.e. semantic regions — in one pass.  Walkable mass
is decomposed into maximal rectangles; adjacent rectangles are joined by
auto-generated opening "doors" so the derived topology is connected exactly
where the drawing is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dsm import EntityKind
from ..errors import DSMError
from ..geometry import Point
from .canvas import DrawingCanvas

#: Cells the parser treats as corridor-walkable.
_CORRIDOR_CHARS = {".", "D", "@", "S", "V"}
_ROOM_DOOR_CHAR = "D"
_ENTRANCE_CHAR = "@"
_STAIR_CHAR = "S"
_ELEVATOR_CHAR = "V"
_WALL_CHAR = "#"


@dataclass(frozen=True)
class RoomLegend:
    """Display name and semantic tag for one room letter."""

    name: str
    tag: str | None = None


@dataclass
class ParsedFloor:
    """The canvas plus bookkeeping produced from one ASCII grid."""

    canvas: DrawingCanvas
    room_shape_ids: dict[str, str] = field(default_factory=dict)
    door_count: int = 0
    corridor_count: int = 0


class AsciiFloorplanParser:
    """Parses character-grid floorplans into drawing canvases."""

    def __init__(self, cell_size: float = 2.0, hall_tag: str | None = "hall"):
        if cell_size <= 0:
            raise DSMError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = cell_size
        self.hall_tag = hall_tag

    def parse(
        self,
        grid: list[str],
        floor: int,
        legend: dict[str, RoomLegend] | None = None,
    ) -> ParsedFloor:
        """Parse one floor's grid into a ready-to-build canvas."""
        rows = self._normalize(grid)
        legend = legend or {}
        canvas = DrawingCanvas(floor)
        canvas.import_floorplan(
            f"ascii-floor-{floor}",
            len(rows[0]) * self.cell_size,
            len(rows) * self.cell_size,
        )
        parsed = ParsedFloor(canvas=canvas)
        self._trace_rooms(rows, canvas, legend, parsed)
        self._trace_corridors(rows, canvas, parsed)
        self._trace_doors(rows, canvas, parsed)
        self._trace_connectors(rows, canvas, floor)
        return parsed

    # ------------------------------------------------------------------
    # Grid handling
    # ------------------------------------------------------------------
    def _normalize(self, grid: list[str]) -> list[str]:
        if not grid:
            raise DSMError("empty ASCII floorplan")
        width = max(len(row) for row in grid)
        if width == 0:
            raise DSMError("ASCII floorplan has zero width")
        return [row.ljust(width, _WALL_CHAR) for row in grid]

    def _cell_rect(
        self, col0: int, row0: int, col1: int, row1: int, n_rows: int
    ) -> tuple[float, float, float, float]:
        """Metric rectangle of cells [col0..col1] x [row0..row1] (inclusive).

        Grid row 0 is the top of the drawing; y grows upward in metric
        space, so rows are flipped.
        """
        size = self.cell_size
        min_x = col0 * size
        max_x = (col1 + 1) * size
        min_y = (n_rows - row1 - 1) * size
        max_y = (n_rows - row0) * size
        return min_x, min_y, max_x, max_y

    def _cell_center(self, col: int, row: int, n_rows: int) -> tuple[float, float]:
        size = self.cell_size
        return (
            (col + 0.5) * size,
            (n_rows - row - 0.5) * size,
        )

    # ------------------------------------------------------------------
    # Rooms
    # ------------------------------------------------------------------
    def _trace_rooms(
        self,
        rows: list[str],
        canvas: DrawingCanvas,
        legend: dict[str, RoomLegend],
        parsed: ParsedFloor,
    ) -> None:
        n_rows = len(rows)
        letters = sorted(
            {
                ch
                for row in rows
                for ch in row
                if ch.isalpha()
                and ch
                not in (_ROOM_DOOR_CHAR, _STAIR_CHAR, _ELEVATOR_CHAR)
            }
        )
        for letter in letters:
            cells = [
                (col, row)
                for row, line in enumerate(rows)
                for col, ch in enumerate(line)
                if ch == letter
            ]
            min_col = min(c for c, _ in cells)
            max_col = max(c for c, _ in cells)
            min_row = min(r for _, r in cells)
            max_row = max(r for _, r in cells)
            expected = (max_col - min_col + 1) * (max_row - min_row + 1)
            if expected != len(cells):
                raise DSMError(
                    f"room {letter!r} is not rectangular "
                    f"({len(cells)} cells in a {expected}-cell bounding box)"
                )
            rect = self._cell_rect(min_col, min_row, max_col, max_row, n_rows)
            entry = legend.get(letter, RoomLegend(name=f"Room {letter}"))
            drawn = canvas.draw_rectangle(
                *rect, kind=EntityKind.ROOM, name=entry.name, layer="rooms"
            )
            if entry.tag is not None:
                canvas.assign_tag(drawn.shape_id, entry.tag)
            parsed.room_shape_ids[letter] = drawn.shape_id

    # ------------------------------------------------------------------
    # Corridors (maximal-rectangle decomposition of walkable mass)
    # ------------------------------------------------------------------
    def _trace_corridors(
        self, rows: list[str], canvas: DrawingCanvas, parsed: ParsedFloor
    ) -> None:
        n_rows = len(rows)
        n_cols = len(rows[0])
        walkable = [
            [rows[r][c] in _CORRIDOR_CHARS for c in range(n_cols)]
            for r in range(n_rows)
        ]
        used = [[False] * n_cols for _ in range(n_rows)]
        rectangles: list[tuple[int, int, int, int]] = []
        for row in range(n_rows):
            for col in range(n_cols):
                if not walkable[row][col] or used[row][col]:
                    continue
                # Extend right.
                end_col = col
                while end_col + 1 < n_cols and walkable[row][end_col + 1] and (
                    not used[row][end_col + 1]
                ):
                    end_col += 1
                # Extend down while the identical run stays walkable/unused.
                end_row = row
                while end_row + 1 < n_rows and all(
                    walkable[end_row + 1][c] and not used[end_row + 1][c]
                    for c in range(col, end_col + 1)
                ):
                    end_row += 1
                for r in range(row, end_row + 1):
                    for c in range(col, end_col + 1):
                        used[r][c] = True
                rectangles.append((col, row, end_col, end_row))
        # Draw hallway partitions.
        shape_ids: list[str] = []
        for index, (col0, row0, col1, row1) in enumerate(rectangles):
            rect = self._cell_rect(col0, row0, col1, row1, n_rows)
            drawn = canvas.draw_rectangle(
                *rect,
                kind=EntityKind.HALLWAY,
                name=f"Corridor {index + 1}",
                layer="corridors",
            )
            if self.hall_tag is not None:
                canvas.assign_tag(drawn.shape_id, self.hall_tag)
            shape_ids.append(drawn.shape_id)
        parsed.corridor_count = len(rectangles)
        # Openings between adjacent corridor rectangles.
        self._join_adjacent_rectangles(rectangles, canvas, n_rows, parsed)

    def _join_adjacent_rectangles(
        self,
        rectangles: list[tuple[int, int, int, int]],
        canvas: DrawingCanvas,
        n_rows: int,
        parsed: ParsedFloor,
    ) -> None:
        size = self.cell_size
        for i, a in enumerate(rectangles):
            for b in rectangles[i + 1 :]:
                edge = self._shared_edge(a, b)
                if edge is None:
                    continue
                axis, fixed, lo, hi = edge
                mid = (lo + hi + 1) / 2.0
                if axis == "h":  # horizontal shared edge at grid row `fixed`
                    x = mid * size
                    y = (n_rows - fixed) * size
                else:  # vertical shared edge at grid col `fixed`
                    x = fixed * size
                    y = (n_rows - mid) * size
                canvas.draw_door((x, y), name="opening", snap=False)
                parsed.door_count += 1

    @staticmethod
    def _shared_edge(
        a: tuple[int, int, int, int], b: tuple[int, int, int, int]
    ) -> tuple[str, int, int, int] | None:
        a_col0, a_row0, a_col1, a_row1 = a
        b_col0, b_row0, b_col1, b_row1 = b
        # b directly below a (shared horizontal edge).
        if b_row0 == a_row1 + 1 or a_row0 == b_row1 + 1:
            fixed = max(a_row0, b_row0)
            lo = max(a_col0, b_col0)
            hi = min(a_col1, b_col1)
            if lo <= hi:
                return ("h", fixed, lo, hi)
        # b directly right of a (shared vertical edge).
        if b_col0 == a_col1 + 1 or a_col0 == b_col1 + 1:
            fixed = max(a_col0, b_col0)
            lo = max(a_row0, b_row0)
            hi = min(a_row1, b_row1)
            if lo <= hi:
                return ("v", fixed, lo, hi)
        return None

    # ------------------------------------------------------------------
    # Doors
    # ------------------------------------------------------------------
    def _trace_doors(
        self, rows: list[str], canvas: DrawingCanvas, parsed: ParsedFloor
    ) -> None:
        n_rows = len(rows)
        n_cols = len(rows[0])
        for row, line in enumerate(rows):
            for col, ch in enumerate(line):
                if ch == _ROOM_DOOR_CHAR:
                    placed = self._place_room_door(
                        rows, canvas, col, row, n_rows, n_cols
                    )
                    if not placed:
                        raise DSMError(
                            f"door cell at ({col}, {row}) touches no room"
                        )
                    parsed.door_count += 1
                elif ch == _ENTRANCE_CHAR:
                    x, y = self._cell_center(col, row, n_rows)
                    canvas.draw_door((x, y), name="entrance", entrance=True,
                                     snap=False)
                    parsed.door_count += 1

    def _place_room_door(
        self,
        rows: list[str],
        canvas: DrawingCanvas,
        col: int,
        row: int,
        n_rows: int,
        n_cols: int,
    ) -> bool:
        """Place the door point on the edge shared with the adjacent room."""
        size = self.cell_size
        neighbors = [
            (col, row - 1, "top"),
            (col, row + 1, "bottom"),
            (col - 1, row, "left"),
            (col + 1, row, "right"),
        ]
        for n_col, n_row, side in neighbors:
            if not (0 <= n_row < n_rows and 0 <= n_col < n_cols):
                continue
            ch = rows[n_row][n_col]
            is_room = ch.isalpha() and ch not in (
                _ROOM_DOOR_CHAR,
                _STAIR_CHAR,
                _ELEVATOR_CHAR,
            )
            if not is_room:
                continue
            # The anchor sits a quarter cell inside the corridor (the D
            # cell), so corridor walking paths never run exactly on the
            # room boundary line.
            center_x, center_y = self._cell_center(col, row, n_rows)
            if side == "top":
                point = (center_x, center_y + size / 4.0)
            elif side == "bottom":
                point = (center_x, center_y - size / 4.0)
            elif side == "left":
                point = (center_x - size / 4.0, center_y)
            else:
                point = (center_x + size / 4.0, center_y)
            canvas.draw_door(point, snap=False)
            return True
        return False

    # ------------------------------------------------------------------
    # Vertical connectors
    # ------------------------------------------------------------------
    def _trace_connectors(
        self, rows: list[str], canvas: DrawingCanvas, floor: int
    ) -> None:
        n_rows = len(rows)
        for row, line in enumerate(rows):
            for col, ch in enumerate(line):
                if ch == _STAIR_CHAR:
                    x, y = self._cell_center(col, row, n_rows)
                    canvas.draw_stack_connector(
                        (x, y),
                        stack=f"stair-{col}-{row}",
                        kind=EntityKind.STAIRCASE,
                        radius=self.cell_size * 0.4,
                    )
                elif ch == _ELEVATOR_CHAR:
                    x, y = self._cell_center(col, row, n_rows)
                    canvas.draw_stack_connector(
                        (x, y),
                        stack=f"elevator-{col}-{row}",
                        kind=EntityKind.ELEVATOR,
                        radius=self.cell_size * 0.4,
                    )
