"""Undo/redo command stack for the drawing canvas.

"Multiple features are available to facilitate the drawing, such as
keyboard shortcuts, redo/undo, auto-adjust hint, edit-mode of free
transformation/resizing/moving, and layer/group control" (paper §3).  Every
canvas mutation goes through a :class:`Command`, so undo/redo is exact by
construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from ..errors import DSMError
from .shapes import DrawnShape

if TYPE_CHECKING:  # pragma: no cover
    from .canvas import DrawingCanvas


class Command(ABC):
    """One reversible canvas mutation."""

    @abstractmethod
    def apply(self, canvas: "DrawingCanvas") -> None:
        """Perform the mutation."""

    @abstractmethod
    def revert(self, canvas: "DrawingCanvas") -> None:
        """Exactly undo the mutation."""


class AddShape(Command):
    """Insert a new drawn shape."""

    def __init__(self, shape: DrawnShape):
        self.shape = shape

    def apply(self, canvas: "DrawingCanvas") -> None:
        canvas._shapes[self.shape.shape_id] = self.shape

    def revert(self, canvas: "DrawingCanvas") -> None:
        del canvas._shapes[self.shape.shape_id]


class RemoveShape(Command):
    """Delete an existing drawn shape."""

    def __init__(self, shape_id: str):
        self.shape_id = shape_id
        self._removed: DrawnShape | None = None

    def apply(self, canvas: "DrawingCanvas") -> None:
        self._removed = canvas._shapes.pop(self.shape_id)

    def revert(self, canvas: "DrawingCanvas") -> None:
        assert self._removed is not None
        canvas._shapes[self.shape_id] = self._removed


class ReplaceShape(Command):
    """Swap a shape for an edited copy (move, resize, retag, restyle...)."""

    def __init__(self, shape_id: str, replacement: DrawnShape):
        if shape_id != replacement.shape_id:
            raise DSMError("replacement must keep the shape id")
        self.shape_id = shape_id
        self.replacement = replacement
        self._original: DrawnShape | None = None

    def apply(self, canvas: "DrawingCanvas") -> None:
        self._original = canvas._shapes[self.shape_id]
        canvas._shapes[self.shape_id] = self.replacement

    def revert(self, canvas: "DrawingCanvas") -> None:
        assert self._original is not None
        canvas._shapes[self.shape_id] = self._original


class CommandStack:
    """Classic undo/redo stack with a bounded history."""

    def __init__(self, limit: int = 1000):
        if limit < 1:
            raise DSMError(f"history limit must be >= 1, got {limit}")
        self.limit = limit
        self._done: list[Command] = []
        self._undone: list[Command] = []

    def execute(self, command: Command, canvas: "DrawingCanvas") -> None:
        """Apply a command and make it undoable; clears the redo branch."""
        command.apply(canvas)
        self._done.append(command)
        if len(self._done) > self.limit:
            self._done.pop(0)
        self._undone.clear()

    def undo(self, canvas: "DrawingCanvas") -> bool:
        """Revert the most recent command; False when nothing to undo."""
        if not self._done:
            return False
        command = self._done.pop()
        command.revert(canvas)
        self._undone.append(command)
        return True

    def redo(self, canvas: "DrawingCanvas") -> bool:
        """Re-apply the most recently undone command."""
        if not self._undone:
            return False
        command = self._undone.pop()
        command.apply(canvas)
        self._done.append(command)
        return True

    @property
    def can_undo(self) -> bool:
        """True when the undo stack is non-empty."""
        return bool(self._done)

    @property
    def can_redo(self) -> bool:
        """True when the redo stack is non-empty."""
        return bool(self._undone)
