"""Complementing layer (C3) of the three-layer translation framework.

Mobility-knowledge construction (Laplace-smoothed region transition model
plus dwell statistics) and MAP inference of the missing mobility semantics
across temporal gaps — paper §3, "Complementing" in Figure 3.
"""

from .complementor import (
    ComplementorConfig,
    ComplementResult,
    MobilitySemanticsComplementor,
)
from .inference import (
    NOMINAL_WALK_SPEED,
    InferenceConfig,
    InferredPath,
    SemanticsInference,
)
from .knowledge import (
    ExactSum,
    MobilityKnowledge,
    PartialKnowledge,
    RegionStats,
    merge_partials,
)

__all__ = [
    "NOMINAL_WALK_SPEED",
    "ComplementResult",
    "ComplementorConfig",
    "ExactSum",
    "InferenceConfig",
    "InferredPath",
    "MobilityKnowledge",
    "MobilitySemanticsComplementor",
    "PartialKnowledge",
    "RegionStats",
    "SemanticsInference",
    "merge_partials",
]
