"""Complementing layer (C3) of the three-layer translation framework.

Mobility-knowledge construction (Laplace-smoothed region transition model
plus dwell statistics) and MAP inference of the missing mobility semantics
across temporal gaps — paper §3, "Complementing" in Figure 3.

Invariant: the compiled inference path (integer-indexed transition tables
from :class:`CompiledTransitionModel`, cache keyed by the knowledge's
mutation generation) is bit-for-bit equivalent to the object-model
reference path — identical floats, identical tie-breaks, identical
inferred semantics.
"""

from .compiled import CompiledTransitionModel, ensure_compiled
from .complementor import (
    ComplementorConfig,
    ComplementResult,
    MobilitySemanticsComplementor,
)
from .inference import (
    NOMINAL_WALK_SPEED,
    InferenceConfig,
    InferredPath,
    SemanticsInference,
)
from .knowledge import (
    ExactSum,
    MobilityKnowledge,
    PartialKnowledge,
    RegionStats,
    merge_partials,
)

__all__ = [
    "NOMINAL_WALK_SPEED",
    "CompiledTransitionModel",
    "ComplementResult",
    "ComplementorConfig",
    "ExactSum",
    "InferenceConfig",
    "InferredPath",
    "MobilityKnowledge",
    "MobilitySemanticsComplementor",
    "PartialKnowledge",
    "RegionStats",
    "SemanticsInference",
    "ensure_compiled",
    "merge_partials",
]
