"""Mobility knowledge: aggregated transition statistics between regions.

"A knowledge construction aggregates the mobility semantics already
annotated to build the prior mobility knowledge that captures the
transition probabilities between semantic regions" (paper §3).  The
knowledge is a Laplace-smoothed first-order Markov model over the DSM's
region vocabulary, plus per-region dwell-duration and event statistics the
inference step uses to allocate time and pick event annotations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ...errors import InferenceError
from ..semantics import EVENT_STAY, MobilitySemanticsSequence


@dataclass
class RegionStats:
    """Aggregates about one semantic region."""

    visits: int = 0
    total_dwell: float = 0.0
    stay_count: int = 0

    @property
    def mean_dwell(self) -> float:
        """Mean seconds spent per visit (0 when unvisited)."""
        if self.visits == 0:
            return 0.0
        return self.total_dwell / self.visits

    @property
    def stay_fraction(self) -> float:
        """Fraction of visits annotated as stays."""
        if self.visits == 0:
            return 0.0
        return self.stay_count / self.visits


@dataclass
class MobilityKnowledge:
    """The prior the complementing layer's MAP inference consults."""

    regions: list[str]
    smoothing: float = 1.0
    _transitions: dict[str, dict[str, int]] = field(default_factory=dict)
    _outgoing_totals: dict[str, int] = field(default_factory=dict)
    _stats: dict[str, RegionStats] = field(default_factory=dict)
    sequences_seen: int = 0

    def __post_init__(self) -> None:
        if self.smoothing <= 0:
            raise InferenceError(f"smoothing must be positive, got {self.smoothing}")
        if not self.regions:
            raise InferenceError("mobility knowledge needs a region vocabulary")
        self.regions = sorted(set(self.regions))
        self._region_set = set(self.regions)
        for region in self.regions:
            self._stats.setdefault(region, RegionStats())

    @classmethod
    def from_sequences(
        cls,
        sequences: list[MobilitySemanticsSequence],
        regions: list[str],
        smoothing: float = 1.0,
        max_transition_gap: float = 600.0,
    ) -> "MobilityKnowledge":
        """Build knowledge by aggregating annotated sequences.

        Transitions across gaps longer than ``max_transition_gap`` are not
        counted — the device plausibly visited unobserved regions in
        between, so the pair is not evidence of a direct transition.
        """
        knowledge = cls(regions=regions, smoothing=smoothing)
        for sequence in sequences:
            knowledge.observe(sequence, max_transition_gap)
        return knowledge

    def observe(
        self,
        sequence: MobilitySemanticsSequence,
        max_transition_gap: float = 600.0,
    ) -> None:
        """Fold one annotated sequence into the aggregates."""
        self.sequences_seen += 1
        semantics = [s for s in sequence if s.region_id in self._region_set]
        for triplet in semantics:
            stats = self._stats[triplet.region_id]
            stats.visits += 1
            stats.total_dwell += triplet.duration
            if triplet.event == EVENT_STAY:
                stats.stay_count += 1
        for current, following in zip(semantics, semantics[1:]):
            gap = following.time_range.start - current.time_range.end
            if gap > max_transition_gap:
                continue
            if current.region_id == following.region_id:
                continue
            outgoing = self._transitions.setdefault(current.region_id, {})
            outgoing[following.region_id] = outgoing.get(following.region_id, 0) + 1
            self._outgoing_totals[current.region_id] = (
                self._outgoing_totals.get(current.region_id, 0) + 1
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def transition_probability(self, origin: str, destination: str) -> float:
        """Laplace-smoothed P(destination | origin) over the vocabulary."""
        self._check_region(origin)
        self._check_region(destination)
        if origin == destination:
            return 0.0  # self-transitions were merged away during annotation
        count = self._transitions.get(origin, {}).get(destination, 0)
        total = self._outgoing_totals.get(origin, 0)
        vocabulary = len(self.regions) - 1  # all possible destinations
        return (count + self.smoothing) / (total + self.smoothing * vocabulary)

    def log_transition(self, origin: str, destination: str) -> float:
        """log P(destination | origin); -inf never occurs thanks to smoothing."""
        return math.log(self.transition_probability(origin, destination))

    def transition_count(self, origin: str, destination: str) -> int:
        """Raw observed transition count."""
        return self._transitions.get(origin, {}).get(destination, 0)

    def region_stats(self, region_id: str) -> RegionStats:
        """Dwell/event aggregates for one region."""
        self._check_region(region_id)
        return self._stats[region_id]

    def mean_dwell(self, region_id: str, default: float = 60.0) -> float:
        """Mean visit duration, with a default for unvisited regions."""
        stats = self.region_stats(region_id)
        return stats.mean_dwell if stats.visits > 0 else default

    def most_likely_next(self, origin: str, top_k: int = 3) -> list[tuple[str, float]]:
        """The ``top_k`` most probable successor regions of ``origin``."""
        self._check_region(origin)
        ranked = sorted(
            (
                (destination, self.transition_probability(origin, destination))
                for destination in self.regions
                if destination != origin
            ),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:top_k]

    def _check_region(self, region_id: str) -> None:
        if region_id not in self._region_set:
            raise InferenceError(
                f"region {region_id!r} not in the knowledge vocabulary"
            )

    def __str__(self) -> str:
        observed = sum(self._outgoing_totals.values())
        return (
            f"MobilityKnowledge({len(self.regions)} regions, "
            f"{observed} observed transitions, "
            f"{self.sequences_seen} sequences)"
        )
