"""Mobility knowledge: aggregated transition statistics between regions.

"A knowledge construction aggregates the mobility semantics already
annotated to build the prior mobility knowledge that captures the
transition probabilities between semantic regions" (paper §3).  The
knowledge is a Laplace-smoothed first-order Markov model over the DSM's
region vocabulary, plus per-region dwell-duration and event statistics the
inference step uses to allocate time and pick event annotations.

The aggregation side is factored into :class:`PartialKnowledge`, a purely
additive shard of raw counts with a commutative, associative
:meth:`~PartialKnowledge.merge`.  Independent workers can each observe a
slice of the batch and the shards merge in O(#regions + #edges) — the
basis of the engine's sharded knowledge build — while
:class:`MobilityKnowledge` keeps the smoothed-query layer
(:meth:`~MobilityKnowledge.transition_probability` and friends) on top of
the same aggregates.  Dwell seconds accumulate through :class:`ExactSum`,
so merged totals are bit-for-bit identical no matter how the batch was
sharded.

The algebra is a group, not just a monoid: every additive operation has
an exact inverse (:meth:`ExactSum.subtract`,
:meth:`PartialKnowledge.subtract`, :meth:`MobilityKnowledge.unfold`), so
a shard folded earlier can later be retired and the result equals — bit
for bit — the state that never folded it.  That inverse is what the
epoch-based knowledge lifecycle in :mod:`repro.knowledge`
(:class:`~repro.knowledge.KnowledgeStore` plus its pluggable retention
policies) is built on: sliding-window retention subtracts expired epochs'
shards instead of rebuilding, and exponential decay uses
:meth:`MobilityKnowledge.scale` to discount old mobility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from ...errors import InferenceError
from ..semantics import EVENT_STAY, MobilitySemanticsSequence

#: Transitions across gaps longer than this are not counted — the device
#: plausibly visited unobserved regions in between, so the pair is not
#: evidence of a direct transition.
DEFAULT_TRANSITION_GAP = 600.0


class ExactSum:
    """Exact, order-independent float accumulator (Shewchuk expansions).

    Keeps the running total as a list of non-overlapping partials whose
    mathematical sum is *exactly* the sum of everything added — the same
    representation :func:`math.fsum` uses internally.  :attr:`value` is
    therefore the correctly-rounded true sum regardless of how the
    additions were grouped or ordered, which is what makes knowledge-shard
    merges associative bit for bit (plain float ``+=`` is not).
    """

    __slots__ = ("_partials",)

    def __init__(self, values: Iterable[float] = ()):
        self._partials: list[float] = []
        for value in values:
            self.add(value)

    def add(self, value: float) -> None:
        """Add one float exactly."""
        partials = self._partials
        x = float(value)
        count = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            high = x + y
            low = y - (high - x)
            if low:
                partials[count] = low
                count += 1
            x = high
        partials[count:] = [x]

    def merge(self, other: "ExactSum") -> None:
        """Fold another accumulator in; exact, so grouping never matters."""
        for partial in other._partials:
            self.add(partial)

    def subtract(self, other: "ExactSum") -> None:
        """The exact inverse of :meth:`merge`.

        Adds the negation of every one of ``other``'s partials; since each
        addition is exact, the mathematical total returns to precisely the
        pre-merge sum, so ``a.merge(b); a.subtract(b)`` leaves ``a`` equal
        (and :attr:`value` bit-for-bit identical) to never having merged.
        """
        for partial in other._partials:
            self.add(-partial)

    def scale(self, factor: float) -> None:
        """Multiply the total by ``factor`` (correctly-rounded, in place).

        Scaling is *not* part of the exact group — it rounds once, to the
        nearest float of ``value * factor`` — which is all the exponential
        decay retention policy needs.
        """
        scaled = self.value * float(factor)
        self._partials = [scaled] if scaled else []

    def copy(self) -> "ExactSum":
        clone = ExactSum()
        clone._partials = list(self._partials)
        return clone

    def expansion(self) -> list[float]:
        """The non-overlapping partials, in internal order.

        This is the accumulator's *exact* state, not just its rounded
        total: rebuilding from it with :meth:`from_expansion` restores
        the accumulator verbatim, so every subsequent :meth:`add` lands
        on bit-for-bit the same partials it would have without the
        round-trip.  This is what the durable wire format
        (:mod:`repro.durability`) persists.
        """
        return list(self._partials)

    @classmethod
    def from_expansion(cls, partials: Iterable[float]) -> "ExactSum":
        """Rebuild from :meth:`expansion` output.

        The partials are adopted verbatim — *not* re-added through
        :meth:`add` — because a re-accumulation could legally settle on
        a different (equal-sum) expansion, and replayed folds must walk
        exactly the same internal states as the uninterrupted run.
        """
        total = cls()
        total._partials = [float(partial) for partial in partials]
        return total

    @property
    def value(self) -> float:
        """The correctly-rounded total."""
        return math.fsum(self._partials)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExactSum):
            return NotImplemented
        return self.value == other.value

    def __repr__(self) -> str:
        return f"ExactSum({self.value!r})"


class RegionStats:
    """Aggregates about one semantic region.

    Dwell seconds go through an :class:`ExactSum`, so two stats built from
    the same visits compare equal however the visits were sharded.
    """

    __slots__ = ("visits", "stay_count", "_dwell")

    def __init__(
        self, visits: int = 0, total_dwell: float = 0.0, stay_count: int = 0
    ):
        self.visits = visits
        self.stay_count = stay_count
        self._dwell = ExactSum()
        if total_dwell:
            self._dwell.add(total_dwell)

    @property
    def total_dwell(self) -> float:
        """Total seconds spent across all visits."""
        return self._dwell.value

    @property
    def mean_dwell(self) -> float:
        """Mean seconds spent per visit (0 when unvisited)."""
        if self.visits == 0:
            return 0.0
        return self.total_dwell / self.visits

    @property
    def stay_fraction(self) -> float:
        """Fraction of visits annotated as stays."""
        if self.visits == 0:
            return 0.0
        return self.stay_count / self.visits

    def add_visit(self, duration: float, stay: bool) -> None:
        """Record one visit."""
        self.visits += 1
        self._dwell.add(duration)
        if stay:
            self.stay_count += 1

    def add(self, other: "RegionStats") -> None:
        """Fold another region's aggregates in (additive, exact)."""
        self.visits += other.visits
        self.stay_count += other.stay_count
        self._dwell.merge(other._dwell)

    def subtract(self, other: "RegionStats") -> None:
        """The exact inverse of :meth:`add`.

        Only valid for stats previously folded in: going negative on the
        integer counters raises :class:`InferenceError` (the float dwell
        total cannot be validated the same way, but is exact whenever the
        counters are).
        """
        if other.visits > self.visits or other.stay_count > self.stay_count:
            raise InferenceError(
                "cannot subtract region stats that were never added "
                f"(visits {self.visits} - {other.visits}, stays "
                f"{self.stay_count} - {other.stay_count})"
            )
        self.visits -= other.visits
        self.stay_count -= other.stay_count
        self._dwell.subtract(other._dwell)

    def scale(self, factor: float) -> None:
        """Discount the aggregates by ``factor`` (decay retention).

        The integer counters become float weights; every derived quantity
        (:attr:`mean_dwell`, :attr:`stay_fraction`) is a ratio of
        uniformly scaled terms, so it is unchanged by the scaling itself
        and only shifts as newer, unscaled visits fold in on top.
        """
        self.visits = self.visits * factor
        self.stay_count = self.stay_count * factor
        self._dwell.scale(factor)

    def copy(self) -> "RegionStats":
        clone = RegionStats(visits=self.visits, stay_count=self.stay_count)
        clone._dwell = self._dwell.copy()
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegionStats):
            return NotImplemented
        return (
            self.visits == other.visits
            and self.stay_count == other.stay_count
            and self.total_dwell == other.total_dwell
        )

    def __repr__(self) -> str:
        return (
            f"RegionStats(visits={self.visits}, "
            f"total_dwell={self.total_dwell!r}, stay_count={self.stay_count})"
        )


def _observe_sequence(
    sequence: MobilitySemanticsSequence,
    region_set: set[str],
    stats: dict[str, RegionStats],
    transitions: dict[str, dict[str, int]],
    outgoing_totals: dict[str, int],
    max_transition_gap: float,
) -> None:
    """Accumulate one annotated sequence into the raw aggregates.

    Shared by :meth:`PartialKnowledge.observe` and
    :meth:`MobilityKnowledge.observe`, so the sharded and rebuild paths
    count by exactly the same rules.
    """
    semantics = [s for s in sequence if s.region_id in region_set]
    for triplet in semantics:
        stats[triplet.region_id].add_visit(
            triplet.duration, triplet.event == EVENT_STAY
        )
    for current, following in zip(semantics, semantics[1:]):
        gap = following.time_range.start - current.time_range.end
        if gap > max_transition_gap:
            continue
        if current.region_id == following.region_id:
            continue
        outgoing = transitions.setdefault(current.region_id, {})
        outgoing[following.region_id] = outgoing.get(following.region_id, 0) + 1
        outgoing_totals[current.region_id] = (
            outgoing_totals.get(current.region_id, 0) + 1
        )


def _add_counts(
    source: "PartialKnowledge",
    transitions: dict[str, dict[str, int]],
    outgoing_totals: dict[str, int],
    stats: dict[str, RegionStats],
) -> int:
    """Element-wise add a shard's raw counts into target aggregates.

    Shared by :meth:`PartialKnowledge.add` and
    :meth:`MobilityKnowledge.fold`, so shard-to-shard and
    shard-to-knowledge merges apply identical rules.  Returns the shard's
    ``sequences_seen`` for the caller to add.
    """
    for origin, outgoing in source.transitions.items():
        destinations = transitions.setdefault(origin, {})
        for destination, count in outgoing.items():
            destinations[destination] = destinations.get(destination, 0) + count
    for origin, total in source.outgoing_totals.items():
        outgoing_totals[origin] = outgoing_totals.get(origin, 0) + total
    for region, shard_stats in source.stats.items():
        stats[region].add(shard_stats)
    return source.sequences_seen


def _subtract_counts(
    source: "PartialKnowledge",
    transitions: dict[str, dict[str, int]],
    outgoing_totals: dict[str, int],
    stats: dict[str, RegionStats],
) -> int:
    """Element-wise remove a shard's raw counts from target aggregates.

    The exact inverse of :func:`_add_counts`: entries that reach zero are
    pruned, so the post-subtraction aggregates are *structurally*
    identical — not merely numerically — to aggregates that never folded
    the shard (dataclass equality compares the dicts).  Counts are
    validated up front and the target is untouched on failure, so a
    shard that was never folded cannot half-corrupt the aggregates.
    """
    for origin, outgoing in source.transitions.items():
        destinations = transitions.get(origin, {})
        for destination, count in outgoing.items():
            if destinations.get(destination, 0) < count:
                raise InferenceError(
                    "cannot subtract a knowledge shard that was never "
                    f"folded (transition {origin!r} -> {destination!r}: "
                    f"{destinations.get(destination, 0)} - {count})"
                )
    for origin, total in source.outgoing_totals.items():
        if outgoing_totals.get(origin, 0) < total:
            raise InferenceError(
                "cannot subtract a knowledge shard that was never folded "
                f"(outgoing total of {origin!r}: "
                f"{outgoing_totals.get(origin, 0)} - {total})"
            )
    for region, shard_stats in source.stats.items():
        target = stats.get(region)
        if target is not None and (
            shard_stats.visits > target.visits
            or shard_stats.stay_count > target.stay_count
        ):
            raise InferenceError(
                "cannot subtract a knowledge shard that was never folded "
                f"(region stats of {region!r})"
            )
    for origin, outgoing in source.transitions.items():
        destinations = transitions[origin]
        for destination, count in outgoing.items():
            remaining = destinations[destination] - count
            if remaining:
                destinations[destination] = remaining
            else:
                del destinations[destination]
        if not destinations:
            del transitions[origin]
    for origin, total in source.outgoing_totals.items():
        remaining = outgoing_totals[origin] - total
        if remaining:
            outgoing_totals[origin] = remaining
        else:
            del outgoing_totals[origin]
    for region, shard_stats in source.stats.items():
        if region in stats:
            stats[region].subtract(shard_stats)
    return source.sequences_seen


@dataclass
class PartialKnowledge:
    """One shard's additive slice of the mobility-knowledge aggregates.

    Raw counts only — no smoothing, no queries — so every field is
    additive: merging two shards is element-wise addition over transition
    counts, outgoing totals, per-region :class:`RegionStats` and
    ``sequences_seen``.  That makes :meth:`merge` commutative and
    associative, and :meth:`MobilityKnowledge.from_partials` over any
    sharding of a batch identical to
    :meth:`MobilityKnowledge.from_sequences` over the concatenation.

    The shard is a plain picklable dataclass, so the engine's process
    backend can build one per chunk in a worker and ship it back to the
    caller for the O(#regions + #edges) barrier merge.
    """

    regions: list[str]
    transitions: dict[str, dict[str, int]] = field(default_factory=dict)
    outgoing_totals: dict[str, int] = field(default_factory=dict)
    stats: dict[str, RegionStats] = field(default_factory=dict)
    sequences_seen: int = 0

    def __post_init__(self) -> None:
        if not self.regions:
            raise InferenceError("partial knowledge needs a region vocabulary")
        self.regions = sorted(set(self.regions))
        self._region_set = set(self.regions)
        for region in self.regions:
            self.stats.setdefault(region, RegionStats())

    @classmethod
    def from_sequences(
        cls,
        sequences: Iterable[MobilitySemanticsSequence],
        regions: list[str],
        max_transition_gap: float = DEFAULT_TRANSITION_GAP,
    ) -> "PartialKnowledge":
        """Build one shard by observing a slice of the batch."""
        partial = cls(regions=list(regions))
        for sequence in sequences:
            partial.observe(sequence, max_transition_gap)
        return partial

    def observe(
        self,
        sequence: MobilitySemanticsSequence,
        max_transition_gap: float = DEFAULT_TRANSITION_GAP,
    ) -> None:
        """Fold one annotated sequence into the shard."""
        self.sequences_seen += 1
        _observe_sequence(
            sequence,
            self._region_set,
            self.stats,
            self.transitions,
            self.outgoing_totals,
            max_transition_gap,
        )

    def merge(self, *others: "PartialKnowledge") -> "PartialKnowledge":
        """A new shard equal to this one plus ``others`` (non-mutating)."""
        merged = PartialKnowledge(regions=list(self.regions))
        for shard in (self, *others):
            merged.add(shard)
        return merged

    def add(self, other: "PartialKnowledge") -> None:
        """Fold another shard's counts into this one (in place)."""
        if other.regions != self.regions:
            raise InferenceError(
                "cannot merge partial knowledge over different region "
                f"vocabularies ({len(self.regions)} vs {len(other.regions)} "
                "regions)"
            )
        self.sequences_seen += _add_counts(
            other, self.transitions, self.outgoing_totals, self.stats
        )

    def subtract(self, other: "PartialKnowledge") -> None:
        """The exact inverse of :meth:`add` (in place).

        ``a.add(b); a.subtract(b)`` leaves ``a`` equal — field for field,
        dwell totals bit for bit — to never having added ``b``.  Only
        shards previously folded in can be subtracted; anything that
        would drive a count negative raises :class:`InferenceError`
        without touching this shard.
        """
        if other.regions != self.regions:
            raise InferenceError(
                "cannot subtract partial knowledge over different region "
                f"vocabularies ({len(self.regions)} vs {len(other.regions)} "
                "regions)"
            )
        if other.sequences_seen > self.sequences_seen:
            raise InferenceError(
                "cannot subtract a knowledge shard that was never folded "
                f"(sequences {self.sequences_seen} - {other.sequences_seen})"
            )
        self.sequences_seen -= _subtract_counts(
            other, self.transitions, self.outgoing_totals, self.stats
        )

    def __str__(self) -> str:
        observed = sum(self.outgoing_totals.values())
        return (
            f"PartialKnowledge({len(self.regions)} regions, "
            f"{observed} observed transitions, "
            f"{self.sequences_seen} sequences)"
        )


def merge_partials(*partials: PartialKnowledge) -> PartialKnowledge:
    """Merge any number of shards into one (at least one required)."""
    if not partials:
        raise InferenceError("merge_partials needs at least one shard")
    return partials[0].merge(*partials[1:])


@dataclass
class MobilityKnowledge:
    """The prior the complementing layer's MAP inference consults."""

    regions: list[str]
    smoothing: float = 1.0
    _transitions: dict[str, dict[str, int]] = field(default_factory=dict)
    _outgoing_totals: dict[str, int] = field(default_factory=dict)
    _stats: dict[str, RegionStats] = field(default_factory=dict)
    sequences_seen: int = 0

    def __post_init__(self) -> None:
        if self.smoothing <= 0:
            raise InferenceError(f"smoothing must be positive, got {self.smoothing}")
        if not self.regions:
            raise InferenceError("mobility knowledge needs a region vocabulary")
        self.regions = sorted(set(self.regions))
        self._region_set = set(self.regions)
        for region in self.regions:
            self._stats.setdefault(region, RegionStats())
        # Monotonic mutation counter plus the compiled-model cache it
        # invalidates.  Deliberately *not* dataclass fields: two
        # knowledge objects with the same counts are equal regardless of
        # how many mutations produced them, and the codec/pickle wire
        # formats must not carry a derived cache.
        self._generation = 0
        self._compiled = None

    # ------------------------------------------------------------------
    # Generations and the compiled-model cache
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotonic mutation counter.

        Bumped by every mutating operation (:meth:`observe`,
        :meth:`fold`, :meth:`unfold`, :meth:`scale` — and everything
        built on them, e.g. :meth:`repro.knowledge.KnowledgeStore.roll`
        retirals and decay rescales).  Anything derived from the
        aggregates — most importantly the
        :class:`~repro.core.complementing.compiled.CompiledTransitionModel`
        — records the generation it was computed at and is stale the
        moment the counters differ, so no mutation path can leave a
        cached answer live.
        """
        return self._generation

    def _mutated(self) -> None:
        """Record one mutation; invalidates every generation-keyed cache."""
        self._generation += 1

    def attach_compiled(self, compiled) -> None:
        """Attach a compiled transition model for the current generation.

        A plain attribute store (atomic under the GIL), so concurrent
        phase-two workers sharing this object may race: the last attach
        wins, and since both models were compiled from the same
        generation they are interchangeable.
        """
        self._compiled = compiled

    def compiled_model(self):
        """The attached compiled model, or ``None`` when absent/stale."""
        compiled = self._compiled
        if compiled is not None and compiled.generation == self._generation:
            return compiled
        return None

    def __getstate__(self) -> dict:
        """Pickle without the compiled cache (it re-derives on demand).

        The generation counter *does* travel: a process-backend worker
        that caches the unpickled knowledge keys its compiled model off
        the same counter the coordinator bumped.
        """
        state = dict(self.__dict__)
        state["_compiled"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @classmethod
    def from_sequences(
        cls,
        sequences: list[MobilitySemanticsSequence],
        regions: list[str],
        smoothing: float = 1.0,
        max_transition_gap: float = DEFAULT_TRANSITION_GAP,
    ) -> "MobilityKnowledge":
        """Build knowledge by aggregating annotated sequences.

        Transitions across gaps longer than ``max_transition_gap`` are not
        counted — the device plausibly visited unobserved regions in
        between, so the pair is not evidence of a direct transition.
        """
        knowledge = cls(regions=regions, smoothing=smoothing)
        for sequence in sequences:
            knowledge.observe(sequence, max_transition_gap)
        return knowledge

    @classmethod
    def from_partials(
        cls,
        partials: Iterable[PartialKnowledge],
        regions: list[str] | None = None,
        smoothing: float = 1.0,
    ) -> "MobilityKnowledge":
        """Merge independently built shards into queryable knowledge.

        Equal to :meth:`from_sequences` over the concatenated shard inputs,
        but O(#regions + #edges) per shard instead of re-observing every
        sequence — the engine's sharded barrier.  ``regions`` defaults to
        the first shard's vocabulary; pass it explicitly when ``partials``
        may be empty.
        """
        partials = list(partials)
        if regions is None:
            if not partials:
                raise InferenceError(
                    "from_partials needs at least one shard or an explicit "
                    "region vocabulary"
                )
            regions = partials[0].regions
        knowledge = cls(regions=list(regions), smoothing=smoothing)
        for partial in partials:
            knowledge.fold(partial)
        return knowledge

    def observe(
        self,
        sequence: MobilitySemanticsSequence,
        max_transition_gap: float = DEFAULT_TRANSITION_GAP,
    ) -> None:
        """Fold one annotated sequence into the aggregates."""
        self._mutated()
        self.sequences_seen += 1
        _observe_sequence(
            sequence,
            self._region_set,
            self._stats,
            self._transitions,
            self._outgoing_totals,
            max_transition_gap,
        )

    def fold(self, partial: PartialKnowledge) -> None:
        """Fold one shard's counts into this knowledge, in place.

        This is the incremental path: a long-running engine builds a
        :class:`PartialKnowledge` per stream window and folds it into the
        existing knowledge without rebuilding from scratch — the barrier
        of :meth:`repro.engine.Engine.translate_increment`, which the
        live streaming service (:mod:`repro.live`) drives once per
        ingestion window per venue.  Folding is exact, so a finite
        stream's windows fold to the same knowledge, bit for bit, as a
        one-shot batch build over the concatenation.
        """
        if partial.regions != self.regions:
            raise InferenceError(
                "cannot fold partial knowledge over a different region "
                f"vocabulary ({len(self.regions)} vs {len(partial.regions)} "
                "regions)"
            )
        self._mutated()
        self.sequences_seen += _add_counts(
            partial, self._transitions, self._outgoing_totals, self._stats
        )

    def unfold(self, partial: PartialKnowledge) -> None:
        """The exact inverse of :meth:`fold`, in place.

        This is how the epoch-based knowledge lifecycle
        (:class:`repro.knowledge.KnowledgeStore` under sliding-window
        retention) retires stale mobility: the expired epoch's shard is
        subtracted, and the resulting knowledge is bit-for-bit identical
        to knowledge that never folded that epoch — counts, dwell totals
        and every smoothed query.  Subtracting a shard that was not
        previously folded raises :class:`InferenceError` and leaves the
        knowledge untouched.
        """
        if partial.regions != self.regions:
            raise InferenceError(
                "cannot unfold partial knowledge over a different region "
                f"vocabulary ({len(self.regions)} vs {len(partial.regions)} "
                "regions)"
            )
        if partial.sequences_seen > self.sequences_seen:
            raise InferenceError(
                "cannot unfold a knowledge shard that was never folded "
                f"(sequences {self.sequences_seen} - "
                f"{partial.sequences_seen})"
            )
        self._mutated()
        self.sequences_seen -= _subtract_counts(
            partial, self._transitions, self._outgoing_totals, self._stats
        )

    def scale(self, factor: float, prune_below: float = 0.0) -> None:
        """Discount every aggregate by ``factor`` (exponential decay).

        The decay retention policy calls this once per epoch roll with
        ``factor = 0.5 ** (1 / half_life)``, so an epoch's evidence halves
        after ``half_life`` rolls.  Counts become float weights; the
        smoothed queries are ratios and keep working unchanged.  Entries
        whose decayed weight drops below ``prune_below`` are dropped so a
        long-running venue's memory stays bounded by its *recent* support
        rather than by everything it ever saw.
        """
        if factor < 0.0:
            raise InferenceError(
                f"scale factor must be non-negative, got {factor}"
            )
        self._mutated()
        for origin in list(self._transitions):
            destinations = self._transitions[origin]
            for destination in list(destinations):
                scaled = destinations[destination] * factor
                if scaled <= prune_below:
                    del destinations[destination]
                else:
                    destinations[destination] = scaled
            if not destinations:
                del self._transitions[origin]
        for origin in list(self._outgoing_totals):
            scaled = self._outgoing_totals[origin] * factor
            if scaled <= prune_below:
                del self._outgoing_totals[origin]
            else:
                self._outgoing_totals[origin] = scaled
        for stats in self._stats.values():
            stats.scale(factor)
        self.sequences_seen = self.sequences_seen * factor

    def to_partial(self) -> PartialKnowledge:
        """Export the raw counts as an independent shard (deep copy)."""
        partial = PartialKnowledge(
            regions=list(self.regions),
            transitions={
                origin: dict(outgoing)
                for origin, outgoing in self._transitions.items()
            },
            outgoing_totals=dict(self._outgoing_totals),
            stats={
                region: stats.copy() for region, stats in self._stats.items()
            },
            sequences_seen=self.sequences_seen,
        )
        return partial

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def transition_probability(self, origin: str, destination: str) -> float:
        """Laplace-smoothed P(destination | origin) over the vocabulary.

        Served from the attached compiled table when one is current —
        the table entries are computed by this very expression, so both
        routes return bit-for-bit the same float.  The live computation
        avoids allocating a throwaway row dict for unseen origins by
        fetching the row once and branching on ``None``.
        """
        self._check_region(origin)
        self._check_region(destination)
        if origin == destination:
            return 0.0  # self-transitions were merged away during annotation
        compiled = self.compiled_model()
        if compiled is not None:
            return compiled.probability(origin, destination)
        outgoing = self._transitions.get(origin)
        count = outgoing.get(destination, 0) if outgoing is not None else 0
        total = self._outgoing_totals.get(origin, 0)
        vocabulary = len(self.regions) - 1  # all possible destinations
        return (count + self.smoothing) / (total + self.smoothing * vocabulary)

    def log_transition(self, origin: str, destination: str) -> float:
        """log P(destination | origin); -inf never occurs thanks to smoothing."""
        compiled = self.compiled_model()
        if compiled is not None and origin != destination:
            self._check_region(origin)
            self._check_region(destination)
            return compiled.log_probability(origin, destination)
        return math.log(self.transition_probability(origin, destination))

    def transition_count(self, origin: str, destination: str) -> int:
        """Raw observed transition count."""
        return self._transitions.get(origin, {}).get(destination, 0)

    def region_stats(self, region_id: str) -> RegionStats:
        """Dwell/event aggregates for one region."""
        self._check_region(region_id)
        return self._stats[region_id]

    def mean_dwell(self, region_id: str, default: float = 60.0) -> float:
        """Mean visit duration, with a default for unvisited regions."""
        stats = self.region_stats(region_id)
        return stats.mean_dwell if stats.visits > 0 else default

    def most_likely_next(self, origin: str, top_k: int = 3) -> list[tuple[str, float]]:
        """The ``top_k`` most probable successor regions of ``origin``.

        One smoothed distribution, not ``len(regions)`` independent
        recomputations: the denominator is hoisted (or the whole row is
        read off the attached compiled table), and since both evaluate
        exactly the per-call expression, the ranking — probabilities
        included — is bit-for-bit what per-destination
        :meth:`transition_probability` calls would produce.
        """
        self._check_region(origin)
        compiled = self.compiled_model()
        if compiled is not None:
            row = compiled.probability_row(origin)
            pairs = (
                (destination, row[position])
                for position, destination in enumerate(self.regions)
                if destination != origin
            )
        else:
            outgoing = self._transitions.get(origin)
            if outgoing is None:
                outgoing = {}
            denominator = self._outgoing_totals.get(origin, 0) + (
                self.smoothing * (len(self.regions) - 1)
            )
            pairs = (
                (
                    destination,
                    (outgoing.get(destination, 0) + self.smoothing)
                    / denominator,
                )
                for destination in self.regions
                if destination != origin
            )
        ranked = sorted(pairs, key=lambda pair: (-pair[1], pair[0]))
        return ranked[:top_k]

    def _check_region(self, region_id: str) -> None:
        if region_id not in self._region_set:
            raise InferenceError(
                f"region {region_id!r} not in the knowledge vocabulary"
            )

    def __str__(self) -> str:
        observed = sum(self._outgoing_totals.values())
        return (
            f"MobilityKnowledge({len(self.regions)} regions, "
            f"{observed} observed transitions, "
            f"{self.sequences_seen} sequences)"
        )
