"""Compiled transition model: integer-indexed tables for the MAP inference.

The object-model inference (:mod:`repro.core.complementing.inference`)
walks the region graph through networkx adjacency views and recomputes
the smoothed ``log P(dest | origin)`` ratio on every dynamic-programming
step — the committed phase-two profile
(``benchmarks/profiles/phase_two_objects.txt``) shows those two costs
dominating the complementing stage.  :class:`CompiledTransitionModel`
pays them once per knowledge *generation* instead of once per DP step:

- an integer-indexed region vocabulary (``index`` / ``regions``);
- dense per-origin rows of smoothed transition probabilities and their
  logs, computed by the **same floating-point expression** as
  :meth:`MobilityKnowledge.transition_probability` followed by
  :func:`math.log` — same floats in, bit-for-bit the same floats out;
- a frozen integer adjacency (neighbor index tuples plus membership
  frozensets) lifted once from ``Topology.region_graph`` **in the
  graph's own iteration order**, so the indexed Viterbi visits states in
  exactly the sequence the object path would and every first-seen /
  strict-``>`` tie-break lands on the same winner;
- per-leg edge weights and per-region mean dwells for the duration
  model, again precomputed by the very expressions the object path
  evaluates per call.

Staleness is handled by the knowledge's monotonic ``generation``
counter: every mutation (``observe``/``fold``/``unfold``/``scale``)
bumps it, and :func:`ensure_compiled` recompiles when the attached
model's recorded generation (or topology identity) no longer matches.
Once compiled, a model is immutable, so concurrent phase-two workers may
race to compile the same generation — the last attach wins and both
models are interchangeable.  Compiles and attach-cache hits are counted
through the telemetry registry (``trips_inference_compiles_total`` /
``trips_inference_compile_hits_total``).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ...errors import InferenceError

if TYPE_CHECKING:  # pragma: no cover
    from ...dsm import Topology
    from .knowledge import MobilityKnowledge

_EMPTY_ROW: dict = {}


class CompiledTransitionModel:
    """Per-generation compilation of one knowledge + topology pair.

    Immutable after :meth:`compile`; all queries are plain list/dict
    lookups with no networkx, no smoothing arithmetic and no ``math.log``
    in the loop.
    """

    __slots__ = (
        "generation",
        "topology",
        "regions",
        "index",
        "in_graph",
        "neighbors",
        "neighbor_sets",
        "prob_rows",
        "log_rows",
        "edge_weights",
        "mean_dwells",
    )

    def __init__(
        self,
        generation: int,
        topology: "Topology",
        regions: tuple[str, ...],
        index: dict[str, int],
        in_graph: tuple[bool, ...],
        neighbors: tuple[tuple[int, ...], ...],
        neighbor_sets: tuple[frozenset, ...],
        prob_rows: tuple[tuple[float, ...], ...],
        log_rows: tuple[tuple[float, ...], ...],
        edge_weights: dict[tuple[int, int], float | None],
        mean_dwells: tuple[float | None, ...],
    ):
        self.generation = generation
        self.topology = topology
        self.regions = regions
        self.index = index
        self.in_graph = in_graph
        self.neighbors = neighbors
        self.neighbor_sets = neighbor_sets
        self.prob_rows = prob_rows
        self.log_rows = log_rows
        self.edge_weights = edge_weights
        self.mean_dwells = mean_dwells

    @classmethod
    def compile(
        cls, knowledge: "MobilityKnowledge", topology: "Topology"
    ) -> "CompiledTransitionModel":
        """Compile tables for ``knowledge``'s current generation.

        Every table entry is produced by the same float expression the
        object-model query evaluates per call — ``(count + smoothing) /
        (total + smoothing * vocabulary)`` and its ``math.log`` — so a
        table lookup and the live computation are bit-for-bit
        interchangeable.  The region graph's node set must cover the
        knowledge vocabulary it intersects; a graph node outside the
        vocabulary would make the object path raise mid-DP, so the
        mismatch is rejected up front.
        """
        regions = tuple(knowledge.regions)
        index = {region: position for position, region in enumerate(regions)}
        smoothing = knowledge.smoothing
        vocabulary = len(regions) - 1
        transitions = knowledge._transitions
        outgoing_totals = knowledge._outgoing_totals

        prob_rows: list[tuple[float, ...]] = []
        log_rows: list[tuple[float, ...]] = []
        for origin in regions:
            outgoing = transitions.get(origin, _EMPTY_ROW)
            total = outgoing_totals.get(origin, 0)
            denominator = total + smoothing * vocabulary
            prob_row: list[float] = []
            log_row: list[float] = []
            for destination in regions:
                if destination == origin:
                    # Self-transitions were merged away during annotation;
                    # the object path returns probability 0.0 and never
                    # asks for its log (the region graph has no self
                    # loops), so -inf is a safe, never-read placeholder.
                    prob_row.append(0.0)
                    log_row.append(-math.inf)
                    continue
                count = outgoing.get(destination, 0)
                probability = (count + smoothing) / denominator
                prob_row.append(probability)
                log_row.append(math.log(probability))
            prob_rows.append(tuple(prob_row))
            log_rows.append(tuple(log_row))

        graph = topology.region_graph
        in_graph: list[bool] = []
        neighbors: list[tuple[int, ...]] = []
        edge_weights: dict[tuple[int, int], float | None] = {}
        for position, region in enumerate(regions):
            if region not in graph:
                in_graph.append(False)
                neighbors.append(())
                continue
            in_graph.append(True)
            row: list[int] = []
            # Graph iteration order is preserved verbatim: dict-insertion
            # order is the object Viterbi's tie-break order.
            for neighbor in graph.neighbors(region):
                neighbor_position = index.get(neighbor)
                if neighbor_position is None:
                    raise InferenceError(
                        f"region graph node {neighbor!r} is not in the "
                        "knowledge vocabulary; cannot compile the "
                        "transition model"
                    )
                row.append(neighbor_position)
                edge_weights[(position, neighbor_position)] = graph.edges[
                    region, neighbor
                ].get("weight")
            neighbors.append(tuple(row))

        stats = knowledge._stats
        mean_dwells: list[float | None] = []
        for region in regions:
            region_stats = stats[region]
            if region_stats.visits > 0:
                mean_dwells.append(region_stats.mean_dwell)
            else:
                mean_dwells.append(None)

        return cls(
            generation=knowledge.generation,
            topology=topology,
            regions=regions,
            index=index,
            in_graph=tuple(in_graph),
            neighbors=tuple(neighbors),
            neighbor_sets=tuple(frozenset(row) for row in neighbors),
            prob_rows=tuple(prob_rows),
            log_rows=tuple(log_rows),
            edge_weights=edge_weights,
            mean_dwells=tuple(mean_dwells),
        )

    # ------------------------------------------------------------------
    # Named-region queries (the knowledge fast paths)
    # ------------------------------------------------------------------
    def probability(self, origin: str, destination: str) -> float:
        """Table lookup of the smoothed ``P(destination | origin)``."""
        return self.prob_rows[self.index[origin]][self.index[destination]]

    def log_probability(self, origin: str, destination: str) -> float:
        """Table lookup of ``log P(destination | origin)``."""
        return self.log_rows[self.index[origin]][self.index[destination]]

    def probability_row(self, origin: str) -> tuple[float, ...]:
        """The full smoothed distribution out of ``origin`` (dense)."""
        return self.prob_rows[self.index[origin]]

    def mean_dwell(self, position: int, default: float) -> float:
        """Precomputed mean dwell of the indexed region, with default."""
        value = self.mean_dwells[position]
        return default if value is None else value

    def leg_distance(self, origin: int, destination: int) -> float:
        """Walking distance of one leg, defaulted like the object path."""
        weight = self.edge_weights.get((origin, destination))
        if weight is None or not math.isfinite(weight):
            return 25.0  # conservative unknown-leg estimate
        return weight


def ensure_compiled(
    knowledge: "MobilityKnowledge", topology: "Topology"
) -> CompiledTransitionModel:
    """The attached compiled model, recompiled when stale.

    Freshness means the attached model was compiled from this knowledge
    object's **current** generation against this very topology object;
    any mutation since (or a different topology) forces a recompile.
    The attach is a single attribute store, so concurrent callers may
    compile the same generation twice — wasteful but exact, never stale.
    """
    # Lazy import: repro.telemetry itself imports this package (for
    # ExactSum), so a module-level import here would be circular.  This
    # runs once per phase-two chunk, not per DP step — the cost is noise.
    from ...telemetry import get_registry

    compiled = knowledge.compiled_model()
    registry = get_registry()
    if compiled is not None and compiled.topology is topology:
        if registry.enabled:
            registry.counter("trips_inference_compile_hits_total").inc()
        return compiled
    compiled = CompiledTransitionModel.compile(knowledge, topology)
    knowledge.attach_compiled(compiled)
    if registry.enabled:
        registry.counter("trips_inference_compiles_total").inc()
    return compiled
