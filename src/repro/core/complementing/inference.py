"""MAP inference of missing mobility semantics.

"By a maximum a posteriori estimation, a mobility semantics inference
utilizes the mobility knowledge to infer the most-likely mobility semantics
between two semantic regions involved in the intermediate result" (paper
§3).  The inference is a Viterbi-style dynamic program over the DSM's
region graph: for each candidate intermediate-hop count ``k`` it finds the
maximum-log-probability region path from the gap's start region to its end
region, scores each ``k`` by how well the path's expected dwell+travel time
explains the gap duration, and emits the winner as inferred triplets.

Two interchangeable execution paths implement the same semantics:

- the **object path** walks the networkx region graph and recomputes the
  smoothed ``log P(dest | origin)`` per DP step — the readable reference
  implementation;
- the **compiled path** (default, ``InferenceConfig.compiled``) runs the
  identical DP over integer states with table lookups from a
  :class:`~repro.core.complementing.compiled.CompiledTransitionModel`,
  plus a bounded per-inference memo of :meth:`SemanticsInference.best_path`
  answers, both keyed by the knowledge's mutation ``generation``.

The paths are bit-for-bit equivalent — same candidate paths, same
floats, same first-seen/strict-``>`` tie-breaks — proven by the
differential suite in ``tests/test_compiled_inference.py``.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

from ...dsm import Topology
from ...errors import InferenceError
from ...timeutil import TimeRange
from ..semantics import EVENT_PASS_BY, EVENT_STAY, MobilitySemantic
from .compiled import CompiledTransitionModel, ensure_compiled
from .knowledge import MobilityKnowledge

#: Nominal indoor walking speed used to estimate travel time between regions.
NOMINAL_WALK_SPEED = 1.2


@dataclass(frozen=True)
class InferenceConfig:
    """Knobs of the MAP inference."""

    max_hops: int = 4
    #: Weight of the duration-fit term against the path log-probability.
    #: Each extra leg costs roughly ``-log P(transition)`` (about 2-3 nats
    #: under smoothing), so the likelihood term needs comparable scale or
    #: the direct-transition explanation always wins regardless of how
    #: badly it explains the gap duration.
    duration_weight: float = 4.0
    #: Dwell assumed for regions never observed in the knowledge (seconds).
    default_dwell: float = 60.0
    #: Below this allocated time an inferred visit is a pass-by, not a stay.
    pass_by_threshold: float = 45.0
    #: Run the integer-indexed compiled DP (bit-for-bit identical to the
    #: object path; ``False`` forces the reference implementation — the
    #: lever the differential harness flips).
    compiled: bool = True
    #: Bound of the per-inference ``best_path`` memo (0 disables it).
    path_memo: int = 4096

    def __post_init__(self) -> None:
        if self.max_hops < 0:
            raise InferenceError(f"max_hops must be >= 0, got {self.max_hops}")
        if self.duration_weight < 0:
            raise InferenceError("duration_weight must be >= 0")
        if self.path_memo < 0:
            raise InferenceError(
                f"path_memo must be >= 0, got {self.path_memo}"
            )


@dataclass(frozen=True)
class InferredPath:
    """A scored candidate: intermediate regions plus diagnostic terms."""

    regions: tuple[str, ...]
    log_probability: float
    duration_penalty: float

    @property
    def score(self) -> float:
        """Combined MAP objective (higher is better).

        The transition term is *length-normalized* (geometric-mean leg
        probability): raw sums punish every extra leg by ~|log P| nats,
        which would make the direct-transition hypothesis unbeatable no
        matter how badly it explains the gap duration.  With the mean, the
        prior ranks paths by how typical their legs are and the duration
        likelihood arbitrates how many legs the gap can hold.
        """
        legs = len(self.regions) + 1
        return self.log_probability / legs - self.duration_penalty


class SemanticsInference:
    """Infers the most likely region path across one semantics gap."""

    def __init__(
        self,
        knowledge: MobilityKnowledge,
        topology: Topology,
        config: InferenceConfig | None = None,
    ):
        self.knowledge = knowledge
        self.topology = topology
        self.config = config if config is not None else InferenceConfig()
        # Bounded LRU of best_path answers, valid for one knowledge
        # generation; cleared the moment the compiled model's generation
        # moves.  Per-inference (not shared through the knowledge object)
        # so concurrent phase-two workers never contend on it and the
        # entries implicitly carry this inference's config.
        self._path_memo: "OrderedDict[tuple, InferredPath | None]" = (
            OrderedDict()
        )
        self._memo_generation: int | None = None
        # Plain-int telemetry accumulators; flushed in one registry
        # interaction per phase-two chunk (see ``flush_telemetry``) so
        # the DP hot path never touches the registry.
        self.memo_hits = 0
        self.memo_misses = 0

    def prime(self) -> CompiledTransitionModel | None:
        """Ensure a current compiled model is attached (compiled path).

        Called once per phase-two chunk so the compile cost lands before
        the per-sequence loop and the compile/hit telemetry ticks once
        per chunk; returns ``None`` when the object path is configured.
        """
        if not self.config.compiled:
            return None
        return ensure_compiled(self.knowledge, self.topology)

    def flush_telemetry(self) -> None:
        """Push the accumulated memo hit/miss counts to the registry."""
        hits, misses = self.memo_hits, self.memo_misses
        if not hits and not misses:
            return
        # Lazy import: repro.telemetry imports this package for ExactSum.
        from ...telemetry import get_registry

        registry = get_registry()
        if registry.enabled:
            if hits:
                registry.counter("trips_inference_memo_hits_total").inc(hits)
            if misses:
                registry.counter("trips_inference_memo_misses_total").inc(
                    misses
                )
        self.memo_hits = 0
        self.memo_misses = 0

    def infer_gap(
        self,
        origin_region: str,
        destination_region: str,
        gap: TimeRange,
    ) -> list[MobilitySemantic]:
        """Inferred triplets filling ``gap`` between the two known regions.

        Returns an empty list when the best explanation is a direct
        transition (no intermediate visit fits the gap).
        """
        path = self.best_path(origin_region, destination_region, gap.duration)
        if path is None or not path.regions:
            return []
        return self._allocate_time(path, gap)

    def infer_between(
        self,
        before: MobilitySemantic,
        after: MobilitySemantic,
        gap: TimeRange,
    ) -> list[MobilitySemantic]:
        """Gap filling aware of the flanking triplets' dwell statistics.

        A positioning dropout usually truncates the visits on either side
        of it, so the most likely explanation of the first and last parts
        of the gap is *more of the same visit*: each flank is extended by
        its region's dwell deficit (mean dwell minus observed duration),
        capped to keep room for travel, and only the remaining middle
        window goes to intermediate-path inference.
        """
        extend_before = self._dwell_deficit(before)
        extend_after = self._dwell_deficit(after)
        budget = 0.8 * gap.duration
        if extend_before + extend_after > budget and (
            extend_before + extend_after
        ) > 0:
            scale = budget / (extend_before + extend_after)
            extend_before *= scale
            extend_after *= scale
        semantics: list[MobilitySemantic] = []
        middle_start = gap.start
        middle_end = gap.end
        if extend_before >= 20.0:
            middle_start = gap.start + extend_before
            semantics.append(
                MobilitySemantic(
                    event=before.event,
                    region_id=before.region_id,
                    region_name=before.region_name,
                    time_range=TimeRange(gap.start, middle_start),
                    confidence=0.6,
                    inferred=True,
                )
            )
        if extend_after >= 20.0:
            middle_end = gap.end - extend_after
            semantics.append(
                MobilitySemantic(
                    event=after.event,
                    region_id=after.region_id,
                    region_name=after.region_name,
                    time_range=TimeRange(middle_end, gap.end),
                    confidence=0.6,
                    inferred=True,
                )
            )
        middle = TimeRange(middle_start, middle_end)
        if middle.duration >= self.config.pass_by_threshold:
            semantics.extend(
                self.infer_gap(before.region_id, after.region_id, middle)
            )
        return sorted(semantics, key=lambda s: s.time_range)

    def _dwell_deficit(self, triplet: MobilitySemantic) -> float:
        """How much shorter than typical this visit was observed to be.

        Unknown-region contract: a flanking triplet whose region is
        outside the knowledge vocabulary yields a deficit of **0.0** —
        silently, by design.  Flank extension is opportunistic polish
        ("more of the same visit"), so a region the knowledge cannot
        speak about simply contributes no extension, and the gap still
        gets its middle-path inference.  Contrast :meth:`best_path`,
        where an unknown *endpoint* makes the whole inference unanswerable
        and raises :class:`~repro.errors.InferenceError` loudly.
        """
        if triplet.region_id not in self.knowledge._region_set:
            return 0.0
        stats = self.knowledge.region_stats(triplet.region_id)
        if stats.visits == 0:
            return 0.0
        return max(0.0, stats.mean_dwell - triplet.duration)

    def best_path(
        self, origin: str, destination: str, gap_duration: float
    ) -> InferredPath | None:
        """The MAP intermediate-region path for a gap of ``gap_duration``.

        Runs the hop-bounded Viterbi DP and scores each hop count by
        path log-probability minus a duration-mismatch penalty.

        Unknown-region contract: unlike :meth:`_dwell_deficit` (which
        silently skips flank extension), a path *endpoint* outside the
        knowledge vocabulary raises :class:`~repro.errors.InferenceError`
        — there is no prior to reason with, so answering would be a
        fabrication.  Callers that may hold unknown endpoints gate on
        the vocabulary first (as the complementor does).

        On the compiled path, answers are memoized per
        ``(origin, destination, gap_duration)`` in a bounded LRU keyed
        to the knowledge generation: any mutation of the knowledge
        invalidates the memo wholesale, so a stale answer can never
        outlive the evidence it was computed from.
        """
        if origin not in self.knowledge._region_set:
            raise InferenceError(f"unknown origin region {origin!r}")
        if destination not in self.knowledge._region_set:
            raise InferenceError(f"unknown destination region {destination!r}")
        if not self.config.compiled:
            return self._best_path_objects(origin, destination, gap_duration)
        # Fast revalidation: a current attached model is one attribute
        # read plus a generation compare; ensure_compiled (which also
        # ticks the compile/hit telemetry) only runs when the cache is
        # absent, stale, or bound to a different topology — so the
        # counters measure chunk-level cache behaviour, not call volume.
        compiled = self.knowledge.compiled_model()
        if compiled is None or compiled.topology is not self.topology:
            compiled = ensure_compiled(self.knowledge, self.topology)
        memo_limit = self.config.path_memo
        memo = self._path_memo
        if memo_limit:
            if self._memo_generation != compiled.generation:
                memo.clear()
                self._memo_generation = compiled.generation
            key = (origin, destination, gap_duration)
            try:
                hit = memo[key]
            except KeyError:
                self.memo_misses += 1
            else:
                memo.move_to_end(key)
                self.memo_hits += 1
                return hit
        path = self._best_path_compiled(
            compiled, origin, destination, gap_duration
        )
        if memo_limit:
            memo[key] = path
            if len(memo) > memo_limit:
                memo.popitem(last=False)
        return path

    # ------------------------------------------------------------------
    # Compiled path: integer-indexed Viterbi over precompiled tables
    # ------------------------------------------------------------------
    def _best_path_compiled(
        self,
        compiled: CompiledTransitionModel,
        origin: str,
        destination: str,
        gap_duration: float,
    ) -> InferredPath | None:
        """The object path's exact DP, over integer states and tables.

        Every float it produces — leg logs, their running sums, duration
        penalties — comes from table entries computed by the identical
        expressions, combined in the identical order, so candidate
        scores and tie-breaks match the object path bit for bit.
        """
        origin_index = compiled.index[origin]
        destination_index = compiled.index[destination]
        candidates: list[InferredPath] = []
        direct = InferredPath(
            regions=(),
            log_probability=(
                compiled.log_rows[origin_index][destination_index]
                if origin != destination
                else 0.0
            ),
            duration_penalty=self._duration_penalty_compiled(
                compiled, (), origin_index, destination_index, gap_duration
            ),
        )
        candidates.append(direct)
        if compiled.in_graph[origin_index] and compiled.in_graph[
            destination_index
        ]:
            for hops in range(1, self.config.max_hops + 1):
                best = self._viterbi_fixed_hops_compiled(
                    compiled, origin_index, destination_index, hops
                )
                if best is None:
                    continue
                path_indices, log_probability = best
                candidates.append(
                    InferredPath(
                        regions=tuple(
                            compiled.regions[i] for i in path_indices
                        ),
                        log_probability=log_probability,
                        duration_penalty=self._duration_penalty_compiled(
                            compiled,
                            path_indices,
                            origin_index,
                            destination_index,
                            gap_duration,
                        ),
                    )
                )
        if not candidates:
            return None
        return max(candidates, key=lambda c: c.score)

    def _viterbi_fixed_hops_compiled(
        self,
        compiled: CompiledTransitionModel,
        origin: int,
        destination: int,
        hops: int,
    ) -> tuple[tuple[int, ...], float] | None:
        """Integer-state Viterbi: table lookups, no networkx, no logs.

        State dicts are keyed by region *index*; insertion order follows
        the frozen adjacency (lifted in graph iteration order), so the
        first-seen ordering and strict-``>`` improvements resolve ties
        exactly as the object implementation does.
        """
        neighbors = compiled.neighbors
        neighbor_sets = compiled.neighbor_sets
        log_rows = compiled.log_rows
        # scores[index] = (best log-prob reaching index, back-pointer path)
        scores: dict[int, tuple[float, tuple[int, ...]]] = {}
        origin_row = log_rows[origin]
        for neighbor in neighbors[origin]:
            scores[neighbor] = (origin_row[neighbor], (neighbor,))
        for _ in range(hops - 1):
            next_scores: dict[int, tuple[float, tuple[int, ...]]] = {}
            for region, (log_probability, path) in scores.items():
                row = log_rows[region]
                for neighbor in neighbors[region]:
                    if neighbor == origin or neighbor in path:
                        continue  # no revisits inside one inferred excursion
                    candidate = log_probability + row[neighbor]
                    held = next_scores.get(neighbor)
                    if held is None or candidate > held[0]:
                        next_scores[neighbor] = (candidate, path + (neighbor,))
            scores = next_scores
            if not scores:
                return None
        best: tuple[tuple[int, ...], float] | None = None
        for region, (log_probability, path) in scores.items():
            if destination not in neighbor_sets[region]:
                continue
            if destination in path:
                continue
            total = log_probability + log_rows[region][destination]
            if best is None or total > best[1]:
                best = (path, total)
        return best

    def _duration_penalty_compiled(
        self,
        compiled: CompiledTransitionModel,
        intermediates: tuple[int, ...],
        origin: int,
        destination: int,
        gap_duration: float,
    ) -> float:
        """:meth:`_duration_penalty` over indexed states.

        Same legs, same defaulted distances and mean dwells, accumulated
        in the same order — identical floats.
        """
        expected = 0.0
        legs = (origin, *intermediates, destination)
        previous = legs[0]
        for leg in legs[1:]:
            expected += compiled.leg_distance(previous, leg) / (
                NOMINAL_WALK_SPEED
            )
            previous = leg
        default_dwell = self.config.default_dwell
        for region in intermediates:
            expected += compiled.mean_dwell(region, default_dwell)
        if gap_duration <= 0:
            return self.config.duration_weight * (1.0 if intermediates else 0.0)
        relative_error = (expected - gap_duration) / gap_duration
        return self.config.duration_weight * relative_error * relative_error

    # ------------------------------------------------------------------
    # Object path: the reference implementation over the live graph
    # ------------------------------------------------------------------
    def _best_path_objects(
        self, origin: str, destination: str, gap_duration: float
    ) -> InferredPath | None:
        """Reference DP over networkx adjacency and live smoothed queries."""
        candidates: list[InferredPath] = []
        direct = InferredPath(
            regions=(),
            log_probability=self.knowledge.log_transition(origin, destination)
            if origin != destination
            else 0.0,
            duration_penalty=self._duration_penalty((), origin, destination, gap_duration),
        )
        candidates.append(direct)
        for hops in range(1, self.config.max_hops + 1):
            best = self._viterbi_fixed_hops(origin, destination, hops)
            if best is None:
                continue
            regions, log_probability = best
            candidates.append(
                InferredPath(
                    regions=regions,
                    log_probability=log_probability,
                    duration_penalty=self._duration_penalty(
                        regions, origin, destination, gap_duration
                    ),
                )
            )
        if not candidates:
            return None
        return max(candidates, key=lambda c: c.score)

    def _viterbi_fixed_hops(
        self, origin: str, destination: str, hops: int
    ) -> tuple[tuple[str, ...], float] | None:
        """Best log-probability path with exactly ``hops`` intermediates.

        States are region-graph nodes; moves are restricted to region-graph
        edges so the inference never proposes physically impossible visits.
        """
        graph = self.topology.region_graph
        if origin not in graph or destination not in graph:
            return None
        # scores[region] = (best log-prob reaching region, back-pointer path)
        scores: dict[str, tuple[float, tuple[str, ...]]] = {}
        for neighbor in graph.neighbors(origin):
            log_probability = self.knowledge.log_transition(origin, neighbor)
            scores[neighbor] = (log_probability, (neighbor,))
        for _ in range(hops - 1):
            next_scores: dict[str, tuple[float, tuple[str, ...]]] = {}
            for region, (log_probability, path) in scores.items():
                for neighbor in graph.neighbors(region):
                    if neighbor == origin or neighbor in path:
                        continue  # no revisits inside one inferred excursion
                    candidate = log_probability + self.knowledge.log_transition(
                        region, neighbor
                    )
                    held = next_scores.get(neighbor)
                    if held is None or candidate > held[0]:
                        next_scores[neighbor] = (candidate, path + (neighbor,))
            scores = next_scores
            if not scores:
                return None
        best: tuple[tuple[str, ...], float] | None = None
        for region, (log_probability, path) in scores.items():
            if destination not in graph.neighbors(region):
                continue
            if destination in path:
                continue
            total = log_probability + self.knowledge.log_transition(
                region, destination
            )
            if best is None or total > best[1]:
                best = (path, total)
        return best

    # ------------------------------------------------------------------
    # Duration model
    # ------------------------------------------------------------------
    def _duration_penalty(
        self,
        intermediates: tuple[str, ...],
        origin: str,
        destination: str,
        gap_duration: float,
    ) -> float:
        """Penalty for how badly the path's expected time explains the gap.

        Expected time = sum of mean dwells at intermediates + walking time
        across all legs at nominal speed.  The penalty is the squared
        relative mismatch, weighted by ``duration_weight``.
        """
        expected = 0.0
        legs = [origin, *intermediates, destination]
        for a, b in zip(legs, legs[1:]):
            distance = self.topology.region_graph.get_edge_data(a, b, {}).get(
                "weight"
            )
            if distance is None or not math.isfinite(distance):
                distance = 25.0  # conservative unknown-leg estimate
            expected += distance / NOMINAL_WALK_SPEED
        for region in intermediates:
            expected += self.knowledge.mean_dwell(
                region, self.config.default_dwell
            )
        if gap_duration <= 0:
            return self.config.duration_weight * (1.0 if intermediates else 0.0)
        relative_error = (expected - gap_duration) / gap_duration
        return self.config.duration_weight * relative_error * relative_error

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _allocate_time(
        self, path: InferredPath, gap: TimeRange
    ) -> list[MobilitySemantic]:
        """Split the gap across inferred visits proportional to mean dwell."""
        dwells = [
            max(self.knowledge.mean_dwell(region, self.config.default_dwell), 1.0)
            for region in path.regions
        ]
        total_dwell = sum(dwells)
        confidence = self._confidence(path)
        semantics: list[MobilitySemantic] = []
        cursor = gap.start
        for region, dwell in zip(path.regions, dwells):
            share = dwell / total_dwell
            duration = gap.duration * share
            window = TimeRange(cursor, min(gap.end, cursor + duration))
            cursor = window.end
            stats = self.knowledge.region_stats(region)
            if duration < self.config.pass_by_threshold or (
                stats.visits > 0 and stats.stay_fraction < 0.5
            ):
                event = EVENT_PASS_BY
            else:
                event = EVENT_STAY
            region_name = self._region_name(region)
            semantics.append(
                MobilitySemantic(
                    event=event,
                    region_id=region,
                    region_name=region_name,
                    time_range=window,
                    confidence=confidence,
                    inferred=True,
                )
            )
        return semantics

    def _confidence(self, path: InferredPath) -> float:
        """Geometric-mean transition probability of the inferred legs."""
        leg_count = len(path.regions) + 1
        mean_log = path.log_probability / leg_count
        return max(0.0, min(1.0, math.exp(mean_log)))

    def _region_name(self, region_id: str) -> str:
        model = self.topology.model
        if model.has_region(region_id):
            return model.region(region_id).name
        return region_id
