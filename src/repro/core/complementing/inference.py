"""MAP inference of missing mobility semantics.

"By a maximum a posteriori estimation, a mobility semantics inference
utilizes the mobility knowledge to infer the most-likely mobility semantics
between two semantic regions involved in the intermediate result" (paper
§3).  The inference is a Viterbi-style dynamic program over the DSM's
region graph: for each candidate intermediate-hop count ``k`` it finds the
maximum-log-probability region path from the gap's start region to its end
region, scores each ``k`` by how well the path's expected dwell+travel time
explains the gap duration, and emits the winner as inferred triplets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...dsm import Topology
from ...errors import InferenceError
from ...timeutil import TimeRange
from ..semantics import EVENT_PASS_BY, EVENT_STAY, MobilitySemantic
from .knowledge import MobilityKnowledge

#: Nominal indoor walking speed used to estimate travel time between regions.
NOMINAL_WALK_SPEED = 1.2


@dataclass(frozen=True)
class InferenceConfig:
    """Knobs of the MAP inference."""

    max_hops: int = 4
    #: Weight of the duration-fit term against the path log-probability.
    #: Each extra leg costs roughly ``-log P(transition)`` (about 2-3 nats
    #: under smoothing), so the likelihood term needs comparable scale or
    #: the direct-transition explanation always wins regardless of how
    #: badly it explains the gap duration.
    duration_weight: float = 4.0
    #: Dwell assumed for regions never observed in the knowledge (seconds).
    default_dwell: float = 60.0
    #: Below this allocated time an inferred visit is a pass-by, not a stay.
    pass_by_threshold: float = 45.0

    def __post_init__(self) -> None:
        if self.max_hops < 0:
            raise InferenceError(f"max_hops must be >= 0, got {self.max_hops}")
        if self.duration_weight < 0:
            raise InferenceError("duration_weight must be >= 0")


@dataclass(frozen=True)
class InferredPath:
    """A scored candidate: intermediate regions plus diagnostic terms."""

    regions: tuple[str, ...]
    log_probability: float
    duration_penalty: float

    @property
    def score(self) -> float:
        """Combined MAP objective (higher is better).

        The transition term is *length-normalized* (geometric-mean leg
        probability): raw sums punish every extra leg by ~|log P| nats,
        which would make the direct-transition hypothesis unbeatable no
        matter how badly it explains the gap duration.  With the mean, the
        prior ranks paths by how typical their legs are and the duration
        likelihood arbitrates how many legs the gap can hold.
        """
        legs = len(self.regions) + 1
        return self.log_probability / legs - self.duration_penalty


class SemanticsInference:
    """Infers the most likely region path across one semantics gap."""

    def __init__(
        self,
        knowledge: MobilityKnowledge,
        topology: Topology,
        config: InferenceConfig | None = None,
    ):
        self.knowledge = knowledge
        self.topology = topology
        self.config = config if config is not None else InferenceConfig()

    def infer_gap(
        self,
        origin_region: str,
        destination_region: str,
        gap: TimeRange,
    ) -> list[MobilitySemantic]:
        """Inferred triplets filling ``gap`` between the two known regions.

        Returns an empty list when the best explanation is a direct
        transition (no intermediate visit fits the gap).
        """
        path = self.best_path(origin_region, destination_region, gap.duration)
        if path is None or not path.regions:
            return []
        return self._allocate_time(path, gap)

    def infer_between(
        self,
        before: MobilitySemantic,
        after: MobilitySemantic,
        gap: TimeRange,
    ) -> list[MobilitySemantic]:
        """Gap filling aware of the flanking triplets' dwell statistics.

        A positioning dropout usually truncates the visits on either side
        of it, so the most likely explanation of the first and last parts
        of the gap is *more of the same visit*: each flank is extended by
        its region's dwell deficit (mean dwell minus observed duration),
        capped to keep room for travel, and only the remaining middle
        window goes to intermediate-path inference.
        """
        extend_before = self._dwell_deficit(before)
        extend_after = self._dwell_deficit(after)
        budget = 0.8 * gap.duration
        if extend_before + extend_after > budget and (
            extend_before + extend_after
        ) > 0:
            scale = budget / (extend_before + extend_after)
            extend_before *= scale
            extend_after *= scale
        semantics: list[MobilitySemantic] = []
        middle_start = gap.start
        middle_end = gap.end
        if extend_before >= 20.0:
            middle_start = gap.start + extend_before
            semantics.append(
                MobilitySemantic(
                    event=before.event,
                    region_id=before.region_id,
                    region_name=before.region_name,
                    time_range=TimeRange(gap.start, middle_start),
                    confidence=0.6,
                    inferred=True,
                )
            )
        if extend_after >= 20.0:
            middle_end = gap.end - extend_after
            semantics.append(
                MobilitySemantic(
                    event=after.event,
                    region_id=after.region_id,
                    region_name=after.region_name,
                    time_range=TimeRange(middle_end, gap.end),
                    confidence=0.6,
                    inferred=True,
                )
            )
        middle = TimeRange(middle_start, middle_end)
        if middle.duration >= self.config.pass_by_threshold:
            semantics.extend(
                self.infer_gap(before.region_id, after.region_id, middle)
            )
        return sorted(semantics, key=lambda s: s.time_range)

    def _dwell_deficit(self, triplet: MobilitySemantic) -> float:
        """How much shorter than typical this visit was observed to be."""
        if triplet.region_id not in self.knowledge._region_set:
            return 0.0
        stats = self.knowledge.region_stats(triplet.region_id)
        if stats.visits == 0:
            return 0.0
        return max(0.0, stats.mean_dwell - triplet.duration)

    def best_path(
        self, origin: str, destination: str, gap_duration: float
    ) -> InferredPath | None:
        """The MAP intermediate-region path for a gap of ``gap_duration``.

        Runs the hop-bounded Viterbi DP and scores each hop count by
        path log-probability minus a duration-mismatch penalty.
        """
        if origin not in self.knowledge._region_set:
            raise InferenceError(f"unknown origin region {origin!r}")
        if destination not in self.knowledge._region_set:
            raise InferenceError(f"unknown destination region {destination!r}")
        candidates: list[InferredPath] = []
        direct = InferredPath(
            regions=(),
            log_probability=self.knowledge.log_transition(origin, destination)
            if origin != destination
            else 0.0,
            duration_penalty=self._duration_penalty((), origin, destination, gap_duration),
        )
        candidates.append(direct)
        for hops in range(1, self.config.max_hops + 1):
            best = self._viterbi_fixed_hops(origin, destination, hops)
            if best is None:
                continue
            regions, log_probability = best
            candidates.append(
                InferredPath(
                    regions=regions,
                    log_probability=log_probability,
                    duration_penalty=self._duration_penalty(
                        regions, origin, destination, gap_duration
                    ),
                )
            )
        if not candidates:
            return None
        return max(candidates, key=lambda c: c.score)

    # ------------------------------------------------------------------
    # Viterbi over the region graph
    # ------------------------------------------------------------------
    def _viterbi_fixed_hops(
        self, origin: str, destination: str, hops: int
    ) -> tuple[tuple[str, ...], float] | None:
        """Best log-probability path with exactly ``hops`` intermediates.

        States are region-graph nodes; moves are restricted to region-graph
        edges so the inference never proposes physically impossible visits.
        """
        graph = self.topology.region_graph
        if origin not in graph or destination not in graph:
            return None
        # scores[region] = (best log-prob reaching region, back-pointer path)
        scores: dict[str, tuple[float, tuple[str, ...]]] = {}
        for neighbor in graph.neighbors(origin):
            log_probability = self.knowledge.log_transition(origin, neighbor)
            scores[neighbor] = (log_probability, (neighbor,))
        for _ in range(hops - 1):
            next_scores: dict[str, tuple[float, tuple[str, ...]]] = {}
            for region, (log_probability, path) in scores.items():
                for neighbor in graph.neighbors(region):
                    if neighbor == origin or neighbor in path:
                        continue  # no revisits inside one inferred excursion
                    candidate = log_probability + self.knowledge.log_transition(
                        region, neighbor
                    )
                    held = next_scores.get(neighbor)
                    if held is None or candidate > held[0]:
                        next_scores[neighbor] = (candidate, path + (neighbor,))
            scores = next_scores
            if not scores:
                return None
        best: tuple[tuple[str, ...], float] | None = None
        for region, (log_probability, path) in scores.items():
            if destination not in graph.neighbors(region):
                continue
            if destination in path:
                continue
            total = log_probability + self.knowledge.log_transition(
                region, destination
            )
            if best is None or total > best[1]:
                best = (path, total)
        return best

    # ------------------------------------------------------------------
    # Duration model
    # ------------------------------------------------------------------
    def _duration_penalty(
        self,
        intermediates: tuple[str, ...],
        origin: str,
        destination: str,
        gap_duration: float,
    ) -> float:
        """Penalty for how badly the path's expected time explains the gap.

        Expected time = sum of mean dwells at intermediates + walking time
        across all legs at nominal speed.  The penalty is the squared
        relative mismatch, weighted by ``duration_weight``.
        """
        expected = 0.0
        legs = [origin, *intermediates, destination]
        for a, b in zip(legs, legs[1:]):
            distance = self.topology.region_graph.get_edge_data(a, b, {}).get(
                "weight"
            )
            if distance is None or not math.isfinite(distance):
                distance = 25.0  # conservative unknown-leg estimate
            expected += distance / NOMINAL_WALK_SPEED
        for region in intermediates:
            expected += self.knowledge.mean_dwell(
                region, self.config.default_dwell
            )
        if gap_duration <= 0:
            return self.config.duration_weight * (1.0 if intermediates else 0.0)
        relative_error = (expected - gap_duration) / gap_duration
        return self.config.duration_weight * relative_error * relative_error

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _allocate_time(
        self, path: InferredPath, gap: TimeRange
    ) -> list[MobilitySemantic]:
        """Split the gap across inferred visits proportional to mean dwell."""
        dwells = [
            max(self.knowledge.mean_dwell(region, self.config.default_dwell), 1.0)
            for region in path.regions
        ]
        total_dwell = sum(dwells)
        confidence = self._confidence(path)
        semantics: list[MobilitySemantic] = []
        cursor = gap.start
        for region, dwell in zip(path.regions, dwells):
            share = dwell / total_dwell
            duration = gap.duration * share
            window = TimeRange(cursor, min(gap.end, cursor + duration))
            cursor = window.end
            stats = self.knowledge.region_stats(region)
            if duration < self.config.pass_by_threshold or (
                stats.visits > 0 and stats.stay_fraction < 0.5
            ):
                event = EVENT_PASS_BY
            else:
                event = EVENT_STAY
            region_name = self._region_name(region)
            semantics.append(
                MobilitySemantic(
                    event=event,
                    region_id=region,
                    region_name=region_name,
                    time_range=window,
                    confidence=confidence,
                    inferred=True,
                )
            )
        return semantics

    def _confidence(self, path: InferredPath) -> float:
        """Geometric-mean transition probability of the inferred legs."""
        leg_count = len(path.regions) + 1
        mean_log = path.log_probability / leg_count
        return max(0.0, min(1.0, math.exp(mean_log)))

    def _region_name(self, region_id: str) -> str:
        model = self.topology.model
        if model.has_region(region_id):
            return model.region(region_id).name
        return region_id
