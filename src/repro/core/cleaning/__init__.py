"""Cleaning layer (C1) of the three-layer translation framework.

Speed-constraint violation detection against the minimum indoor walking
distance, floor value correction, and DSM-constrained location
interpolation — paper §3, "Cleaning" in Figure 3.
"""

from .cleaner import (
    CleaningConfig,
    CleaningReport,
    CleaningResult,
    RawDataCleaner,
)
from .floor import FloorCorrector
from .interpolation import LocationInterpolator
from .speed import DEFAULT_MAX_SPEED, SpeedValidator, SpeedViolation

__all__ = [
    "DEFAULT_MAX_SPEED",
    "CleaningConfig",
    "CleaningReport",
    "CleaningResult",
    "FloorCorrector",
    "LocationInterpolator",
    "RawDataCleaner",
    "SpeedValidator",
    "SpeedViolation",
]
