"""Floor value correction: the first repair step of the cleaning layer.

"An invalid positioning record is repaired in two steps.  A floor value
correction fixes an error in that record's floor value." (paper §3).
Wi-Fi floor estimation misfires far more often than planar coordinates, so
trying neighbor floors first repairs most violations without touching the
(x, y) fix at all.
"""

from __future__ import annotations

from ...positioning import RawPositioningRecord
from .speed import SpeedValidator


class FloorCorrector:
    """Attempts to repair an invalid record by changing only its floor."""

    def __init__(self, validator: SpeedValidator):
        self.validator = validator

    def candidate_floors(
        self,
        record: RawPositioningRecord,
        previous: RawPositioningRecord | None,
        following: RawPositioningRecord | None,
    ) -> list[int]:
        """Floors worth trying, most plausible first.

        Neighbor floors come first (people rarely change floors between
        consecutive fixes), then floors adjacent to the reported one.
        """
        candidates: list[int] = []
        for neighbor in (previous, following):
            if neighbor is not None and neighbor.floor not in candidates:
                if neighbor.floor != record.floor:
                    candidates.append(neighbor.floor)
        for delta in (-1, 1):
            floor = record.floor + delta
            if floor not in candidates and floor != record.floor:
                candidates.append(floor)
        return candidates

    def try_correct(
        self,
        record: RawPositioningRecord,
        previous: RawPositioningRecord | None,
        following: RawPositioningRecord | None,
    ) -> RawPositioningRecord | None:
        """The floor-corrected record, or None when no floor fixes it.

        A candidate floor is accepted only when the corrected record is
        feasible against *both* the previous and the following anchor
        (where they exist) — "If the speed constraint violation still
        occurs after the correction, a location interpolation is
        performed."
        """
        for floor in self.candidate_floors(record, previous, following):
            corrected = record.refloored(floor)
            if not self._location_exists(corrected):
                continue
            if previous is not None and not self.validator.transition_feasible(
                previous, corrected
            ):
                continue
            if following is not None and not self.validator.transition_feasible(
                corrected, following
            ):
                continue
            return corrected
        return None

    def _location_exists(self, record: RawPositioningRecord) -> bool:
        """The corrected fix must land in (or near) walkable space."""
        model = self.validator.topology.model
        if model.partition_at(record.location) is not None:
            return True
        return model.nearest_partition(record.location, max_distance=3.0) is not None
