"""The Raw Data Cleaner: orchestrates detection and the two repair steps.

"The Raw Data Cleaner module reads the positioning sequence selected by the
Data Selector, and eliminates the data errors by considering the indoor
mobility constraints captured in the DSM" (paper §2).  Detection walks the
sequence against the last *valid* record; each invalid record is repaired by
floor correction first and location interpolation second, matching §3's
two-step repair exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...dsm import Topology
from ...errors import CleaningError
from ...positioning import PositioningSequence, RawPositioningRecord
from .floor import FloorCorrector
from .interpolation import LocationInterpolator
from .speed import DEFAULT_MAX_SPEED, SpeedValidator


@dataclass(frozen=True)
class CleaningConfig:
    """Knobs of the cleaning layer."""

    max_speed: float = DEFAULT_MAX_SPEED
    enable_floor_correction: bool = True
    enable_interpolation: bool = True

    def __post_init__(self) -> None:
        if self.max_speed <= 0:
            raise CleaningError(f"max_speed must be positive, got {self.max_speed}")


@dataclass
class CleaningReport:
    """What the cleaner detected and repaired in one sequence."""

    total_records: int = 0
    invalid_indexes: list[int] = field(default_factory=list)
    floor_corrected: list[int] = field(default_factory=list)
    interpolated: list[int] = field(default_factory=list)
    unrepaired: list[int] = field(default_factory=list)

    @property
    def invalid_count(self) -> int:
        """Number of records that violated the speed constraint."""
        return len(self.invalid_indexes)

    @property
    def repaired_count(self) -> int:
        """Records fixed by either repair step."""
        return len(self.floor_corrected) + len(self.interpolated)

    @property
    def invalid_rate(self) -> float:
        """Fraction of records detected invalid."""
        if self.total_records == 0:
            return 0.0
        return self.invalid_count / self.total_records

    def __str__(self) -> str:
        return (
            f"cleaning: {self.invalid_count}/{self.total_records} invalid, "
            f"{len(self.floor_corrected)} floor-corrected, "
            f"{len(self.interpolated)} interpolated, "
            f"{len(self.unrepaired)} unrepaired"
        )


@dataclass(frozen=True)
class CleaningResult:
    """The cleaned sequence plus its report; the raw input is untouched."""

    raw: PositioningSequence
    cleaned: PositioningSequence
    report: CleaningReport


class RawDataCleaner:
    """The cleaning layer of the three-layer translation framework."""

    def __init__(self, topology: Topology, config: CleaningConfig | None = None):
        self.topology = topology
        self.config = config if config is not None else CleaningConfig()
        self.validator = SpeedValidator(topology, self.config.max_speed)
        self._floor_corrector = FloorCorrector(self.validator)
        self._interpolator = LocationInterpolator(topology)

    def clean(self, sequence: PositioningSequence) -> CleaningResult:
        """Detect and repair invalid records in one positioning sequence."""
        records = list(sequence.records)
        report = CleaningReport(total_records=len(records))
        if len(records) < 2:
            return CleaningResult(sequence, sequence, report)

        records = self._fix_leading_outlier(records, report)
        repaired: list[RawPositioningRecord] = [records[0]]
        pending_interpolation: list[int] = []
        # The last record known to be good: an invalid record must never
        # become the comparison anchor, or one outlier would cascade into
        # flagging every record after it.
        last_valid = records[0]

        for index in range(1, len(records)):
            current = records[index]
            if self.validator.transition_feasible(last_valid, current):
                repaired.append(current)
                last_valid = current
                continue
            report.invalid_indexes.append(index)
            following = self._next_consistent(records, index, last_valid)
            corrected = None
            if self.config.enable_floor_correction:
                corrected = self._floor_corrector.try_correct(
                    current, last_valid, following
                )
            if corrected is not None:
                report.floor_corrected.append(index)
                repaired.append(corrected)
                last_valid = corrected
            elif self.config.enable_interpolation:
                # Defer: interpolation needs the *repaired* following anchor,
                # but marking now keeps index bookkeeping simple because the
                # record list length never changes.
                repaired.append(current)
                pending_interpolation.append(index)
            else:
                report.unrepaired.append(index)
                repaired.append(current)

        if pending_interpolation:
            repaired = self._interpolate_pending(
                repaired, pending_interpolation, report
            )

        cleaned = sequence.with_records(repaired)
        return CleaningResult(sequence, cleaned, report)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _fix_leading_outlier(
        self, records: list[RawPositioningRecord], report: CleaningReport
    ) -> list[RawPositioningRecord]:
        """Decide whether record 0 (rather than record 1) is the outlier.

        The forward scan always trusts its first record; when the first
        transition violates the constraint but records 1..2 are mutually
        consistent, the evidence points at record 0, which is replaced by a
        copy at record 1's location.
        """
        if len(records) < 3:
            return records
        first_bad = not self.validator.transition_feasible(records[0], records[1])
        rest_fine = self.validator.transition_feasible(records[1], records[2])
        if first_bad and rest_fine:
            report.invalid_indexes.append(0)
            report.interpolated.append(0)
            repaired_first = records[0].moved(records[1].location)
            return [repaired_first] + records[1:]
        return records

    def _next_consistent(
        self,
        records: list[RawPositioningRecord],
        index: int,
        previous_valid: RawPositioningRecord,
        lookahead: int = 5,
    ) -> RawPositioningRecord | None:
        """The next record that is itself consistent with the last valid one.

        Serves as the forward anchor for floor correction and
        interpolation; bounded lookahead keeps cleaning linear.
        """
        for j in range(index + 1, min(index + 1 + lookahead, len(records))):
            if self.validator.transition_feasible(previous_valid, records[j]):
                return records[j]
        return None

    def _interpolate_pending(
        self,
        records: list[RawPositioningRecord],
        pending: list[int],
        report: CleaningReport,
    ) -> list[RawPositioningRecord]:
        pending_set = set(pending)
        result = list(records)
        for index in pending:
            previous = self._nearest_anchor(result, index, pending_set, step=-1)
            following = self._nearest_anchor(result, index, pending_set, step=+1)
            result[index] = self._interpolator.interpolate(
                result[index], previous, following
            )
            report.interpolated.append(index)
        return result

    @staticmethod
    def _nearest_anchor(
        records: list[RawPositioningRecord],
        index: int,
        pending: set[int],
        step: int,
    ) -> RawPositioningRecord | None:
        j = index + step
        while 0 <= j < len(records):
            if j not in pending:
                return records[j]
            j += step
        return None
