"""Speed-constraint validation of raw positioning records.

"Considering the speed constraint that people cannot move too fast indoors,
the invalid positioning records are identified by checking the speeds
between consecutive positioning records based on the minimum indoor walking
distance" (paper §3, citing [13]).  The minimum indoor walking distance is
the DSM topology's shortest door-respecting path — straight-line distance
would under-detect errors whenever the direct segment cuts through walls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...dsm import Topology
from ...positioning import RawPositioningRecord

#: Brisk indoor walking speed ceiling (m/s); faster implies a bad fix.
DEFAULT_MAX_SPEED = 2.5


@dataclass(frozen=True)
class SpeedViolation:
    """A consecutive-record pair whose implied speed is infeasible."""

    from_index: int
    to_index: int
    distance: float
    elapsed: float

    @property
    def speed(self) -> float:
        """Implied speed in m/s (inf for unreachable or instantaneous)."""
        if self.elapsed <= 0.0:
            return math.inf
        return self.distance / self.elapsed


class SpeedValidator:
    """Checks record transitions against the indoor speed constraint."""

    def __init__(self, topology: Topology, max_speed: float = DEFAULT_MAX_SPEED):
        if max_speed <= 0:
            raise ValueError(f"max_speed must be positive, got {max_speed}")
        self.topology = topology
        self.max_speed = max_speed

    def transition_feasible(
        self, previous: RawPositioningRecord, current: RawPositioningRecord
    ) -> bool:
        """True when moving between the two fixes is humanly possible."""
        distance = self.effective_distance(previous, current)
        if not math.isfinite(distance):
            return False
        elapsed = current.timestamp - previous.timestamp
        if elapsed <= 0.0:
            # Simultaneous fixes are feasible only at (nearly) one location.
            return distance <= 1e-6
        return distance / elapsed <= self.max_speed

    def effective_distance(
        self, previous: RawPositioningRecord, current: RawPositioningRecord
    ) -> float:
        """Indoor distance with the vertical cost component excluded.

        The stack's floor-change cost is a routing weight, not a horizontal
        distance: a person mid-staircase legitimately produces consecutive
        fixes on different floors at nearly the same (x, y).  Excluding the
        vertical component keeps genuine stair transitions feasible while a
        floor *error* far from any staircase still pays its long horizontal
        detour legs and is detected.
        """
        distance = self.indoor_distance(previous, current)
        floor_delta = abs(current.floor - previous.floor)
        if floor_delta and math.isfinite(distance):
            distance = max(
                0.0,
                distance - self.topology.floor_change_cost * floor_delta,
            )
        return distance

    def indoor_distance(
        self, previous: RawPositioningRecord, current: RawPositioningRecord
    ) -> float:
        """Minimum indoor walking distance between the two fixes.

        Uses the cheap straight-line distance when both fixes share a
        partition and the segment stays inside it; otherwise the topology's
        door-graph shortest path.
        """
        a, b = previous.location, current.location
        if a.floor == b.floor and self.topology.straight_move_allowed(a, b):
            return a.planar_distance_to(b)
        return self.topology.walking_distance(a, b)

    def find_violations(
        self, records: list[RawPositioningRecord]
    ) -> list[SpeedViolation]:
        """All infeasible consecutive transitions in a record list."""
        violations: list[SpeedViolation] = []
        for index in range(1, len(records)):
            previous, current = records[index - 1], records[index]
            if not self.transition_feasible(previous, current):
                violations.append(
                    SpeedViolation(
                        index - 1,
                        index,
                        self.effective_distance(previous, current),
                        current.timestamp - previous.timestamp,
                    )
                )
        return violations
