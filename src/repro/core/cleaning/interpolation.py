"""Location interpolation: the second repair step of the cleaning layer.

"If the speed constraint violation still occurs after the correction, a
location interpolation is performed by deriving the possible locations at
the time of that record based on the indoor geometrical and topological
information captured by the DSM" (paper §3).  The repaired location is
placed on the shortest indoor walking path between the surrounding valid
anchors, at the arc-length fraction matching the record's timestamp — never
inside a wall, because the path itself respects doors.
"""

from __future__ import annotations

from ...dsm import Topology
from ...geometry import Point
from ...positioning import RawPositioningRecord


class LocationInterpolator:
    """Derives plausible locations for invalid records from the DSM."""

    def __init__(self, topology: Topology):
        self.topology = topology

    def interpolate(
        self,
        record: RawPositioningRecord,
        previous: RawPositioningRecord | None,
        following: RawPositioningRecord | None,
    ) -> RawPositioningRecord:
        """A repaired copy of ``record`` between the two valid anchors.

        With both anchors, the location is the point at the time-matched
        arc-length fraction of the indoor walking path.  With a single
        anchor (sequence edge), the record snaps to that anchor's location —
        the most conservative feasible estimate.  With no anchors the
        record is snapped into the nearest partition unchanged.
        """
        if previous is not None and following is not None:
            location = self._along_path(
                previous.location,
                following.location,
                self._fraction(
                    previous.timestamp, record.timestamp, following.timestamp
                ),
            )
        elif previous is not None:
            location = previous.location
        elif following is not None:
            location = following.location
        else:
            location = self._snap(record.location)
        return record.moved(location)

    def _fraction(self, t_prev: float, t_now: float, t_next: float) -> float:
        span = t_next - t_prev
        if span <= 0.0:
            return 0.5
        return min(1.0, max(0.0, (t_now - t_prev) / span))

    def _along_path(self, start: Point, goal: Point, fraction: float) -> Point:
        waypoints = self.topology.walking_path(start, goal)
        if len(waypoints) < 2:
            # Unreachable pair (shouldn't happen for valid anchors); fall
            # back to whichever endpoint the fraction favors, snapped in.
            return self._snap(start if fraction < 0.5 else goal)
        target = self._path_length(waypoints) * fraction
        walked = 0.0
        for a, b in zip(waypoints, waypoints[1:]):
            leg = a.planar_distance_to(b)
            if walked + leg >= target and leg > 0.0:
                t = (target - walked) / leg
                point = Point(
                    a.x + (b.x - a.x) * t,
                    a.y + (b.y - a.y) * t,
                    a.floor if t < 1.0 else b.floor,
                )
                return self._snap(point)
            walked += leg
        return self._snap(waypoints[-1])

    @staticmethod
    def _path_length(waypoints: list[Point]) -> float:
        return sum(a.planar_distance_to(b) for a, b in zip(waypoints, waypoints[1:]))

    def _snap(self, point: Point) -> Point:
        """Project a point into walkable space if it fell outside."""
        model = self.topology.model
        if model.partition_at(point) is not None:
            return point
        snapped = model.nearest_partition(point, max_distance=10.0)
        if snapped is None:
            return point
        partition, _ = snapped
        from ...geometry import Circle, Polygon

        shape = partition.shape
        if isinstance(shape, Polygon):
            if shape.contains_point(point):
                return point
            best = min(
                (edge.closest_point_to(point) for edge in shape.edges()),
                key=lambda candidate: candidate.planar_distance_to(point),
            )
            # Nudge slightly inside so downstream containment tests succeed.
            centroid = shape.centroid
            return best.lerp(centroid, 0.02)
        if isinstance(shape, Circle):
            direction = point.planar_distance_to(shape.center)
            if direction <= shape.radius:
                return point
            t = (shape.radius * 0.98) / direction
            return Point(
                shape.center.x + (point.x - shape.center.x) * t,
                shape.center.y + (point.y - shape.center.y) * t,
                shape.floor,
            )
        return point
