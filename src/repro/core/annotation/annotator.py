"""The Mobility Semantics Annotator.

"The Annotator module reads the cleaned sequence from the Raw Data Cleaner,
and extracts a sequence of mobility semantics by matching proper
annotations according to the relevant contexts (i.e., semantic regions and
mobility events)" (paper §2).  Splitting produces snippets; each snippet
gets an event annotation from the identifier, a spatial annotation from the
matcher, and its time range as the temporal annotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ...dsm import DigitalSpaceModel
from ...errors import AnnotationError
from ...positioning import PositioningSequence
from ..semantics import MobilitySemantic, MobilitySemanticsSequence
from .event_model import EventPrediction, HeuristicEventIdentifier
from .spatial import SpatialMatcher
from .splitting import DensitySplitter, Snippet, SnippetKind, SplitterConfig


class EventModel(Protocol):
    """What the annotator needs from an event identifier."""

    @property
    def is_trained(self) -> bool: ...

    def identify(self, records) -> EventPrediction: ...


@dataclass(frozen=True)
class AnnotatorConfig:
    """Knobs of the annotation layer."""

    splitter: SplitterConfig = SplitterConfig()
    #: Snippets shorter than this many seconds produce no semantics at all
    #: (they are sensing flicker, not behavior).
    min_semantic_duration: float = 10.0
    #: Drop snippets whose spatial match is weaker than this coverage when
    #: the snippet is a transit (pass-bys need to actually touch the region).
    min_transit_coverage: float = 0.2
    #: Merge adjacent same-region triplets into one visit after annotation.
    merge_same_region: bool = True

    def __post_init__(self) -> None:
        if self.min_semantic_duration < 0:
            raise AnnotationError("min_semantic_duration must be >= 0")
        if not 0.0 <= self.min_transit_coverage <= 1.0:
            raise AnnotationError("min_transit_coverage must be in [0, 1]")


@dataclass(frozen=True)
class AnnotationResult:
    """Semantics plus the snippet partition (the viewer traces both)."""

    sequence: MobilitySemanticsSequence
    snippets: list[Snippet]
    skipped_snippets: int


class MobilitySemanticsAnnotator:
    """The annotation layer of the three-layer framework."""

    def __init__(
        self,
        model: DigitalSpaceModel,
        event_model: EventModel | None = None,
        config: AnnotatorConfig | None = None,
    ):
        self.model = model
        self.config = config if config is not None else AnnotatorConfig()
        self.splitter = DensitySplitter(self.config.splitter)
        self.matcher = SpatialMatcher(model)
        self.event_model: EventModel = (
            event_model if event_model is not None else HeuristicEventIdentifier()
        )

    def annotate(self, cleaned: PositioningSequence) -> AnnotationResult:
        """Translate a cleaned sequence into its original mobility semantics.

        'Original' in the paper's sense: before the complementing layer
        fills the gaps.
        """
        if not self.event_model.is_trained:
            raise AnnotationError(
                "event model is not trained; train it on Event Editor "
                "designations or use the heuristic identifier"
            )
        snippets = self.splitter.split(cleaned)
        semantics: list[MobilitySemantic] = []
        skipped = 0
        for snippet in snippets:
            triplet = self._annotate_snippet(snippet)
            if triplet is None:
                skipped += 1
            else:
                semantics.append(triplet)
        sequence = MobilitySemanticsSequence(
            cleaned.device_id, semantics
        ).merged_consecutive()
        if self.config.merge_same_region:
            sequence = sequence.merged_same_region()
        return AnnotationResult(sequence, snippets, skipped)

    def _annotate_snippet(self, snippet: Snippet) -> MobilitySemantic | None:
        if (
            len(snippet) >= 2
            and snippet.duration < self.config.min_semantic_duration
        ):
            return None
        if len(snippet) < 2:
            return None  # a lone record carries no measurable behavior
        match = self.matcher.match(list(snippet.records))
        if match is None:
            return None
        if (
            snippet.kind is SnippetKind.TRANSIT
            and match.coverage < self.config.min_transit_coverage
        ):
            return None
        prediction = self.event_model.identify(list(snippet.records))
        return MobilitySemantic(
            event=prediction.event,
            region_id=match.region_id,
            region_name=match.region_name,
            time_range=snippet.time_range,
            confidence=prediction.confidence,
            record_indexes=tuple(snippet.indexes),
        )
