"""Annotation layer (C2) of the three-layer translation framework.

Density-based splitting into snippets, snippet feature extraction, the
learning-based event identification model, spatial matching against
semantic regions, and the annotator that assembles mobility semantics —
paper §3, "Annotation" in Figure 3.
"""

from .annotator import (
    AnnotationResult,
    AnnotatorConfig,
    MobilitySemanticsAnnotator,
)
from .event_model import (
    EventIdentifier,
    EventPrediction,
    HeuristicEventIdentifier,
)
from .features import FEATURE_NAMES, extract_features, feature_index
from .spatial import SpatialMatch, SpatialMatcher
from .splitting import (
    DensitySplitter,
    Snippet,
    SnippetKind,
    SplitterConfig,
)

__all__ = [
    "FEATURE_NAMES",
    "AnnotationResult",
    "AnnotatorConfig",
    "DensitySplitter",
    "EventIdentifier",
    "EventPrediction",
    "HeuristicEventIdentifier",
    "MobilitySemanticsAnnotator",
    "Snippet",
    "SnippetKind",
    "SpatialMatch",
    "SpatialMatcher",
    "SplitterConfig",
    "extract_features",
    "feature_index",
]
