"""Spatial matching: attaching semantic regions to snippets.

"The spatial annotation is made by matching the semantic regions in the DSM
created by the Space Modeler" (paper §3).  A snippet is matched to the
region its records dwell in longest (duration-weighted vote), with a
nearest-region fallback within a snap radius for records in unmodeled space.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...dsm import DigitalSpaceModel
from ...positioning import RawPositioningRecord


@dataclass(frozen=True)
class SpatialMatch:
    """A region id/name plus the fraction of snippet time spent inside."""

    region_id: str
    region_name: str
    coverage: float


class SpatialMatcher:
    """Duration-weighted region voting over a snippet's records."""

    def __init__(self, model: DigitalSpaceModel, snap_distance: float = 4.0):
        if snap_distance < 0:
            raise ValueError(f"snap_distance must be >= 0, got {snap_distance}")
        self.model = model
        self.snap_distance = snap_distance

    def match(self, records: list[RawPositioningRecord]) -> SpatialMatch | None:
        """The best-matching semantic region, or None when nothing is near.

        Each record votes for its primary region with a weight equal to the
        time it represents (half the gap to each neighbor record), so a
        handful of border fixes cannot outvote a long dwell.
        """
        if not records:
            return None
        weights = self._record_weights(records)
        votes: dict[str, float] = {}
        total = 0.0
        for record, weight in zip(records, weights):
            region = self._primary_region_at(record)
            total += weight
            if region is not None:
                votes[region.region_id] = votes.get(region.region_id, 0.0) + weight
        if not votes:
            return self._nearest_fallback(records)
        best_id = max(sorted(votes), key=lambda rid: votes[rid])
        region = self.model.region(best_id)
        coverage = votes[best_id] / total if total > 0 else 1.0
        return SpatialMatch(region.region_id, region.name, coverage)

    def _primary_region_at(self, record: RawPositioningRecord):
        """The record's primary region — the single point-location seam.

        The columnar matcher (:mod:`repro.columnar.kernels`) overrides just
        this hook with a memoized batch locator; every vote, tie-break and
        coverage computation above runs unchanged in both layouts.
        """
        return self.model.primary_region_at(record.location)

    def _record_weights(self, records: list[RawPositioningRecord]) -> list[float]:
        if len(records) == 1:
            return [1.0]
        weights = []
        for i, record in enumerate(records):
            left = records[i].timestamp - records[i - 1].timestamp if i > 0 else 0.0
            right = (
                records[i + 1].timestamp - record.timestamp
                if i < len(records) - 1
                else 0.0
            )
            weights.append(max((left + right) / 2.0, 1e-6))
        return weights

    def _nearest_fallback(
        self, records: list[RawPositioningRecord]
    ) -> SpatialMatch | None:
        """Snap to the nearest region anchor within ``snap_distance``."""
        middle = records[len(records) // 2].location
        best_id: str | None = None
        best_distance = self.snap_distance
        for region in self.model.regions():
            anchor = self.model.region_anchor(region.region_id)
            if anchor.floor != middle.floor:
                continue
            distance = anchor.planar_distance_to(middle)
            if distance <= best_distance:
                best_id, best_distance = region.region_id, distance
        if best_id is None:
            return None
        region = self.model.region(best_id)
        return SpatialMatch(region.region_id, region.name, 0.0)
