"""Snippet feature extraction for event identification.

"The feature extraction considers the information of positioning location
variance, traveling distance and speed, covering range, number of turns,
etc." (paper §3).  The extractor turns a record segment into a fixed-width
vector; the same function serves both the Event Editor's training segments
and the splitter's snippets at annotation time, so train/serve skew is
impossible by construction.
"""

from __future__ import annotations

import numpy as np

from ...errors import AnnotationError
from ...geometry import (
    count_turns,
    covering_range,
    floor_changes,
    location_variance,
    max_speed,
    mean_speed,
    path_length,
    straightness,
)
from ...positioning import RawPositioningRecord

#: Feature order produced by :func:`extract_features`.
FEATURE_NAMES = (
    "duration",
    "record_count",
    "location_variance",
    "path_length",
    "mean_speed",
    "max_speed",
    "covering_range",
    "turn_count",
    "straightness",
    "mean_interval",
    "floor_changes",
    "point_density",
)


def extract_features(records: list[RawPositioningRecord]) -> np.ndarray:
    """The paper's snippet feature vector, in :data:`FEATURE_NAMES` order."""
    if len(records) < 1:
        raise AnnotationError("cannot extract features from zero records")
    points = [r.location for r in records]
    timestamps = [r.timestamp for r in records]
    duration = timestamps[-1] - timestamps[0]
    count = len(records)
    travel = path_length(points)
    features = np.array(
        [
            duration,
            float(count),
            location_variance(points) if count > 1 else 0.0,
            travel,
            mean_speed(points, timestamps),
            max_speed(points, timestamps),
            covering_range(points),
            float(count_turns(points)),
            straightness(points),
            duration / (count - 1) if count > 1 else 0.0,
            float(floor_changes([p.floor for p in points])),
            count / duration if duration > 0 else float(count),
        ],
        dtype=np.float64,
    )
    return features


def feature_index(name: str) -> int:
    """Column index of a named feature (raises on unknown names)."""
    try:
        return FEATURE_NAMES.index(name)
    except ValueError:
        raise AnnotationError(f"unknown feature name: {name!r}") from None
