"""Density-based splitting of cleaned sequences into snippets.

"A density-based splitting obtains a number of data snippets by clustering
positioning records with respect to their spatio-temporal attributes"
(paper §3).  The splitter is an ST-DBSCAN variant restricted to temporal
contiguity: a record is *core* when enough records fall within both a
spatial radius and a temporal window around it; maximal contiguous runs of
core/border records become DENSE snippets (stay-like), everything between
becomes TRANSIT snippets (movement).

Invariant (property-tested): the snippets partition the input sequence —
their index ranges are ordered, non-overlapping, and cover every record.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ...errors import AnnotationError
from ...positioning import PositioningSequence, RawPositioningRecord
from ...timeutil import TimeRange


class SnippetKind(Enum):
    """Density class of a snippet."""

    DENSE = "dense"
    TRANSIT = "transit"


@dataclass(frozen=True)
class Snippet:
    """A contiguous run of records ``[start, end)`` of one density class."""

    kind: SnippetKind
    start: int
    end: int  # exclusive
    records: tuple[RawPositioningRecord, ...]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise AnnotationError(
                f"snippet range [{self.start}, {self.end}) is empty"
            )
        if len(self.records) != self.end - self.start:
            raise AnnotationError("snippet records do not match its index range")

    def __len__(self) -> int:
        return len(self.records)

    @property
    def time_range(self) -> TimeRange:
        """Closed interval from first to last record."""
        return TimeRange(self.records[0].timestamp, self.records[-1].timestamp)

    @property
    def duration(self) -> float:
        """Elapsed seconds of the snippet."""
        return self.time_range.duration

    @property
    def indexes(self) -> range:
        """The record indexes in the parent cleaned sequence."""
        return range(self.start, self.end)


@dataclass(frozen=True)
class SplitterConfig:
    """Density parameters of the splitter.

    A record is a *core* point when the device stays within ``eps_space``
    of it, contiguously in time, for at least ``core_span`` seconds and at
    least ``min_pts`` records.  Duration-within-radius is sampling-rate
    invariant: a walker exits the disc in ``2*eps_space/speed`` seconds
    (a few seconds at walking speed) regardless of how densely the channel
    samples, while a dweller remains for minutes.  ``eps_time`` bounds the
    gap between consecutive neighborhood records; ``min_dense_duration``
    drops flickers (a 10-second cluster is not a stay).
    """

    eps_space: float = 4.5
    eps_time: float = 120.0
    min_pts: int = 4
    core_span: float = 20.0
    min_dense_duration: float = 30.0
    #: Transit blips up to this long between two nearby dense snippets are
    #: stitched into one dense snippet (a dweller crossing the shop floor).
    bridge_span: float = 25.0

    def __post_init__(self) -> None:
        if self.eps_space <= 0 or self.eps_time <= 0:
            raise AnnotationError("eps_space and eps_time must be positive")
        if self.min_pts < 2:
            raise AnnotationError(f"min_pts must be >= 2, got {self.min_pts}")
        if self.core_span <= 0:
            raise AnnotationError("core_span must be positive")
        if self.min_dense_duration < 0:
            raise AnnotationError("min_dense_duration must be >= 0")
        if self.bridge_span < 0:
            raise AnnotationError("bridge_span must be >= 0")


class DensitySplitter:
    """Splits a cleaned positioning sequence into snippets."""

    def __init__(self, config: SplitterConfig | None = None):
        self.config = config if config is not None else SplitterConfig()

    def split(self, sequence: PositioningSequence) -> list[Snippet]:
        """The snippet partition of ``sequence`` in timeline order."""
        records = sequence.records
        n = len(records)
        if n == 1:
            return [Snippet(SnippetKind.TRANSIT, 0, 1, records)]
        core = self._core_flags(records)
        assigned = self._expand_borders(records, core)
        assigned = self._demote_short_runs(records, assigned)
        snippets = self._runs_to_snippets(records, assigned)
        return self._stitch(records, snippets)

    # ------------------------------------------------------------------
    # Density computation
    # ------------------------------------------------------------------
    def _core_flags(self, records) -> list[bool]:
        cfg = self.config
        n = len(records)
        flags = [False] * n
        for i in range(n):
            count = 1  # the record itself
            # Contiguous forward expansion: stop at the first record that
            # leaves the disc or after a long silence.
            first = last = records[i].timestamp
            j = i + 1
            while (
                j < n
                and self._near(records[i], records[j])
                and records[j].timestamp - records[j - 1].timestamp
                <= cfg.eps_time
            ):
                last = records[j].timestamp
                count += 1
                j += 1
            # Contiguous backward expansion.
            j = i - 1
            while (
                j >= 0
                and self._near(records[i], records[j])
                and records[j + 1].timestamp - records[j].timestamp
                <= cfg.eps_time
            ):
                first = records[j].timestamp
                count += 1
                j -= 1
            flags[i] = count >= cfg.min_pts and last - first >= cfg.core_span
        return flags

    def _near(self, a, b) -> bool:
        return (
            a.floor == b.floor
            and a.location.planar_distance_to(b.location) <= self.config.eps_space
        )

    def _expand_borders(self, records, core: list[bool]) -> list[bool]:
        """Border points join the dense mass of an adjacent core record."""
        n = len(records)
        assigned = list(core)
        for i in range(n):
            if assigned[i]:
                continue
            for j in (i - 1, i + 1):
                if 0 <= j < n and core[j] and self._near(records[i], records[j]):
                    time_gap = abs(records[i].timestamp - records[j].timestamp)
                    if time_gap <= self.config.eps_time:
                        assigned[i] = True
                        break
        return assigned

    def _demote_short_runs(self, records, assigned: list[bool]) -> list[bool]:
        """Dense runs shorter than ``min_dense_duration`` become transit."""
        result = list(assigned)
        for start, end in self._runs(assigned, True):
            duration = records[end - 1].timestamp - records[start].timestamp
            if duration < self.config.min_dense_duration:
                for i in range(start, end):
                    result[i] = False
        return result

    # ------------------------------------------------------------------
    # Snippet assembly
    # ------------------------------------------------------------------
    def _runs_to_snippets(self, records, assigned: list[bool]) -> list[Snippet]:
        snippets: list[Snippet] = []
        for flag_value, (start, end) in self._flag_runs(assigned):
            kind = SnippetKind.DENSE if flag_value else SnippetKind.TRANSIT
            if kind is SnippetKind.DENSE:
                # Two different clusters (a floor change, a far jump, a long
                # silence) can sit back to back with the dense flag set on
                # both; split them into separate snippets.
                for piece_start, piece_end in self._cluster_breaks(
                    records, start, end
                ):
                    snippets.append(
                        Snippet(
                            kind,
                            piece_start,
                            piece_end,
                            tuple(records[piece_start:piece_end]),
                        )
                    )
            else:
                # Transit runs split at long silences too — otherwise a
                # dropout hole hides *inside* one snippet's time range and
                # the complementing layer never sees a gap to fill.
                for piece_start, piece_end in self._silence_breaks(
                    records, start, end
                ):
                    snippets.append(
                        Snippet(
                            kind,
                            piece_start,
                            piece_end,
                            tuple(records[piece_start:piece_end]),
                        )
                    )
        return snippets

    def _silence_breaks(self, records, start: int, end: int):
        piece_start = start
        for i in range(start, end - 1):
            gap = records[i + 1].timestamp - records[i].timestamp
            if gap > self.config.eps_time:
                yield piece_start, i + 1
                piece_start = i + 1
        yield piece_start, end

    def _stitch(self, records, snippets: list[Snippet]) -> list[Snippet]:
        """Merge [DENSE, short TRANSIT, DENSE] triples into one dense snippet.

        A dweller crossing their shop between browse spots produces a
        two-record transit blip that would otherwise fragment one visit
        into duration-distorted pieces.  Stitching requires the blip to be
        short, on the same floor, and spatially between nearby dense ends.
        """
        stitched = list(snippets)
        changed = True
        while changed:
            changed = False
            for i in range(1, len(stitched) - 1):
                middle = stitched[i]
                left, right = stitched[i - 1], stitched[i + 1]
                if (
                    middle.kind is SnippetKind.TRANSIT
                    and left.kind is SnippetKind.DENSE
                    and right.kind is SnippetKind.DENSE
                    and middle.duration <= self.config.bridge_span
                    and left.records[-1].floor == right.records[0].floor
                    and self._centroid(left).planar_distance_to(
                        self._centroid(right)
                    )
                    <= 2.0 * self.config.eps_space
                ):
                    merged = Snippet(
                        SnippetKind.DENSE,
                        left.start,
                        right.end,
                        tuple(records[left.start : right.end]),
                    )
                    stitched[i - 1 : i + 2] = [merged]
                    changed = True
                    break
        return stitched

    @staticmethod
    def _centroid(snippet: Snippet):
        from ...geometry import centroid_of

        return centroid_of([r.location for r in snippet.records])

    def _cluster_breaks(self, records, start: int, end: int):
        # Only *strong* discontinuities split a dense run: a floor change,
        # a jump well beyond the neighborhood radius, or a temporal gap.
        # Ordinary positioning jitter between consecutive records must not
        # fragment one long dwell into pass-by-sized pieces.
        piece_start = start
        for i in range(start, end - 1):
            a, b = records[i], records[i + 1]
            gap = b.timestamp - a.timestamp
            jump = a.location.planar_distance_to(b.location)
            broken = (
                a.floor != b.floor
                or jump > 2.0 * self.config.eps_space
                or gap > self.config.eps_time
            )
            if broken:
                yield piece_start, i + 1
                piece_start = i + 1
        yield piece_start, end

    @staticmethod
    def _runs(flags: list[bool], wanted: bool) -> list[tuple[int, int]]:
        found: list[tuple[int, int]] = []
        start = None
        for i, flag in enumerate(list(flags) + [not wanted]):
            if flag == wanted and start is None:
                start = i
            elif flag != wanted and start is not None:
                found.append((start, i))
                start = None
        return found

    @staticmethod
    def _flag_runs(flags: list[bool]):
        start = 0
        for i in range(1, len(flags) + 1):
            if i == len(flags) or flags[i] != flags[start]:
                yield flags[start], (start, i)
                start = i
