"""Event identification: the learning-based model of the annotation layer.

"The event and temporal annotations are made by a learning-based
identification model, for which the training mobility event data is
collected through the Event Editor" (paper §3).  :class:`EventIdentifier`
wraps a scaler plus any :mod:`repro.learning` classifier; a calibrated
heuristic fallback covers the zero-training bootstrap phase so the pipeline
is usable before an analyst has designated anything.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import AnnotationError, ModelNotFittedError
from ...events import TrainingSet
from ...learning import MODEL_FACTORIES, Classifier, StandardScaler
from ...positioning import RawPositioningRecord
from .features import FEATURE_NAMES, extract_features


@dataclass(frozen=True)
class EventPrediction:
    """An event label plus the model's confidence in it."""

    event: str
    confidence: float


class EventIdentifier:
    """Learned snippet-to-event classifier with graceful fallback."""

    def __init__(self, model: Classifier | str = "forest", seed: int = 0):
        if isinstance(model, str):
            factory = MODEL_FACTORIES.get(model)
            if factory is None:
                raise AnnotationError(
                    f"unknown event model {model!r}; "
                    f"choose from {sorted(MODEL_FACTORIES)}"
                )
            try:
                model = factory(seed=seed)
            except TypeError:  # models without a seed parameter (knn, nb)
                model = factory()
        self.model = model
        self.scaler = StandardScaler()
        self._trained = False

    @property
    def is_trained(self) -> bool:
        """True once :meth:`train` has run."""
        return self._trained

    def train(self, training_set: TrainingSet) -> "EventIdentifier":
        """Fit on Event Editor designations."""
        features, labels = training_set.to_features(extract_features)
        scaled = self.scaler.fit_transform(features)
        self.model.fit(scaled, labels)
        self._trained = True
        return self

    def identify(self, records: list[RawPositioningRecord]) -> EventPrediction:
        """Predict the mobility event of a record segment."""
        if not self._trained:
            raise ModelNotFittedError(
                "EventIdentifier.identify called before train(); use "
                "HeuristicEventIdentifier for the zero-training phase"
            )
        features = extract_features(records).reshape(1, -1)
        scaled = self.scaler.transform(features)
        probabilities = self.model.predict_proba(scaled)[0]
        best = int(np.argmax(probabilities))
        return EventPrediction(
            event=self.model.classes[best],
            confidence=float(probabilities[best]),
        )

    @property
    def known_events(self) -> list[str]:
        """Event labels the model can emit."""
        if not self._trained:
            return []
        return self.model.classes


class HeuristicEventIdentifier:
    """Threshold-based stay/pass-by discrimination (no training needed).

    A snippet is a *stay* when it is slow and compact — low mean speed, low
    straightness, small covering range relative to its duration.  This is
    deliberately the kind of rule the GPS-era systems [10, 12] hard-code;
    it doubles as the no-learning ablation arm in E-F3b.
    """

    def __init__(
        self,
        stay_speed_threshold: float = 0.7,
        stay_straightness_threshold: float = 0.5,
        min_stay_duration: float = 45.0,
    ):
        self.stay_speed_threshold = stay_speed_threshold
        self.stay_straightness_threshold = stay_straightness_threshold
        self.min_stay_duration = min_stay_duration
        self._speed_idx = FEATURE_NAMES.index("mean_speed")
        self._straightness_idx = FEATURE_NAMES.index("straightness")
        self._duration_idx = FEATURE_NAMES.index("duration")

    @property
    def is_trained(self) -> bool:
        """Always ready — there is nothing to train."""
        return True

    def identify(self, records: list[RawPositioningRecord]) -> EventPrediction:
        """Rule-based stay/pass-by call with a margin-derived confidence."""
        from ..semantics import EVENT_PASS_BY, EVENT_STAY

        features = extract_features(records)
        slow = features[self._speed_idx] <= self.stay_speed_threshold
        wandering = (
            features[self._straightness_idx] <= self.stay_straightness_threshold
        )
        long_enough = features[self._duration_idx] >= self.min_stay_duration
        if slow and wandering and long_enough:
            margin = 1.0 - features[self._speed_idx] / max(
                self.stay_speed_threshold, 1e-9
            )
            return EventPrediction(EVENT_STAY, 0.5 + 0.5 * min(1.0, margin))
        speed_excess = features[self._speed_idx] - self.stay_speed_threshold
        margin = min(1.0, max(0.0, speed_excess) / self.stay_speed_threshold)
        return EventPrediction(EVENT_PASS_BY, 0.5 + 0.5 * margin)

    @property
    def known_events(self) -> list[str]:
        """The two built-in events."""
        from ..semantics import EVENT_PASS_BY, EVENT_STAY

        return [EVENT_PASS_BY, EVENT_STAY]
