"""The paper's primary contribution: the three-layer translation framework.

Cleaning (C1) -> Annotation (C2) -> Complementing (C3), orchestrated by the
:class:`Translator` (C4), compared against GPS-era baselines (C5), and
scored against ground truth (C6).
"""

from .annotation import (
    FEATURE_NAMES,
    AnnotationResult,
    AnnotatorConfig,
    DensitySplitter,
    EventIdentifier,
    EventPrediction,
    HeuristicEventIdentifier,
    MobilitySemanticsAnnotator,
    Snippet,
    SnippetKind,
    SpatialMatch,
    SpatialMatcher,
    SplitterConfig,
    extract_features,
)
from .assessment import (
    CleaningScore,
    GapFillScore,
    SemanticsScore,
    score_gap_fill,
    score_positions,
    score_semantics,
)
from .baselines import (
    DistanceOnlyGapFiller,
    NearestRegionAnnotator,
    StopMoveConfig,
    StopMoveReconstructor,
)
from .cleaning import (
    CleaningConfig,
    CleaningReport,
    CleaningResult,
    RawDataCleaner,
    SpeedValidator,
)
from .complementing import (
    ComplementorConfig,
    ComplementResult,
    InferenceConfig,
    MobilityKnowledge,
    MobilitySemanticsComplementor,
    PartialKnowledge,
    SemanticsInference,
    merge_partials,
)
from .semantics import (
    EVENT_PASS_BY,
    EVENT_STAY,
    MobilitySemantic,
    MobilitySemanticsSequence,
)
from .translator import (
    BatchStats,
    BatchTranslationResult,
    PhaseStats,
    TranslationResult,
    Translator,
    TranslatorConfig,
)

__all__ = [
    "EVENT_PASS_BY",
    "EVENT_STAY",
    "FEATURE_NAMES",
    "AnnotationResult",
    "AnnotatorConfig",
    "BatchStats",
    "BatchTranslationResult",
    "CleaningConfig",
    "CleaningReport",
    "CleaningResult",
    "CleaningScore",
    "ComplementResult",
    "ComplementorConfig",
    "DensitySplitter",
    "DistanceOnlyGapFiller",
    "EventIdentifier",
    "EventPrediction",
    "GapFillScore",
    "HeuristicEventIdentifier",
    "InferenceConfig",
    "MobilityKnowledge",
    "MobilitySemantic",
    "MobilitySemanticsAnnotator",
    "MobilitySemanticsComplementor",
    "MobilitySemanticsSequence",
    "NearestRegionAnnotator",
    "PartialKnowledge",
    "PhaseStats",
    "RawDataCleaner",
    "SemanticsInference",
    "SemanticsScore",
    "Snippet",
    "SnippetKind",
    "SpatialMatch",
    "SpatialMatcher",
    "SpeedValidator",
    "SplitterConfig",
    "StopMoveConfig",
    "StopMoveReconstructor",
    "TranslationResult",
    "Translator",
    "TranslatorConfig",
    "extract_features",
    "merge_partials",
    "score_gap_fill",
    "score_positions",
    "score_semantics",
]
