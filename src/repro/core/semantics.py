"""Mobility semantics: the output representation of the translation.

A mobility semantics is the paper's triplet of "an event annotation
(mobility event stay or pass-by), a spatial annotation (a semantic region
like Nike Store) and a temporal annotation (time period)" — the right-hand
side of Table 1.  Sequences of these triplets are "very concise to process
as they use a more condensed form compared to the raw positioning records".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterator

from ..errors import AnnotationError
from ..timeutil import TimeRange

#: The two built-in mobility events every TRIPS deployment understands.
EVENT_STAY = "stay"
EVENT_PASS_BY = "pass-by"


@dataclass(frozen=True)
class MobilitySemantic:
    """One ``(event, region, time-range)`` triplet.

    ``record_indexes`` point back into the *cleaned* positioning sequence
    the triplet was derived from, which is how the viewer selects a display
    point ("selected from the positioning location(s) in the mobility
    semantics's corresponding raw record(s)", paper footnote 1).  Inferred
    triplets produced by the complementing layer have no backing records and
    carry ``inferred=True`` plus a MAP ``confidence``.
    """

    event: str
    region_id: str
    region_name: str
    time_range: TimeRange
    confidence: float = 1.0
    inferred: bool = False
    record_indexes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.event:
            raise AnnotationError("mobility semantic requires an event annotation")
        if not self.region_id:
            raise AnnotationError("mobility semantic requires a spatial annotation")
        if not 0.0 <= self.confidence <= 1.0:
            raise AnnotationError(
                f"confidence must be in [0, 1], got {self.confidence}"
            )

    @property
    def duration(self) -> float:
        """Seconds covered by the temporal annotation."""
        return self.time_range.duration

    def shifted(self, offset: float) -> "MobilitySemantic":
        """A copy with the temporal annotation translated by ``offset``."""
        return replace(self, time_range=self.time_range.shift(offset))

    def format(self, twelve_hour: bool = True) -> str:
        """Paper-style rendering: ``(stay, Adidas, 1:02:05-1:18:15pm)``."""
        return (
            f"({self.event}, {self.region_name}, "
            f"{self.time_range.format(twelve_hour)})"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "event": self.event,
            "region_id": self.region_id,
            "region_name": self.region_name,
            "start": self.time_range.start,
            "end": self.time_range.end,
            "confidence": self.confidence,
            "inferred": self.inferred,
            "record_indexes": list(self.record_indexes),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MobilitySemantic":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                event=data["event"],
                region_id=data["region_id"],
                region_name=data.get("region_name", data["region_id"]),
                time_range=TimeRange(float(data["start"]), float(data["end"])),
                confidence=float(data.get("confidence", 1.0)),
                inferred=bool(data.get("inferred", False)),
                record_indexes=tuple(data.get("record_indexes", ())),
            )
        except KeyError as exc:
            raise AnnotationError(f"malformed semantic dict, missing {exc}") from exc

    def __str__(self) -> str:
        return self.format()


@dataclass(frozen=True)
class MobilitySemanticsSequence:
    """The ordered mobility semantics of one device."""

    device_id: str
    semantics: tuple[MobilitySemantic, ...] = field(default_factory=tuple)

    def __init__(self, device_id: str, semantics) -> None:
        ordered = tuple(sorted(semantics, key=lambda s: s.time_range))
        object.__setattr__(self, "device_id", device_id)
        object.__setattr__(self, "semantics", ordered)

    def __len__(self) -> int:
        return len(self.semantics)

    def __iter__(self) -> Iterator[MobilitySemantic]:
        return iter(self.semantics)

    def __getitem__(self, index: int) -> MobilitySemantic:
        return self.semantics[index]

    @property
    def time_range(self) -> TimeRange:
        """Span from the first to the last temporal annotation."""
        if not self.semantics:
            raise AnnotationError("empty semantics sequence has no time range")
        return TimeRange(
            self.semantics[0].time_range.start, self.semantics[-1].time_range.end
        )

    @property
    def region_ids(self) -> list[str]:
        """Region ids in timeline order (with consecutive repeats kept)."""
        return [s.region_id for s in self.semantics]

    @property
    def events(self) -> list[str]:
        """Event annotations in timeline order."""
        return [s.event for s in self.semantics]

    @property
    def inferred_count(self) -> int:
        """How many triplets the complementing layer added."""
        return sum(1 for s in self.semantics if s.inferred)

    def gaps(self, threshold: float) -> list[tuple[int, TimeRange]]:
        """Temporal gaps longer than ``threshold`` between neighbors.

        Returns ``(index, gap)`` pairs where ``index`` is the triplet
        *before* the gap — the complementing layer's work list.
        """
        found: list[tuple[int, TimeRange]] = []
        for index in range(len(self.semantics) - 1):
            gap_start = self.semantics[index].time_range.end
            gap_end = self.semantics[index + 1].time_range.start
            if gap_end - gap_start > threshold:
                found.append((index, TimeRange(gap_start, gap_end)))
        return found

    def conciseness_ratio(self, record_count: int) -> float:
        """Raw records per semantics triplet — Table 1's condensation claim."""
        if len(self.semantics) == 0:
            return 0.0
        return record_count / len(self.semantics)

    def merged_consecutive(self) -> "MobilitySemanticsSequence":
        """Collapse adjacent triplets with identical event and region.

        The annotator can produce back-to-back snippets in the same shop;
        presenting them as one visit matches Table 1's granularity.
        """
        if not self.semantics:
            return self
        merged: list[MobilitySemantic] = [self.semantics[0]]
        for current in self.semantics[1:]:
            last = merged[-1]
            if (
                current.event == last.event
                and current.region_id == last.region_id
                and current.inferred == last.inferred
            ):
                merged[-1] = replace(
                    last,
                    time_range=last.time_range.union_span(current.time_range),
                    confidence=min(last.confidence, current.confidence),
                    record_indexes=last.record_indexes + current.record_indexes,
                )
            else:
                merged.append(current)
        return MobilitySemanticsSequence(self.device_id, merged)

    def merged_same_region(self) -> "MobilitySemanticsSequence":
        """Collapse adjacent same-region triplets regardless of event.

        The density splitter can fragment one long shop visit into
        stay/pass-by/stay; presenting it as a single visit whose event is
        the duration-weighted majority matches the granularity of Table 1.
        Only near-contiguous triplets merge (gap <= 60 s), so genuine
        leave-and-return visits stay separate.
        """
        if not self.semantics:
            return self
        groups: list[list[MobilitySemantic]] = [[self.semantics[0]]]
        for current in self.semantics[1:]:
            last = groups[-1][-1]
            gap = current.time_range.start - last.time_range.end
            if (
                current.region_id == last.region_id
                and current.inferred == last.inferred
                and gap <= 60.0
            ):
                groups[-1].append(current)
            else:
                groups.append([current])
        merged: list[MobilitySemantic] = []
        for group in groups:
            if len(group) == 1:
                merged.append(group[0])
                continue
            event_time: dict[str, float] = {}
            for triplet in group:
                event_time[triplet.event] = (
                    event_time.get(triplet.event, 0.0) + triplet.duration
                )
            dominant = max(sorted(event_time), key=lambda e: event_time[e])
            span = group[0].time_range
            indexes: tuple[int, ...] = ()
            for triplet in group:
                span = span.union_span(triplet.time_range)
                indexes += triplet.record_indexes
            merged.append(
                replace(
                    group[0],
                    event=dominant,
                    time_range=span,
                    confidence=min(t.confidence for t in group),
                    record_indexes=indexes,
                )
            )
        return MobilitySemanticsSequence(self.device_id, merged)

    def format_table(self, twelve_hour: bool = True) -> str:
        """Multi-line paper-style rendering, as in Table 1's right column."""
        lines = [f"{self.device_id}:"]
        lines.extend(f"  {s.format(twelve_hour)}" for s in self.semantics)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "device_id": self.device_id,
            "semantics": [s.to_dict() for s in self.semantics],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MobilitySemanticsSequence":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                data["device_id"],
                [MobilitySemantic.from_dict(d) for d in data["semantics"]],
            )
        except KeyError as exc:
            raise AnnotationError(
                f"malformed semantics sequence dict, missing {exc}"
            ) from exc

    def save_json(self, path: str | Path) -> None:
        """Write the sequence as a translation-result JSON file (step 4)."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2), encoding="utf-8"
        )

    @classmethod
    def load_json(cls, path: str | Path) -> "MobilitySemanticsSequence":
        """Read a translation-result file back."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(data)

    def __str__(self) -> str:
        return f"semantics({self.device_id}: {len(self.semantics)} triplets)"
